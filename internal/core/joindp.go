package core

import (
	"fmt"
	"math/bits"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/meta"
	"repro/internal/rewrite"
	"repro/internal/seq"
)

// dpCand is one Selinger-table entry variant: an executable plan for a
// subset of the block's sources, with the source layout order and the
// cost in its role (total stream cost, or per-probe cost).
type dpCand struct {
	plan    exec.Plan
	order   []int // source indexes in the plan's column layout order
	schema  *seq.Schema
	span    seq.Span
	density float64
	cost    float64
}

// dpEntry keeps the best plan per access mode for one source subset —
// the sequence analog of Selinger's "interesting orders": a plan that is
// best for streaming may differ from the plan that is best to probe.
type dpEntry struct {
	stream *dpCand
	probed *dpCand
}

// buildBlock runs Steps 4–5 on a compose-rooted block: extract the
// sources and predicates, then enumerate left-deep join orders bottom-up,
// pricing the three §3.3 strategies per join and keeping the best
// stream/probed plan per subset (§4.1.3).
func (b *builder) buildBlock(root *algebra.Node, m *meta.NodeMeta) (*candidate, error) {
	blk, ok, err := rewrite.ExtractJoinBlock(root)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: compose node did not form a join block")
	}
	b.stats.BlocksOptimized++
	n := blk.NumSources()

	srcs := make([]*candidate, n)
	for i, s := range blk.Sources {
		c, err := b.build(s)
		if err != nil {
			return nil, err
		}
		srcs[i] = c
	}

	// Virtual-schema column statistics for predicate selectivities.
	vstats := make(map[int]expr.ColStats)
	for i, s := range blk.Sources {
		if sm := b.ann.Get(s); sm != nil {
			for c, st := range sm.ColStats {
				vstats[blk.SourceStart[i]+c] = st
			}
		}
	}

	outLen := float64(m.AccessSpan.Len())
	if outLen < 0 {
		outLen = 0
	}

	dp := &blockDP{
		b: b, blk: blk, srcs: srcs, vstats: vstats, outLen: outLen,
		table: make(map[uint64]*dpEntry),
	}
	full, err := dp.run()
	if err != nil {
		return nil, err
	}

	streamPlan, streamCost, err := dp.restore(full.stream, root)
	if err != nil {
		return nil, err
	}
	b.note(streamPlan, Cost{Stream: streamCost})
	probedPlan, probeCost, err := dp.restore(full.probed, root)
	if err != nil {
		return nil, err
	}
	b.note(probedPlan, Cost{ProbePer: probeCost})
	return &candidate{
		stream: streamPlan, probed: probedPlan, schema: root.Schema,
		span: m.AccessSpan, density: m.Density,
		cost: Cost{Stream: streamCost, ProbePer: probeCost},
	}, nil
}

type blockDP struct {
	b      *builder
	blk    *rewrite.JoinBlock
	srcs   []*candidate
	vstats map[int]expr.ColStats
	outLen float64
	table  map[uint64]*dpEntry
	peak   int
}

// covered reports which predicates are fully covered by the mask.
func (dp *blockDP) covered(mask uint64) []int {
	var out []int
	for i, p := range dp.blk.Preds {
		if p.Mask != 0 && p.Mask&^mask == 0 {
			out = append(out, i)
		}
	}
	return out
}

// newlyApplied returns the predicates covered by a|b but by neither side
// alone — the ones this join must apply.
func (dp *blockDP) newlyApplied(a, c uint64) []int {
	var out []int
	for i, p := range dp.blk.Preds {
		if p.Mask == 0 {
			continue
		}
		if p.Mask&^(a|c) == 0 && p.Mask&^a != 0 && p.Mask&^c != 0 {
			out = append(out, i)
		}
	}
	return out
}

// layoutMapping maps virtual columns onto the plan layout given by order.
func (dp *blockDP) layoutMapping(order []int) map[int]int {
	mapping := make(map[int]int)
	at := 0
	for _, s := range order {
		width := dp.blk.Sources[s].Schema.NumFields()
		for c := 0; c < width; c++ {
			mapping[dp.blk.SourceStart[s]+c] = at + c
		}
		at += width
	}
	return mapping
}

// predFor conjoins the given predicates remapped onto the layout.
func (dp *blockDP) predFor(idxs []int, order []int) (expr.Expr, float64, error) {
	if len(idxs) == 0 {
		return nil, 1, nil
	}
	mapping := dp.layoutMapping(order)
	var pred expr.Expr
	sel := 1.0
	for _, i := range idxs {
		p := dp.blk.Preds[i]
		remapped, err := expr.Remap(p.Virtual, mapping)
		if err != nil {
			return nil, 0, err
		}
		pred, err = expr.And(pred, remapped)
		if err != nil {
			return nil, 0, err
		}
		sel *= expr.Selectivity(p.Virtual, dp.vstats)
	}
	return pred, sel, nil
}

// singleton builds the table entry for one source, applying its
// single-source predicates (any the rewriter could not push further).
func (dp *blockDP) singleton(i int) (*dpEntry, error) {
	src := dp.srcs[i]
	mask := rewrite.SourceMask(i)
	idxs := dp.covered(mask)
	order := []int{i}
	pred, sel, err := dp.predFor(idxs, order)
	if err != nil {
		return nil, err
	}
	mk := func(plan exec.Plan, cost float64, perProbe bool) *dpCand {
		density := src.density
		if pred != nil {
			density *= sel
			if perProbe {
				cost += float64(len(idxs)) * dp.b.params.Pred
			} else {
				cost += src.records() * float64(len(idxs)) * dp.b.params.Pred
			}
			plan = exec.NewSelect(plan, pred)
			if perProbe {
				dp.b.note(plan, Cost{ProbePer: finite(cost)})
			} else {
				dp.b.note(plan, Cost{Stream: finite(cost)})
			}
		}
		return &dpCand{
			plan: plan, order: order, schema: src.schema,
			span: src.span, density: density, cost: finite(cost),
		}
	}
	return &dpEntry{
		stream: mk(src.stream, src.cost.Stream, false),
		probed: mk(src.probed, src.cost.ProbePer, true),
	}, nil
}

// run executes the DP and returns the full-set entry.
func (dp *blockDP) run() (*dpEntry, error) {
	n := len(dp.srcs)
	fullMask := uint64(1)<<uint(n) - 1
	for i := 0; i < n; i++ {
		e, err := dp.singleton(i)
		if err != nil {
			return nil, err
		}
		dp.table[rewrite.SourceMask(i)] = e
		dp.note()
	}
	if n == 1 {
		return dp.table[fullMask], nil
	}
	// Group masks by popcount for the bottom-up sweep. Seed size 1 in
	// source order (not map order) so cost ties between equal plans
	// resolve the same way on every run — plans and EXPLAIN output stay
	// deterministic.
	bySize := make([][]uint64, n+1)
	for i := 0; i < n; i++ {
		bySize[1] = append(bySize[1], rewrite.SourceMask(i))
	}
	for k := 1; k < n; k++ {
		for _, mask := range bySize[k] {
			entry := dp.table[mask]
			if entry == nil {
				continue
			}
			for j := 0; j < n; j++ {
				jm := rewrite.SourceMask(j)
				if mask&jm != 0 {
					continue
				}
				dp.b.stats.JoinPlansEvaluated++
				newMask := mask | jm
				cand, err := dp.extend(entry, dp.table[jm], mask, jm)
				if err != nil {
					return nil, err
				}
				cur := dp.table[newMask]
				if cur == nil {
					dp.table[newMask] = cand
					bySize[k+1] = append(bySize[k+1], newMask)
					dp.note()
				} else {
					if cand.stream.cost < cur.stream.cost {
						cur.stream = cand.stream
					}
					if cand.probed.cost < cur.probed.cost {
						cur.probed = cand.probed
					}
				}
			}
		}
		// Left-deep DP only extends composites by singletons: size-k
		// composites are dead once size k+1 exists. Freeing them bounds
		// live plans by O(C(N, ⌈N/2⌉)) (Property 4.1.b).
		if k > 1 {
			for _, mask := range bySize[k] {
				delete(dp.table, mask)
			}
		}
	}
	full := dp.table[fullMask]
	if full == nil {
		return nil, fmt.Errorf("core: block DP produced no full plan")
	}
	return full, nil
}

func (dp *blockDP) note() {
	if len(dp.table) > dp.peak {
		dp.peak = len(dp.table)
	}
	if dp.peak > dp.b.stats.PeakPlansStored {
		dp.b.stats.PeakPlansStored = dp.peak
	}
}

// mkJoin composes two child candidates with the given strategy and
// already-computed strategy cost, applying the newly covered predicates.
// Order, schema and predicate layout are derived from the concrete child
// plans (the stream-best and probed-best plans of a subset may have
// different layouts).
func (dp *blockDP) mkJoin(l, r *dpCand, newly []int, strategy exec.ComposeStrategy, strategyCost float64) (*dpCand, error) {
	order := append(append([]int(nil), l.order...), r.order...)
	pred, sel, err := dp.predFor(newly, order)
	if err != nil {
		return nil, err
	}
	schema, err := l.schema.Concat(r.schema, "l", "r")
	if err != nil {
		return nil, err
	}
	plan, err := exec.NewCompose(l.plan, r.plan, pred, schema, strategy)
	if err != nil {
		return nil, err
	}
	plan.NoNarrow = dp.b.opts.DisableSpanPropagation
	return &dpCand{
		plan: plan, order: order, schema: schema,
		span:    l.span.Intersect(r.span),
		density: l.density * r.density * sel,
		cost:    finite(strategyCost),
	}, nil
}

// extend joins the composite entry with singleton j, pricing both
// orientations and all three join strategies (§4.1.3), and returns the
// best stream/probed pair for the union.
func (dp *blockDP) extend(composite, single *dpEntry, cmask, jmask uint64) (*dpEntry, error) {
	newly := dp.newlyApplied(cmask, jmask)
	params := dp.b.params
	out := &dpEntry{}
	for _, orient := range [2]bool{false, true} { // false: composite left
		left, right := composite, single
		if orient {
			left, right = single, composite
		}
		dL, dR := left.stream.density, right.stream.density
		// The paper's d1·d2·output_span·K term: join-function work at
		// every common non-Null position.
		matchWork := dL * dR * dp.outLen * (params.PerRecord + float64(len(newly))*params.Pred)
		probeAllL := left.probed.cost * dp.outLen
		probeAllR := right.probed.cost * dp.outLen

		type alt struct {
			strategy exec.ComposeStrategy
			cost     float64
			l, r     *dpCand
		}
		alts := []alt{
			// Stream the left, probe the right per non-Null record.
			{exec.ComposeStreamLeft, left.stream.cost + dL*probeAllR, left.stream, right.probed},
			// Stream the right, probe the left.
			{exec.ComposeStreamRight, right.stream.cost + dR*probeAllL, left.probed, right.stream},
			// Stream both in lock step.
			{exec.ComposeLockStep, left.stream.cost + right.stream.cost, left.stream, right.stream},
		}
		if f := dp.b.opts.ForceComposeStrategy; f != nil {
			for _, a := range alts {
				if a.strategy == *f {
					alts = []alt{a}
					break
				}
			}
		}
		for _, a := range alts {
			dp.b.stats.CandidatesCosted++
			cost := a.cost + matchWork
			if out.stream == nil || cost < out.stream.cost {
				cand, err := dp.mkJoin(a.l, a.r, newly, a.strategy, cost)
				if err != nil {
					return nil, err
				}
				dp.b.note(cand.plan, Cost{Stream: cand.cost})
				out.stream = cand
			}
		}
		// Probed access: probe the left, and only on a hit probe the
		// right (§4.1.3's min(a1 + d1·a2, a2 + d2·a1) — the two
		// orientations produce the two terms).
		dp.b.stats.CandidatesCosted++
		probeCost := left.probed.cost + dL*right.probed.cost +
			dL*dR*(params.PerRecord+float64(len(newly))*params.Pred)
		if out.probed == nil || probeCost < out.probed.cost {
			cand, err := dp.mkJoin(left.probed, right.probed, newly, exec.ComposeLockStep, probeCost)
			if err != nil {
				return nil, err
			}
			dp.b.note(cand.plan, Cost{ProbePer: cand.cost})
			out.probed = cand
		}
	}
	return out, nil
}

// restore re-projects a DP plan from its join-order layout back to the
// block root's original column order and names, so parent operators see
// the schema they were built against.
func (dp *blockDP) restore(c *dpCand, root *algebra.Node) (exec.Plan, float64, error) {
	identity := true
	for i, s := range c.order {
		if s != i {
			identity = false
			break
		}
	}
	if identity {
		if c.schema.Equal(root.Schema) {
			return c.plan, c.cost, nil
		}
		// Same column order, different qualifier-derived names: a
		// zero-cost rename suffices.
		plan, err := exec.NewRename(c.plan, root.Schema)
		if err != nil {
			return nil, 0, err
		}
		return plan, c.cost, nil
	}
	mapping := dp.layoutMapping(c.order)
	items := make([]exec.ProjExpr, root.Schema.NumFields())
	for v := 0; v < root.Schema.NumFields(); v++ {
		planIdx, ok := mapping[v]
		if !ok {
			return nil, 0, fmt.Errorf("core: virtual column %d unmapped in layout %v", v, c.order)
		}
		col, err := expr.ColAt(c.schema, planIdx)
		if err != nil {
			return nil, 0, err
		}
		items[v] = exec.ProjExpr{Expr: col, Name: root.Schema.Field(v).Name}
	}
	plan, err := exec.NewProject(c.plan, items)
	if err != nil {
		return nil, 0, err
	}
	return plan, finite(c.cost + c.density*dp.outLen*dp.b.params.PerRecord), nil
}

// popcount is exposed for the Property 4.1 tests.
func popcount(mask uint64) int { return bits.OnesCount64(mask) }
