package core

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/seq"
	"repro/internal/testgen"
)

// TestDeepRandomSweep is the heavyweight randomized campaign: deeper
// trees and more seeds than the per-package property tests, across every
// optimizer configuration. It caught the shared-base-node access-span
// bug and the sliding-sum float-drift subtlety during development.
func TestDeepRandomSweep(t *testing.T) {
	span := seq.NewSpan(-12, 60)
	cfg := testgen.Config{MaxDepth: 6, MaxPos: 40, BaseDensity: 0.45}
	optionSets := []Options{
		{},
		{DisableRewrites: true},
		{DisableSpanPropagation: true},
		{ForceNaiveAggregates: true, ForceNaiveValueOffsets: true},
		{DisableSlidingAggregates: true},
	}
	for seed := int64(1000); seed < 4000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, err := testgen.RandomQuery(rng, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if algebra.Divergent(q) {
			continue
		}
		want, err := algebra.EvalRange(q, span)
		if err != nil {
			t.Fatalf("seed %d: reference: %v\n%s", seed, err, q)
		}
		opts := optionSets[seed%int64(len(optionSets))]
		res, err := Optimize(q, span, opts)
		if err != nil {
			t.Fatalf("seed %d: optimize: %v\n%s", seed, err, q)
		}
		got, err := res.Run()
		if err != nil {
			t.Fatalf("seed %d: run: %v\nquery:\n%s\nplan:\n%s", seed, err, q, res.Explain())
		}
		if !testgen.EntriesApproxEqual(got.Entries(), want) {
			t.Fatalf("seed %d (opts %d): output differs\nquery:\n%s\nplan:\n%s",
				seed, seed%5, q, res.Explain())
		}
	}
}
