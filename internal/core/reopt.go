package core

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/meta"
	"repro/internal/parallel"
	"repro/internal/planlint"
	"repro/internal/reopt"
	"repro/internal/seq"
	"repro/internal/storage"
)

// predFn returns the PlanCosts lookup as the instrumentation-layer
// prediction function.
func (r *Result) predFn() func(exec.Plan) exec.PredictedCost {
	return func(p exec.Plan) exec.PredictedCost {
		c, ok := r.PlanCosts[p]
		if !ok {
			return exec.PredictedCost{}
		}
		return exec.PredictedCost{Stream: c.Stream, ProbePer: c.ProbePer, Known: true}
	}
}

// costWeights converts the result's cost params into the live-pricing
// weights the checkpoint comparison uses.
func (r *Result) costWeights() exec.CostWeights {
	return exec.CostWeights{
		SeqPage:     r.Params.SeqPage,
		RandPage:    r.Params.RandPage,
		CacheAccess: r.Params.CacheAccess,
		PerRecord:   r.Params.PerRecord,
	}
}

func (r *Result) verifyOn() bool { return r.opts.Verify || VerifyAll }

// RunReopt executes the stream plan under mid-run adaptive
// reoptimization with the configuration of Options.Reopt (Enabled is
// implied by calling it directly) and returns the output together with
// the reoptimization report.
func (r *Result) RunReopt() (*seq.Materialized, *reopt.Report, error) {
	return r.RunReoptWith(r.opts.Reopt)
}

// RunReoptWith is RunReopt under an explicit configuration — the test
// and fuzz entry point (forced checkpoints, adversarial midpoints,
// forced tail parallelism). The monitored head segments run serially;
// a replanned tail may still run span-partitioned per its decision. In
// verify mode every spliced plan passes the planlint physical and cost
// checks at splice time, and the executed segments pass the reopt/*
// splice invariants afterwards.
func (r *Result) RunReoptWith(cfg reopt.Config) (*seq.Materialized, *reopt.Report, error) {
	if !r.RunSpan.Bounded() && !r.RunSpan.IsEmpty() {
		return nil, nil, fmt.Errorf("core: query output span %v is unbounded; request a bounded range", r.RunSpan)
	}
	rp := &replanner{
		res:       r,
		plan:      r.Plan,
		span:      r.RunSpan,
		nodes:     r.nodes,
		ann:       r.Annotation,
		overrides: make(map[*algebra.Node]float64),
		tailK:     cfg.TailK,
		verify:    r.verifyOn(),
	}
	out, rep, err := reopt.Run(r.Plan, r.RunSpan, cfg, r.predFn(), r.costWeights(), rp)
	if err != nil {
		return nil, nil, err
	}
	if rp.verify {
		segs := make([]planlint.ReoptSegment, len(rep.Segments))
		for i, s := range rep.Segments {
			segs[i] = planlint.ReoptSegment{Span: s.Span, Plan: s.Plan}
		}
		if err := planlint.Error(planlint.VerifyReopt(r.RunSpan, segs)); err != nil {
			return nil, nil, err
		}
	}
	return out, rep, nil
}

// replanner implements reopt.Planner over the per-block plan generator:
// on a trigger it derives observed densities from the current segment's
// metrics, re-annotates the rewritten tree for the remaining span with
// those densities substituted (meta.AnnotateWithOverrides), rebuilds,
// and decides tail parallelism.
type replanner struct {
	res  *Result
	plan exec.Plan // current segment's plan
	span seq.Span  // current segment's span
	// nodes/ann describe the current segment's plan (they start as the
	// static result's and are replaced on each replan).
	nodes map[exec.Plan]*algebra.Node
	ann   *meta.Annotation
	// overrides accumulate observed densities across replans, keyed by
	// algebra node (stable across rebuilds): a later splice must not
	// forget the observation that caused an earlier one, or the plan
	// would flip back.
	overrides map[*algebra.Node]float64
	tailK     int
	verify    bool
}

// Replan implements reopt.Planner.
func (rp *replanner) Replan(remaining, consumed seq.Span, metrics *exec.NodeMetrics, force bool) (*reopt.Segment, error) {
	rp.observe(consumed, metrics)
	// The rebuild keeps the original request's universe: it is part of
	// the query's semantics (degenerate operators are confined to it),
	// so a spliced plan must compute the same function over the
	// remaining span as the plan it replaces.
	ann, err := meta.AnnotateSubSpan(rp.res.Rewritten, remaining, rp.res.Annotation.Universe, rp.overrides)
	if err != nil {
		return nil, err
	}
	stats := Stats{}
	b := &builder{
		opts: rp.res.opts, params: rp.res.Params, ann: ann, stats: &stats,
		costs: make(map[exec.Plan]Cost),
		nodes: make(map[exec.Plan]*algebra.Node),
	}
	cand, err := b.build(rp.res.Rewritten)
	if err != nil {
		return nil, err
	}
	// The segment covers exactly the remaining span (the reopt/span-cover
	// invariant); the plan's access spans restrict the scan internally.
	var d *parallel.Decision
	if rp.tailK >= 2 {
		if fd, err := parallel.ForceK(cand.stream, remaining, rp.tailK); err == nil {
			d = fd
		}
	}
	if d == nil {
		pp := parallel.DefaultParams()
		if b.params.ParallelStartup > 0 {
			pp.Startup = b.params.ParallelStartup
		}
		d = parallel.Plan(cand.stream, remaining, cand.cost.Stream, rp.res.opts.Parallelism, pp)
	}
	// A rebuild that lands on the same strategies and the same (serial)
	// parallelism is not worth a splice: the trigger reflects cost-model
	// noise, not a better plan. Decline and keep the current segment
	// streaming — unless the caller demands the splice (ForceAt or the
	// threshold-0 fuzz mode).
	mode := reopt.StrategySignature(cand.stream)
	if !force && mode == reopt.StrategySignature(rp.plan) && !d.Parallel() {
		return nil, nil
	}
	if rp.verify {
		var issues []planlint.Issue
		issues = append(issues, planlint.VerifyPhysical(cand.stream)...)
		lookup := func(p exec.Plan) (float64, float64, bool) {
			c, ok := b.costs[p]
			return c.Stream, c.ProbePer, ok
		}
		issues = append(issues, planlint.VerifyCosts(cand.stream, lookup)...)
		issues = append(issues, planlint.VerifyPartitions(cand.stream, d)...)
		if err := planlint.Error(issues); err != nil {
			return nil, err
		}
	}
	costs := b.costs
	pred := func(p exec.Plan) exec.PredictedCost {
		c, ok := costs[p]
		if !ok {
			return exec.PredictedCost{}
		}
		return exec.PredictedCost{Stream: c.Stream, ProbePer: c.ProbePer, Known: true}
	}
	rp.plan, rp.span, rp.nodes, rp.ann = cand.stream, remaining, b.nodes, ann
	return &reopt.Segment{
		Plan:     cand.stream,
		Span:     remaining,
		Pred:     pred,
		Decision: d,
		Mode:     mode,
	}, nil
}

// observe walks the current segment's plan and metrics trees in
// lockstep (Instrument mirrors the plan shape one NodeMetrics per
// node) and records an observed output density per algebra node where
// the counters carry enough evidence.
func (rp *replanner) observe(consumed seq.Span, metrics *exec.NodeMetrics) {
	total := rp.span.Len()
	if total <= 0 {
		return
	}
	frac := float64(consumed.Len()) / float64(total)
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	var walk func(p exec.Plan, m *exec.NodeMetrics)
	walk = func(p exec.Plan, m *exec.NodeMetrics) {
		if n, ok := rp.nodes[p]; ok {
			if nm := rp.ann.Get(n); nm != nil {
				if d, ok := observedDensity(nm.AccessSpan, m, frac); ok {
					rp.overrides[n] = d
				}
			}
		}
		pc := p.Children()
		for i := 0; i < len(pc) && i < len(m.Children); i++ {
			walk(pc[i], m.Children[i])
		}
	}
	walk(rp.plan, metrics)
}

// minEvidence is the observation count below which a density estimate
// is noise, not signal.
const minEvidence = 4

// observedDensity derives a node's output density from its live
// counters: probed nodes report the non-Null fraction of their
// answers; streamed nodes report rows emitted over the consumed
// fraction of their access span.
func observedDensity(access seq.Span, m *exec.NodeMetrics, frac float64) (float64, bool) {
	if m.ProbeCalls >= minEvidence && m.ScanCalls == 0 {
		return float64(m.ProbeRows) / float64(m.ProbeCalls), true
	}
	if m.ScanCalls > 0 && access.Bounded() && access.Len() > 0 {
		expect := frac * float64(access.Len())
		if expect >= minEvidence {
			return float64(m.ScanRows) / expect, true
		}
	}
	return 0, false
}

// RunAnalyzeReopt is RunAnalyze under mid-run reoptimization: the
// monitored run's instrumentation doubles as the analysis, the
// Analysis carries the reoptimization report, and Root is the metrics
// tree of the last monitored segment (a parallel tail contributes its
// partition decision through the report, not a merged tree).
func (r *Result) RunAnalyzeReopt() (*Analysis, error) {
	cfg := r.opts.Reopt
	cfg.Enabled = true
	stores := exec.PlanStores(r.Plan)
	before := make([]storage.StatsSnapshot, len(stores))
	for i, st := range stores {
		before[i] = st.Stats().Snapshot()
	}
	start := time.Now()
	out, rep, err := r.RunReoptWith(cfg)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	var global storage.StatsSnapshot
	for i, st := range stores {
		global = global.Add(st.Stats().Snapshot().Sub(before[i]))
	}
	var root *exec.NodeMetrics
	for _, s := range rep.Segments {
		if s.Metrics != nil {
			root = s.Metrics
		}
	}
	return &Analysis{
		Output:      out,
		Root:        root,
		Span:        r.RunSpan,
		Elapsed:     elapsed,
		Predicted:   r.Cost,
		GlobalPages: global,
		Params:      r.Params,
		Views:       r.viewCounters(),
		Reopt:       rep,
	}, nil
}
