package canon

import (
	"repro/internal/algebra"
	"repro/internal/expr"
)

// Render returns the key rendering of a node. On a canonical tree (one
// produced by Canonicalize) the rendering is injective — it equals the
// Canon.Key of that tree. Callers comparing sub-structures of canonical
// trees (e.g. the matview subsumption test comparing select inputs) use
// this instead of re-canonicalizing.
func Render(n *algebra.Node) string { return renderNode(n) }

// ExprKey returns the canonical rendering of an expression. On an
// expression taken from a canonical tree it is injective up to
// semantic equality of the canon's normalizations.
func ExprKey(e expr.Expr) string { return renderExpr(e) }

// Conjuncts flattens a predicate's top-level And spine into its
// conjunct list. A nil predicate yields nil.
func Conjuncts(e expr.Expr) []expr.Expr {
	if e == nil {
		return nil
	}
	return splitConjuncts(e)
}
