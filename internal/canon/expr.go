package canon

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// canonExpr normalizes an expression: operands of commutative operators
// are sorted by their canonical rendering, and strict/non-strict
// comparisons are flipped into the Lt/Le direction (a > b becomes b < a),
// so the two spellings of one comparison share a fingerprint. The
// returned expression is semantically equal to the input on every record
// (modulo And/Or short-circuit order, which the rewrite rules already
// treat as reorderable).
func canonExpr(e expr.Expr) (expr.Expr, error) {
	switch v := e.(type) {
	case *expr.Col, *expr.Lit:
		return e, nil
	case *expr.Bin:
		l, err := canonExpr(v.L)
		if err != nil {
			return nil, err
		}
		r, err := canonExpr(v.R)
		if err != nil {
			return nil, err
		}
		op := v.Op
		switch op {
		case expr.OpGt:
			op, l, r = expr.OpLt, r, l
		case expr.OpGe:
			op, l, r = expr.OpLe, r, l
		}
		if commutative(op) && renderExpr(r) < renderExpr(l) {
			l, r = r, l
		}
		return expr.NewBin(op, l, r)
	case *expr.Not:
		inner, err := canonExpr(v.E)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(inner)
	case *expr.Neg:
		inner, err := canonExpr(v.E)
		if err != nil {
			return nil, err
		}
		return expr.NewNeg(inner)
	case *expr.Call:
		args := make([]expr.Expr, len(v.Args))
		for i, a := range v.Args {
			ca, err := canonExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = ca
		}
		if (v.Fn == expr.FnMin || v.Fn == expr.FnMax) && len(args) == 2 &&
			renderExpr(args[1]) < renderExpr(args[0]) {
			args[0], args[1] = args[1], args[0]
		}
		return expr.NewCall(v.Fn, args)
	default:
		return nil, fmt.Errorf("canon: unknown expression node %T", e)
	}
}

// commutative reports whether swapping the operands preserves the value.
// And/Or are included: the engine treats conjunct order as free (the
// merge-select and push-down rewrite rules already reorder them).
func commutative(op expr.BinOp) bool {
	switch op {
	case expr.OpAdd, expr.OpMul, expr.OpEq, expr.OpNe, expr.OpAnd, expr.OpOr:
		return true
	}
	return false
}

// renderExpr renders an expression for fingerprinting. Column references
// render positionally ($index:type) — attribute names are cosmetic and
// must not distinguish structurally identical blocks.
func renderExpr(e expr.Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e expr.Expr) {
	switch v := e.(type) {
	case *expr.Col:
		fmt.Fprintf(b, "$%d:%s", v.Index, v.Typ)
	case *expr.Lit:
		fmt.Fprintf(b, "%s:%s", v.Val.String(), v.Val.T)
	case *expr.Bin:
		b.WriteByte('(')
		writeExpr(b, v.L)
		b.WriteByte(' ')
		b.WriteString(v.Op.String())
		b.WriteByte(' ')
		writeExpr(b, v.R)
		b.WriteByte(')')
	case *expr.Not:
		b.WriteString("not(")
		writeExpr(b, v.E)
		b.WriteByte(')')
	case *expr.Neg:
		b.WriteString("neg(")
		writeExpr(b, v.E)
		b.WriteByte(')')
	case *expr.Call:
		fmt.Fprintf(b, "%s(", v.Fn)
		for i, a := range v.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeExpr(b, a)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "?%T", e)
	}
}

// splitConjuncts flattens a predicate's top-level And spine.
func splitConjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Bin); ok && b.Op == expr.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

// sortConjuncts canonicalizes each conjunct, sorts by rendering and drops
// exact duplicates (a AND a = a).
func sortConjuncts(conjs []expr.Expr) ([]expr.Expr, error) {
	out := make([]expr.Expr, 0, len(conjs))
	for _, c := range conjs {
		cc, err := canonExpr(c)
		if err != nil {
			return nil, err
		}
		out = append(out, cc)
	}
	sort.SliceStable(out, func(i, j int) bool { return renderExpr(out[i]) < renderExpr(out[j]) })
	dedup := out[:0]
	var prev string
	for i, c := range out {
		r := renderExpr(c)
		if i > 0 && r == prev {
			continue
		}
		dedup = append(dedup, c)
		prev = r
	}
	return dedup, nil
}

// conjoin folds conjuncts into one left-deep And chain (nil when empty).
func conjoin(conjs []expr.Expr) (expr.Expr, error) {
	var acc expr.Expr
	for _, c := range conjs {
		var err error
		if acc, err = expr.And(acc, c); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// remapThrough rewrites column references i -> mapping[i] (slice form).
func remapThrough(e expr.Expr, mapping []int) (expr.Expr, error) {
	m := make(map[int]int, len(mapping))
	for i, j := range mapping {
		m[i] = j
	}
	return expr.Remap(e, m)
}
