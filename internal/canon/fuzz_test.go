package canon_test

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/canon"
	"repro/internal/expr"
	"repro/internal/rewrite"
	"repro/internal/seq"
	"repro/internal/testgen"
)

// TestCanonicalizeFuzz is the acceptance fuzz for the canonicalizer: for
// random rewritten query blocks it asserts that
//
//  1. canonicalization is idempotent (canon(canon(x)) is a fixpoint with
//     an identity column map),
//  2. semantically-equal presentation variants — shuffled predicate
//     conjuncts and commutative operands, swapped compose legs, offsets
//     split into chains, inserted permutation projections — produce the
//     identical key and fingerprint, and
//  3. the canonical tree evaluates to the original's output modulo the
//     reported ColMap permutation.
func TestCanonicalizeFuzz(t *testing.T) {
	span := seq.NewSpan(-10, 50)
	cfg := testgen.Config{MaxDepth: 5, MaxPos: 32, BaseDensity: 0.5}
	rules := rewrite.DefaultRules()
	const plans = 400
	checked := 0
	for seed := int64(1); checked < plans; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, err := testgen.RandomQuery(rng, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		if algebra.Divergent(q) {
			continue
		}
		rewritten, _, err := rewrite.Rewrite(q, rules)
		if err != nil {
			t.Fatalf("seed %d: rewrite: %v", seed, err)
		}
		c1, err := canon.Canonicalize(rewritten)
		if err != nil {
			t.Fatalf("seed %d: canonicalize: %v\n%s", seed, err, rewritten)
		}

		// (1) Idempotence.
		c2, err := canon.Canonicalize(c1.Node)
		if err != nil {
			t.Fatalf("seed %d: re-canonicalize: %v\n%s", seed, err, c1.Node)
		}
		if c2.Key != c1.Key {
			t.Fatalf("seed %d: not idempotent\nfirst:  %q\nsecond: %q", seed, c1.Key, c2.Key)
		}
		for i, j := range c2.ColMap {
			if i != j {
				t.Fatalf("seed %d: fixpoint re-permuted columns: %v", seed, c2.ColMap)
			}
		}

		// (2) Presentation variants share the key.
		for v := 0; v < 3; v++ {
			variant, err := shuffleNode(rng, rewritten)
			if err != nil {
				t.Fatalf("seed %d: shuffle: %v\n%s", seed, err, rewritten)
			}
			cv, err := canon.Canonicalize(variant)
			if err != nil {
				t.Fatalf("seed %d: canonicalize variant: %v\n%s", seed, err, variant)
			}
			if cv.Key != c1.Key {
				t.Fatalf("seed %d: shuffled variant changed the key\noriginal:\n%s\nvariant:\n%s\nkey1: %q\nkey2: %q",
					seed, rewritten, variant, c1.Key, cv.Key)
			}
			if cv.Fingerprint != c1.Fingerprint {
				t.Fatalf("seed %d: fingerprints diverged", seed)
			}
		}

		// (3) The canonical tree computes the same sequence modulo ColMap.
		want, err := algebra.EvalRange(rewritten, span)
		if err != nil {
			continue // reference interpreter rejects; nothing to compare
		}
		got, err := algebra.EvalRange(c1.Node, span)
		if err != nil {
			t.Fatalf("seed %d: canonical tree evaluation: %v\n%s", seed, err, c1.Node)
		}
		permuted := make([]seq.Entry, len(got))
		for i, e := range got {
			if e.Rec.IsNull() {
				permuted[i] = e
				continue
			}
			rec := make(seq.Record, len(c1.ColMap))
			for orig, canonCol := range c1.ColMap {
				rec[orig] = e.Rec[canonCol]
			}
			permuted[i] = seq.Entry{Pos: e.Pos, Rec: rec}
		}
		if !testgen.EntriesApproxEqual(permuted, want) {
			t.Fatalf("seed %d: canonical tree disagrees with original modulo ColMap %v\noriginal:\n%s\ncanonical:\n%s",
				seed, c1.ColMap, rewritten, c1.Node)
		}
		checked++
	}
	t.Logf("canonicalized %d random rewritten blocks (idempotence, 3 shuffles each, eval cross-check)", checked)
}

// shuffleNode rebuilds the tree as a semantically-equal presentation
// variant: conjuncts and commutative operands reorder, offsets split,
// compose legs swap (wrapped in a column-restoring projection), and
// identity projections appear. Output columns keep their order and
// names, so the variant is a drop-in replacement for the original.
func shuffleNode(rng *rand.Rand, n *algebra.Node) (*algebra.Node, error) {
	switch n.Kind {
	case algebra.KindBase, algebra.KindConst:
		return n, nil
	case algebra.KindSelect:
		in, err := shuffleNode(rng, n.Inputs[0])
		if err != nil {
			return nil, err
		}
		conjs := splitAnd(n.Pred)
		rng.Shuffle(len(conjs), func(i, j int) { conjs[i], conjs[j] = conjs[j], conjs[i] })
		for i, c := range conjs {
			if conjs[i], err = shuffleExpr(rng, c); err != nil {
				return nil, err
			}
		}
		if len(conjs) > 1 && rng.Intn(2) == 0 {
			// Split into a stacked select chain.
			k := 1 + rng.Intn(len(conjs)-1)
			lower, err := algebra.Select(in, andAll(conjs[:k]))
			if err != nil {
				return nil, err
			}
			return algebra.Select(lower, andAll(conjs[k:]))
		}
		return algebra.Select(in, andAll(conjs))
	case algebra.KindProject:
		in, err := shuffleNode(rng, n.Inputs[0])
		if err != nil {
			return nil, err
		}
		items := make([]algebra.ProjItem, len(n.Items))
		for i, it := range n.Items {
			e, err := shuffleExpr(rng, it.Expr)
			if err != nil {
				return nil, err
			}
			items[i] = algebra.ProjItem{Expr: e, Name: it.Name}
		}
		return algebra.Project(in, items)
	case algebra.KindPosOffset:
		in, err := shuffleNode(rng, n.Inputs[0])
		if err != nil {
			return nil, err
		}
		if rng.Intn(2) == 0 {
			// Split the shift into a two-step chain.
			a := rng.Int63n(5) - 2
			lower, err := algebra.PosOffset(in, a)
			if err != nil {
				return nil, err
			}
			return algebra.PosOffset(lower, n.Offset-a)
		}
		return algebra.PosOffset(in, n.Offset)
	case algebra.KindValueOffset:
		in, err := shuffleNode(rng, n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return maybeIdentityProject(rng, mustNode(algebra.ValueOffset(in, n.Offset)))
	case algebra.KindAgg:
		in, err := shuffleNode(rng, n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return algebra.Agg(in, *n.Agg)
	case algebra.KindCollapse:
		in, err := shuffleNode(rng, n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return algebra.Collapse(in, n.Factor, *n.Agg)
	case algebra.KindExpand:
		in, err := shuffleNode(rng, n.Inputs[0])
		if err != nil {
			return nil, err
		}
		return algebra.Expand(in, n.Factor)
	case algebra.KindCompose:
		l, err := shuffleNode(rng, n.Inputs[0])
		if err != nil {
			return nil, err
		}
		r, err := shuffleNode(rng, n.Inputs[1])
		if err != nil {
			return nil, err
		}
		pred := n.Pred
		if pred != nil {
			if pred, err = shuffleExpr(rng, pred); err != nil {
				return nil, err
			}
		}
		if rng.Intn(2) == 0 {
			return algebra.Compose(l, r, pred, n.LeftQual, n.RightQual)
		}
		// Swap the legs, remap the predicate, and restore the original
		// column order (and names) with a permutation projection — a
		// drop-in replacement parents can still reference by index.
		nl, nr := l.Schema.NumFields(), r.Schema.NumFields()
		var swappedPred expr.Expr
		if pred != nil {
			m := make(map[int]int, nl+nr)
			for i := 0; i < nl; i++ {
				m[i] = nr + i
			}
			for i := 0; i < nr; i++ {
				m[nl+i] = i
			}
			if swappedPred, err = expr.Remap(pred, m); err != nil {
				return nil, err
			}
		}
		swapped, err := algebra.Compose(r, l, swappedPred, n.RightQual, n.LeftQual)
		if err != nil {
			return nil, err
		}
		items := make([]algebra.ProjItem, nl+nr)
		for i := 0; i < nl; i++ {
			c, err := expr.ColAt(swapped.Schema, nr+i)
			if err != nil {
				return nil, err
			}
			items[i] = algebra.ProjItem{Expr: c, Name: n.Schema.Field(i).Name}
		}
		for i := 0; i < nr; i++ {
			c, err := expr.ColAt(swapped.Schema, i)
			if err != nil {
				return nil, err
			}
			items[nl+i] = algebra.ProjItem{Expr: c, Name: n.Schema.Field(nl + i).Name}
		}
		return algebra.Project(swapped, items)
	default:
		return n, nil
	}
}

func mustNode(n *algebra.Node, err error) *algebra.Node {
	if err != nil {
		panic(err)
	}
	return n
}

// maybeIdentityProject wraps the node in an identity projection half the
// time — pure noise the canonicalizer must elide.
func maybeIdentityProject(rng *rand.Rand, n *algebra.Node) (*algebra.Node, error) {
	if rng.Intn(2) == 0 {
		return n, nil
	}
	items := make([]algebra.ProjItem, n.Schema.NumFields())
	for i := range items {
		c, err := expr.ColAt(n.Schema, i)
		if err != nil {
			return nil, err
		}
		items[i] = algebra.ProjItem{Expr: c, Name: n.Schema.Field(i).Name}
	}
	return algebra.Project(n, items)
}

// shuffleExpr produces an equal expression with commutative operands
// randomly swapped and comparisons randomly flipped.
func shuffleExpr(rng *rand.Rand, e expr.Expr) (expr.Expr, error) {
	switch v := e.(type) {
	case *expr.Col, *expr.Lit:
		return e, nil
	case *expr.Bin:
		l, err := shuffleExpr(rng, v.L)
		if err != nil {
			return nil, err
		}
		r, err := shuffleExpr(rng, v.R)
		if err != nil {
			return nil, err
		}
		op := v.Op
		if rng.Intn(2) == 0 {
			switch op {
			case expr.OpAdd, expr.OpMul, expr.OpEq, expr.OpNe, expr.OpAnd, expr.OpOr:
				l, r = r, l
			case expr.OpLt:
				op, l, r = expr.OpGt, r, l
			case expr.OpLe:
				op, l, r = expr.OpGe, r, l
			case expr.OpGt:
				op, l, r = expr.OpLt, r, l
			case expr.OpGe:
				op, l, r = expr.OpLe, r, l
			}
		}
		return expr.NewBin(op, l, r)
	case *expr.Not:
		inner, err := shuffleExpr(rng, v.E)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(inner)
	case *expr.Neg:
		inner, err := shuffleExpr(rng, v.E)
		if err != nil {
			return nil, err
		}
		return expr.NewNeg(inner)
	case *expr.Call:
		args := make([]expr.Expr, len(v.Args))
		for i, a := range v.Args {
			sa, err := shuffleExpr(rng, a)
			if err != nil {
				return nil, err
			}
			args[i] = sa
		}
		return expr.NewCall(v.Fn, args)
	default:
		return e, nil
	}
}

func splitAnd(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Bin); ok && b.Op == expr.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []expr.Expr{e}
}

func andAll(conjs []expr.Expr) expr.Expr {
	var acc expr.Expr
	for _, c := range conjs {
		next, err := expr.And(acc, c)
		if err != nil {
			panic(err)
		}
		acc = next
	}
	return acc
}
