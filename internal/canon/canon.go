// Package canon normalizes rewritten query blocks into a canonical
// normal form and fingerprints them. Two blocks that differ only in
// irrelevant presentation — conjunct order inside a predicate, an offset
// split into a chain of shifts, a pure permutation projection, the order
// of commutative compose legs, attribute names — canonicalize to the
// same tree and the same fingerprint. The materialized-view registry
// (internal/matview) keys on these fingerprints to recognize that a new
// query's block re-derives an already-materialized sequence (§3.4–3.5:
// a materialized derived sequence is just another cached access path).
//
// Normalizations applied (all semantics-preserving):
//
//   - select chains merge; conjuncts are canonicalized, sorted by their
//     rendering and deduplicated
//   - positional-offset chains fold into a single affine shift; a zero
//     shift vanishes
//   - projection items are canonicalized and sorted; a projection that
//     is a pure column permutation (including the identity and bare
//     renames) is elided entirely
//   - directly nested composes flatten into a leg list; legs sort by
//     their canonical rendering; all join predicates hoist to the top
//     rebuilt compose (positional join is associative and commutative
//     up to the column permutation the ColMap tracks)
//   - expressions normalize: commutative operands sort, a > b flips to
//     b < a, columns render positionally so names never matter
//
// Because normalization permutes output columns, Canonicalize reports a
// ColMap: output column i of the original block is column ColMap[i] of
// the canonical block. Substituting a materialized view for a block
// composes the two ColMaps and restores the original column order with a
// residual projection.
package canon

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

// Canon is the canonical form of a query block.
type Canon struct {
	// Node is the canonicalized tree — a valid algebra tree semantically
	// equal to the original up to the ColMap column permutation.
	Node *algebra.Node
	// Key is the canonical rendering: two blocks are structurally equal
	// exactly when their Keys are equal (names excluded).
	Key string
	// Fingerprint is a short collision-resistant hash of Key, for
	// display and fast inequality.
	Fingerprint string
	// ColMap maps output columns: original column i holds the same
	// values as canonical column ColMap[i]. Always a permutation.
	ColMap []int
	// SelectInputKey is the canonical rendering of the block under its
	// top-level selection — the block itself when the root is not a
	// selection (a block with no selection is a selection with zero
	// conjuncts). Precomputed so conjunct-subsumption matching compares
	// keys instead of re-rendering candidate inputs per probe.
	SelectInputKey string
	// Scope is the composed scope hull of the whole block viewed as one
	// complex operator (Proposition 2.1): the widest effective scope over
	// every root-to-leaf path.
	Scope algebra.ScopeProps
}

// Canonicalize normalizes the block rooted at n. The input tree is not
// modified; untouched subtrees are shared with the output.
func Canonicalize(n *algebra.Node) (*Canon, error) {
	if n == nil {
		return nil, fmt.Errorf("canon: nil node")
	}
	cn, cm, err := canonNode(n)
	if err != nil {
		return nil, err
	}
	key := renderNode(cn)
	sum := sha256.Sum256([]byte(key))
	inputKey := key
	if cn.Kind == algebra.KindSelect {
		inputKey = renderNode(cn.Inputs[0])
	}
	return &Canon{
		Node:           cn,
		Key:            key,
		Fingerprint:    hex.EncodeToString(sum[:8]),
		ColMap:         cm,
		Scope:          scopeHull(cn),
		SelectInputKey: inputKey,
	}, nil
}

// Fingerprint is a convenience returning only the fingerprint of n.
func Fingerprint(n *algebra.Node) (string, error) {
	c, err := Canonicalize(n)
	if err != nil {
		return "", err
	}
	return c.Fingerprint, nil
}

// canonNode returns the canonical tree for n plus the column map from
// n's output columns to the canonical node's.
func canonNode(n *algebra.Node) (*algebra.Node, []int, error) {
	switch n.Kind {
	case algebra.KindBase, algebra.KindConst:
		return n, identity(n.Schema.NumFields()), nil
	case algebra.KindSelect:
		return canonSelect(n)
	case algebra.KindProject:
		return canonProject(n)
	case algebra.KindPosOffset:
		return canonPosOffset(n)
	case algebra.KindValueOffset:
		in, im, err := canonNode(n.Inputs[0])
		if err != nil {
			return nil, nil, err
		}
		out, err := algebra.ValueOffset(in, n.Offset)
		return out, im, err
	case algebra.KindAgg:
		in, im, err := canonNode(n.Inputs[0])
		if err != nil {
			return nil, nil, err
		}
		spec := *n.Agg
		if spec.Arg >= 0 {
			spec.Arg = im[spec.Arg]
		}
		out, err := algebra.Agg(in, spec)
		return out, []int{0}, err
	case algebra.KindCollapse:
		in, im, err := canonNode(n.Inputs[0])
		if err != nil {
			return nil, nil, err
		}
		spec := *n.Agg
		if spec.Arg >= 0 {
			spec.Arg = im[spec.Arg]
		}
		out, err := algebra.Collapse(in, n.Factor, spec)
		return out, []int{0}, err
	case algebra.KindExpand:
		in, im, err := canonNode(n.Inputs[0])
		if err != nil {
			return nil, nil, err
		}
		out, err := algebra.Expand(in, n.Factor)
		return out, im, err
	case algebra.KindCompose:
		return canonCompose(n)
	default:
		return nil, nil, fmt.Errorf("canon: cannot canonicalize %s", n.Kind)
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// canonSelect merges select chains and sorts conjuncts.
func canonSelect(n *algebra.Node) (*algebra.Node, []int, error) {
	in, im, err := canonNode(n.Inputs[0])
	if err != nil {
		return nil, nil, err
	}
	pred, err := remapThrough(n.Pred, im)
	if err != nil {
		return nil, nil, err
	}
	conjs := splitConjuncts(pred)
	// The canonical input may itself be a select (the original had
	// select(select(...)) the rewriter didn't merge, or merging exposed
	// one); fold its conjuncts in and select over its input.
	if in.Kind == algebra.KindSelect {
		conjs = append(conjs, splitConjuncts(in.Pred)...)
		in = in.Inputs[0]
	}
	conjs, err = sortConjuncts(conjs)
	if err != nil {
		return nil, nil, err
	}
	merged, err := conjoin(conjs)
	if err != nil {
		return nil, nil, err
	}
	out, err := algebra.Select(in, merged)
	return out, im, err
}

// canonProject canonicalizes item expressions, elides pure column
// permutations, and sorts surviving items by rendering.
func canonProject(n *algebra.Node) (*algebra.Node, []int, error) {
	in, im, err := canonNode(n.Inputs[0])
	if err != nil {
		return nil, nil, err
	}
	type item struct {
		e    expr.Expr
		name string
		orig int
	}
	items := make([]item, len(n.Items))
	for i, it := range n.Items {
		e, err := remapThrough(it.Expr, im)
		if err != nil {
			return nil, nil, err
		}
		if e, err = canonExpr(e); err != nil {
			return nil, nil, err
		}
		items[i] = item{e: e, name: it.Name, orig: i}
	}
	// Elision: a projection whose items are bare column references
	// covering every input column exactly once computes nothing — it
	// permutes and renames. Fold it into the ColMap.
	exprs := make([]expr.Expr, len(items))
	for i, it := range items {
		exprs[i] = it.e
	}
	if perm, ok := bareColPermutation(exprs, in.Schema.NumFields()); ok {
		return in, perm, nil
	}
	sort.SliceStable(items, func(i, j int) bool {
		ri, rj := renderExpr(items[i].e), renderExpr(items[j].e)
		if ri != rj {
			return ri < rj
		}
		return items[i].orig < items[j].orig
	})
	cm := make([]int, len(items))
	proj := make([]algebra.ProjItem, len(items))
	for pos, it := range items {
		cm[it.orig] = pos
		proj[pos] = algebra.ProjItem{Expr: it.e, Name: it.name}
	}
	out, err := algebra.Project(in, proj)
	return out, cm, err
}

// bareColPermutation reports whether the expressions are bare column
// references forming a bijection over 0..arity-1, returning the indices.
func bareColPermutation(items []expr.Expr, arity int) ([]int, bool) {
	if len(items) != arity {
		return nil, false
	}
	seen := make([]bool, arity)
	perm := make([]int, len(items))
	for i, e := range items {
		c, ok := e.(*expr.Col)
		if !ok || c.Index < 0 || c.Index >= arity || seen[c.Index] {
			return nil, false
		}
		seen[c.Index] = true
		perm[i] = c.Index
	}
	return perm, true
}

// canonPosOffset folds offset chains into one affine shift and drops
// zero shifts: offset(offset(x, a), b) = offset(x, a+b).
func canonPosOffset(n *algebra.Node) (*algebra.Node, []int, error) {
	in, im, err := canonNode(n.Inputs[0])
	if err != nil {
		return nil, nil, err
	}
	total := n.Offset
	for in.Kind == algebra.KindPosOffset {
		total += in.Offset
		in = in.Inputs[0]
	}
	if total == 0 {
		return in, im, nil
	}
	out, err := algebra.PosOffset(in, total)
	return out, im, err
}

// canonCompose flattens directly nested composes into a leg list, sorts
// the legs by canonical rendering, hoists every join predicate to the
// rebuilt top compose, and tracks the induced column permutation.
// Positional join is associative, and commutative up to column order: at
// each position the output is non-Null iff every leg is non-Null and
// every predicate accepts, independent of nesting or leg order.
func canonCompose(n *algebra.Node) (*algebra.Node, []int, error) {
	// Canonicalize the children first: any compose reachable below —
	// even through a since-elided permutation projection — is already a
	// fully flattened, leg-sorted canonical compose with its predicate
	// at its top. Flattening over the canonical children therefore
	// flattens the whole compose region.
	l, lm, err := canonNode(n.Inputs[0])
	if err != nil {
		return nil, nil, err
	}
	r, rm, err := canonNode(n.Inputs[1])
	if err != nil {
		return nil, nil, err
	}
	// Column map from n's output columns into the concat of the two
	// canonical children (the "concat space").
	nl := len(lm)
	comb := make([]int, nl+len(rm))
	copy(comb, lm)
	for i, j := range rm {
		comb[nl+i] = nl + j
	}

	// Flatten the canonical children's compose spines into a leg list,
	// collecting every join predicate with the concat-space offset of
	// its compose's first column.
	type flatPred struct {
		e    expr.Expr
		base int
	}
	var legs []*algebra.Node
	var legStart []int
	var preds []flatPred
	totalCols := 0
	var gather func(m *algebra.Node) int
	gather = func(m *algebra.Node) int {
		if m.Kind != algebra.KindCompose {
			off := totalCols
			legs = append(legs, m)
			legStart = append(legStart, off)
			totalCols += m.Schema.NumFields()
			return off
		}
		off := gather(m.Inputs[0])
		gather(m.Inputs[1])
		if m.Pred != nil {
			preds = append(preds, flatPred{e: m.Pred, base: off})
		}
		return off
	}
	gather(l)
	gather(r)
	if n.Pred != nil {
		p, err := remapThrough(n.Pred, comb)
		if err != nil {
			return nil, nil, err
		}
		preds = append(preds, flatPred{e: p, base: 0})
	}

	// Sort legs by canonical rendering (stable: ties keep source order).
	order := identity(len(legs))
	renders := make([]string, len(legs))
	for i, leg := range legs {
		renders[i] = renderNode(leg)
	}
	sort.SliceStable(order, func(a, b int) bool { return renders[order[a]] < renders[order[b]] })

	// Concat-space -> sorted-space column map.
	canonStart := make([]int, len(legs))
	off := 0
	for _, legIdx := range order {
		canonStart[legIdx] = off
		off += legs[legIdx].Schema.NumFields()
	}
	sortMap := make([]int, totalCols)
	for i, leg := range legs {
		for c := 0; c < leg.Schema.NumFields(); c++ {
			sortMap[legStart[i]+c] = canonStart[i] + c
		}
	}

	// Remap predicates into the sorted space and merge their conjuncts.
	var conjs []expr.Expr
	for _, fp := range preds {
		m := make(map[int]int)
		for j := fp.base; j < totalCols; j++ {
			m[j-fp.base] = sortMap[j]
		}
		e, err := expr.Remap(fp.e, m)
		if err != nil {
			return nil, nil, err
		}
		conjs = append(conjs, splitConjuncts(e)...)
	}
	conjs, err = sortConjuncts(conjs)
	if err != nil {
		return nil, nil, err
	}
	pred, err := conjoin(conjs)
	if err != nil {
		return nil, nil, err
	}

	// Rebuild left-deep over the sorted legs; the merged predicate rides
	// on the outermost compose, whose concatenated schema is the sorted
	// flat column space.
	acc := legs[order[0]]
	for i := 1; i < len(order); i++ {
		var p expr.Expr
		if i == len(order)-1 {
			p = pred
		}
		acc, err = algebra.Compose(acc, legs[order[i]], p, "", "")
		if err != nil {
			return nil, nil, err
		}
	}
	// n's output column i sits at comb[i] in concat space, which lands
	// at sortMap[comb[i]] in the canonical output.
	colMap := make([]int, len(comb))
	for i, c := range comb {
		colMap[i] = sortMap[c]
	}
	return acc, colMap, nil
}

// scopeHull folds the per-leaf composed scopes of Proposition 2.1 into
// one hull: the widest effective scope of the block over any path.
func scopeHull(root *algebra.Node) algebra.ScopeProps {
	scopes := algebra.QueryScopes(root)
	out := algebra.UnitScope()
	first := true
	for _, s := range scopes {
		if first {
			out, first = s, false
			continue
		}
		out.FixedSize = out.FixedSize && s.FixedSize
		out.Sequential = out.Sequential && s.Sequential
		out.Relative = out.Relative && s.Relative
		out.Win = hullWindow(out.Win, s.Win)
	}
	if out.FixedSize {
		if sz, ok := out.Win.Size(); ok {
			out.Size = sz
		} else {
			out.FixedSize = false
		}
	}
	return out
}

func hullWindow(a, b algebra.Window) algebra.Window {
	out := algebra.Window{
		LoUnbounded: a.LoUnbounded || b.LoUnbounded,
		HiUnbounded: a.HiUnbounded || b.HiUnbounded,
	}
	if !out.LoUnbounded {
		out.Lo = a.Lo
		if b.Lo < a.Lo {
			out.Lo = b.Lo
		}
	}
	if !out.HiUnbounded {
		out.Hi = a.Hi
		if b.Hi > a.Hi {
			out.Hi = b.Hi
		}
	}
	return out
}

// renderNode renders a canonical tree as its Key. The rendering is
// injective on canonical trees: every structural degree of freedom
// (operator, parameters, child order) appears, and nothing cosmetic
// (attribute names, qualifiers) does.
func renderNode(n *algebra.Node) string {
	var b strings.Builder
	writeNode(&b, n)
	return b.String()
}

func writeNode(b *strings.Builder, n *algebra.Node) {
	switch n.Kind {
	case algebra.KindBase:
		fmt.Fprintf(b, "base(%s;%s)", n.Name, schemaTypes(n.Schema))
	case algebra.KindConst:
		b.WriteString("const(")
		for i, v := range n.Rec {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s:%s", v.String(), v.T)
		}
		b.WriteByte(')')
	case algebra.KindSelect:
		b.WriteString("sel{")
		writeExpr(b, n.Pred)
		b.WriteString("}(")
		writeNode(b, n.Inputs[0])
		b.WriteByte(')')
	case algebra.KindProject:
		b.WriteString("proj{")
		for i, it := range n.Items {
			if i > 0 {
				b.WriteByte(',')
			}
			writeExpr(b, it.Expr)
		}
		b.WriteString("}(")
		writeNode(b, n.Inputs[0])
		b.WriteByte(')')
	case algebra.KindPosOffset:
		fmt.Fprintf(b, "shift{%+d}(", n.Offset)
		writeNode(b, n.Inputs[0])
		b.WriteByte(')')
	case algebra.KindValueOffset:
		fmt.Fprintf(b, "voff{%+d}(", n.Offset)
		writeNode(b, n.Inputs[0])
		b.WriteByte(')')
	case algebra.KindAgg:
		fmt.Fprintf(b, "agg{%s,%d,%s}(", n.Agg.Func, n.Agg.Arg, windowKey(n.Agg.Window))
		writeNode(b, n.Inputs[0])
		b.WriteByte(')')
	case algebra.KindCompose:
		b.WriteString("join{")
		if n.Pred != nil {
			writeExpr(b, n.Pred)
		} else {
			b.WriteByte('-')
		}
		b.WriteString("}(")
		writeNode(b, n.Inputs[0])
		b.WriteByte(',')
		writeNode(b, n.Inputs[1])
		b.WriteByte(')')
	case algebra.KindCollapse:
		fmt.Fprintf(b, "collapse{%s,%d,%d}(", n.Agg.Func, n.Agg.Arg, n.Factor)
		writeNode(b, n.Inputs[0])
		b.WriteByte(')')
	case algebra.KindExpand:
		fmt.Fprintf(b, "expand{%d}(", n.Factor)
		writeNode(b, n.Inputs[0])
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "?%s", n.Kind)
	}
}

func windowKey(w algebra.Window) string {
	lo, hi := "-inf", "+inf"
	if !w.LoUnbounded {
		lo = fmt.Sprintf("%d", w.Lo)
	}
	if !w.HiUnbounded {
		hi = fmt.Sprintf("%d", w.Hi)
	}
	return lo + ".." + hi
}

func schemaTypes(s *seq.Schema) string {
	var b strings.Builder
	for i := 0; i < s.NumFields(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Field(i).Type.String())
	}
	return b.String()
}
