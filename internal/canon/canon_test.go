package canon

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

func mustData(t *testing.T, schema *seq.Schema, entries []seq.Entry) *seq.Materialized {
	t.Helper()
	m, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testBase(t *testing.T, name string) *algebra.Node {
	t.Helper()
	schema := seq.MustSchema(
		seq.Field{Name: "v", Type: seq.TFloat},
		seq.Field{Name: "w", Type: seq.TInt},
	)
	var entries []seq.Entry
	for p := int64(1); p <= 20; p += 2 {
		entries = append(entries, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p) / 2), seq.Int(p)}})
	}
	return algebra.Base(name, mustData(t, schema, entries))
}

func col(t *testing.T, n *algebra.Node, name string) *expr.Col {
	t.Helper()
	c, err := expr.NewCol(n.Schema, name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func bin(t *testing.T, op expr.BinOp, l, r expr.Expr) expr.Expr {
	t.Helper()
	e, err := expr.NewBin(op, l, r)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func canonOf(t *testing.T, n *algebra.Node) *Canon {
	t.Helper()
	c, err := Canonicalize(n)
	if err != nil {
		t.Fatalf("Canonicalize: %v\n%s", err, n)
	}
	return c
}

// Conjunct order inside a selection predicate must not affect the key,
// and neither must the a > b vs b < a spelling of a comparison.
func TestSelectConjunctOrderInsensitive(t *testing.T) {
	base := testBase(t, "s")
	p1 := bin(t, expr.OpGt, col(t, base, "v"), expr.Literal(seq.Float(3)))
	p2 := bin(t, expr.OpLt, col(t, base, "w"), expr.Literal(seq.Int(15)))
	p1flip := bin(t, expr.OpLt, expr.Literal(seq.Float(3)), col(t, base, "v"))

	a, err := algebra.Select(base, bin(t, expr.OpAnd, p1, p2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := algebra.Select(testBase(t, "s"), bin(t, expr.OpAnd, p2, p1flip))
	if err != nil {
		t.Fatal(err)
	}
	// A stacked select chain is the same block as one merged select.
	c1, err := algebra.Select(testBase(t, "s"), p2)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := algebra.Select(c1, p1)
	if err != nil {
		t.Fatal(err)
	}

	ca, cb, cc := canonOf(t, a), canonOf(t, b), canonOf(t, c2)
	if ca.Key != cb.Key || ca.Key != cc.Key {
		t.Fatalf("keys differ:\n%q\n%q\n%q", ca.Key, cb.Key, cc.Key)
	}
	if ca.Fingerprint != cb.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", ca.Fingerprint, cb.Fingerprint)
	}
}

// Offset chains fold into one affine shift; a zero net shift vanishes.
func TestOffsetFolding(t *testing.T) {
	base := testBase(t, "s")
	o1, _ := algebra.PosOffset(base, 2)
	o2, _ := algebra.PosOffset(o1, 3)
	direct, _ := algebra.PosOffset(testBase(t, "s"), 5)
	if k1, k2 := canonOf(t, o2).Key, canonOf(t, direct).Key; k1 != k2 {
		t.Fatalf("offset(offset(x,2),3) != offset(x,5): %q vs %q", k1, k2)
	}
	back, _ := algebra.PosOffset(o1, -2)
	if k1, k2 := canonOf(t, back).Key, canonOf(t, testBase(t, "s")).Key; k1 != k2 {
		t.Fatalf("net-zero offset chain did not vanish: %q vs %q", k1, k2)
	}
}

// A pure column-permutation projection is elided and folded into ColMap.
func TestProjectionElision(t *testing.T) {
	base := testBase(t, "s")
	perm, err := algebra.Project(base, []algebra.ProjItem{
		{Expr: col(t, base, "w"), Name: "w2"},
		{Expr: col(t, base, "v"), Name: "v2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := canonOf(t, perm)
	if c.Node.Kind != algebra.KindBase {
		t.Fatalf("permutation projection survived canonicalization:\n%s", c.Node)
	}
	// Output col 0 of the projection is base col 1 (w), col 1 is base col 0.
	if c.ColMap[0] != 1 || c.ColMap[1] != 0 {
		t.Fatalf("ColMap = %v, want [1 0]", c.ColMap)
	}
	if k := canonOf(t, testBase(t, "s")).Key; c.Key != k {
		t.Fatalf("elided projection key %q != base key %q", c.Key, k)
	}
}

// Compose legs sort canonically; the swap is tracked in ColMap.
func TestComposeLegOrderInsensitive(t *testing.T) {
	a1, b1 := testBase(t, "aa"), testBase(t, "zz")
	ab, err := algebra.Compose(a1, b1, nil, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	a2, b2 := testBase(t, "aa"), testBase(t, "zz")
	ba, err := algebra.Compose(b2, a2, nil, "b", "a")
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := canonOf(t, ab), canonOf(t, ba)
	if ca.Key != cb.Key {
		t.Fatalf("leg order changed key:\n%q\n%q", ca.Key, cb.Key)
	}
	// Both orders must agree where each source column landed.
	// ab columns: aa.v aa.w zz.v zz.w; ba columns: zz.v zz.w aa.v aa.w.
	for i := 0; i < 2; i++ {
		if ca.ColMap[i] != cb.ColMap[i+2] || ca.ColMap[i+2] != cb.ColMap[i] {
			t.Fatalf("inconsistent colmaps: %v vs %v", ca.ColMap, cb.ColMap)
		}
	}
}

// Nested composes flatten: compose(compose(a,b),c) == compose(a,compose(b,c)),
// with inner predicates hoisted to the top.
func TestComposeFlattening(t *testing.T) {
	mk := func(leftNested bool) *Canon {
		a, b, c := testBase(t, "a"), testBase(t, "b"), testBase(t, "c")
		if leftNested {
			inner, err := algebra.Compose(a, b, nil, "a", "b")
			if err != nil {
				t.Fatal(err)
			}
			top, err := algebra.Compose(inner, c, nil, "", "c")
			if err != nil {
				t.Fatal(err)
			}
			return canonOf(t, top)
		}
		inner, err := algebra.Compose(b, c, nil, "b", "c")
		if err != nil {
			t.Fatal(err)
		}
		top, err := algebra.Compose(a, inner, nil, "a", "")
		if err != nil {
			t.Fatal(err)
		}
		return canonOf(t, top)
	}
	l, r := mk(true), mk(false)
	if l.Key != r.Key {
		t.Fatalf("association changed key:\n%q\n%q", l.Key, r.Key)
	}
}

// Canonicalization is a fixpoint: canon(canon(x)) == canon(x) with an
// identity column map.
func TestIdempotent(t *testing.T) {
	base := testBase(t, "s")
	p := bin(t, expr.OpGt, col(t, base, "v"), expr.Literal(seq.Float(2)))
	sel, err := algebra.Select(base, p)
	if err != nil {
		t.Fatal(err)
	}
	off, err := algebra.PosOffset(sel, 3)
	if err != nil {
		t.Fatal(err)
	}
	c1 := canonOf(t, off)
	c2 := canonOf(t, c1.Node)
	if c1.Key != c2.Key {
		t.Fatalf("not idempotent:\n%q\n%q", c1.Key, c2.Key)
	}
	for i, j := range c2.ColMap {
		if i != j {
			t.Fatalf("re-canonicalization permuted columns: %v", c2.ColMap)
		}
	}
}

// Attribute names are cosmetic: the same structure under different
// names shares a key (column references render positionally).
func TestNamesDoNotMatter(t *testing.T) {
	mk := func(vname, wname string) *algebra.Node {
		schema := seq.MustSchema(
			seq.Field{Name: vname, Type: seq.TFloat},
			seq.Field{Name: wname, Type: seq.TInt},
		)
		var entries []seq.Entry
		for p := int64(1); p <= 9; p++ {
			entries = append(entries, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(1), seq.Int(p)}})
		}
		base := algebra.Base("s", mustData(t, schema, entries))
		c, err := expr.NewCol(base.Schema, vname)
		if err != nil {
			t.Fatal(err)
		}
		p, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(0)))
		if err != nil {
			t.Fatal(err)
		}
		sel, err := algebra.Select(base, p)
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}
	k1 := canonOf(t, mk("v", "w")).Key
	k2 := canonOf(t, mk("price", "volume")).Key
	if k1 != k2 {
		t.Fatalf("names leaked into the key:\n%q\n%q", k1, k2)
	}
}
