package cache

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func rec(v int64) seq.Record { return seq.Record{seq.Int(v)} }

func TestNewFIFORejectsNonPositiveCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFIFO(%d) did not panic", c)
				}
			}()
			NewFIFO(c)
		}()
	}
}

func TestPutGet(t *testing.T) {
	c := NewFIFO(4)
	c.Put(10, rec(1))
	c.Put(20, rec(2))
	if r, ok := c.Get(10); !ok || r[0].AsInt() != 1 {
		t.Errorf("Get(10) = %v, %v", r, ok)
	}
	if r, ok := c.Get(20); !ok || r[0].AsInt() != 2 {
		t.Errorf("Get(20) = %v, %v", r, ok)
	}
	if _, ok := c.Get(15); ok {
		t.Error("Get(15) must miss")
	}
	if c.Hits() != 2 || c.Misses() != 1 || c.Puts() != 2 {
		t.Errorf("counters: hits=%d misses=%d puts=%d", c.Hits(), c.Misses(), c.Puts())
	}
}

func TestFIFOEviction(t *testing.T) {
	c := NewFIFO(2)
	c.Put(1, rec(1))
	c.Put(2, rec(2))
	c.Put(3, rec(3)) // evicts pos 1
	if _, ok := c.Get(1); ok {
		t.Error("oldest entry must have been evicted")
	}
	if _, ok := c.Get(2); !ok {
		t.Error("pos 2 must survive")
	}
	if _, ok := c.Get(3); !ok {
		t.Error("pos 3 must survive")
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions())
	}
	if c.Len() != 2 || c.Peak() != 2 {
		t.Errorf("len=%d peak=%d", c.Len(), c.Peak())
	}
}

func TestOutOfOrderPutPanics(t *testing.T) {
	c := NewFIFO(4)
	c.Put(5, rec(1))
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Put must panic")
		}
	}()
	c.Put(5, rec(2))
}

func TestNullRecordsAreCacheable(t *testing.T) {
	c := NewFIFO(2)
	c.Put(7, nil)
	r, ok := c.Get(7)
	if !ok {
		t.Error("Null record at known position must be a cache hit")
	}
	if !r.IsNull() {
		t.Error("cached record must be Null")
	}
}

func TestEvictBelow(t *testing.T) {
	c := NewFIFO(8)
	for p := seq.Pos(1); p <= 6; p++ {
		c.Put(p, rec(int64(p)))
	}
	c.EvictBelow(4)
	if c.Len() != 3 {
		t.Errorf("len after EvictBelow = %d, want 3", c.Len())
	}
	if _, ok := c.Get(3); ok {
		t.Error("pos 3 must be evicted")
	}
	if _, ok := c.Get(4); !ok {
		t.Error("pos 4 must survive")
	}
	old, ok := c.Oldest()
	if !ok || old.Pos != 4 {
		t.Errorf("Oldest = %v, %v", old, ok)
	}
	nw, ok := c.Newest()
	if !ok || nw.Pos != 6 {
		t.Errorf("Newest = %v, %v", nw, ok)
	}
}

func TestOldestNewestEmpty(t *testing.T) {
	c := NewFIFO(2)
	if _, ok := c.Oldest(); ok {
		t.Error("empty Oldest must report false")
	}
	if _, ok := c.Newest(); ok {
		t.Error("empty Newest must report false")
	}
}

func TestAscend(t *testing.T) {
	c := NewFIFO(3)
	for p := seq.Pos(1); p <= 5; p++ { // wraps the ring
		c.Put(p, rec(int64(p)))
	}
	var got []seq.Pos
	c.Ascend(func(e seq.Entry) bool {
		got = append(got, e.Pos)
		return true
	})
	want := []seq.Pos{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Ascend = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Ascend = %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	c.Ascend(func(seq.Entry) bool { count++; return false })
	if count != 1 {
		t.Errorf("early-stop Ascend visited %d", count)
	}
}

func TestAscendRange(t *testing.T) {
	c := NewFIFO(10)
	for _, p := range []seq.Pos{2, 4, 6, 8} {
		c.Put(p, rec(int64(p)))
	}
	var got []seq.Pos
	c.AscendRange(3, 7, func(e seq.Entry) bool {
		got = append(got, e.Pos)
		return true
	})
	if len(got) != 2 || got[0] != 4 || got[1] != 6 {
		t.Errorf("AscendRange = %v, want [4 6]", got)
	}
	got = nil
	c.AscendRange(9, 100, func(e seq.Entry) bool { got = append(got, e.Pos); return true })
	if len(got) != 0 {
		t.Errorf("empty AscendRange = %v", got)
	}
	// Early stop.
	count := 0
	c.AscendRange(0, 100, func(seq.Entry) bool { count++; return false })
	if count != 1 {
		t.Errorf("early-stop AscendRange visited %d", count)
	}
}

func TestReset(t *testing.T) {
	c := NewFIFO(2)
	c.Put(1, rec(1))
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset must empty the cache")
	}
	c.Put(1, rec(2)) // re-inserting the same position after Reset is legal
	if r, ok := c.Get(1); !ok || r[0].AsInt() != 2 {
		t.Errorf("Get after Reset = %v, %v", r, ok)
	}
	if c.Peak() != 1 {
		t.Errorf("peak = %d", c.Peak())
	}
}

// Property: after any in-order insertion sequence into a cache of capacity
// k, the cache holds exactly the last min(n, k) insertions, and Get
// answers exactly those positions.
func TestFIFORetentionProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60)
		posSet := make(map[seq.Pos]bool)
		for i := 0; i < n; i++ {
			posSet[seq.Pos(rng.Intn(200))] = true
		}
		var positions []seq.Pos
		for p := range posSet {
			positions = append(positions, p)
		}
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		c := NewFIFO(capacity)
		for _, p := range positions {
			c.Put(p, rec(int64(p)))
		}
		keep := positions
		if len(keep) > capacity {
			keep = keep[len(keep)-capacity:]
		}
		if c.Len() != len(keep) {
			return false
		}
		kept := make(map[seq.Pos]bool, len(keep))
		for _, p := range keep {
			kept[p] = true
			r, ok := c.Get(p)
			if !ok || r[0].AsInt() != int64(p) {
				return false
			}
		}
		for _, p := range positions {
			if !kept[p] {
				if _, ok := c.Get(p); ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
