// Package cache implements the operator caches of §3.4: randomly
// accessible FIFO buffers, associatively addressable by position, that
// stream-access evaluation attaches to each operator. Cache sizes are
// fixed by the query plan; the package tracks peak residency so tests and
// experiments can verify the cache-finite property (Definition 3.2).
package cache

import (
	"fmt"

	"repro/internal/seq"
)

// FIFO is a first-in-first-out positional record cache. Records are
// inserted in increasing position order (the order a stream access
// produces them); when the cache is full the oldest entry is evicted.
// Lookup by position is O(log n) via binary search over the ring, which
// stays sorted because insertion order is positional order.
type FIFO struct {
	buf  []seq.Entry // ring storage
	head int         // index of oldest entry
	n    int         // live entries
	cap  int

	lastPos seq.Pos
	havePos bool
	peak    int
	hits    int64
	misses  int64
	puts    int64
	evicts  int64
}

// NewFIFO returns a cache holding at most capacity entries.
// Capacity must be positive.
func NewFIFO(capacity int) *FIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: capacity must be positive, got %d", capacity))
	}
	return &FIFO{buf: make([]seq.Entry, capacity), cap: capacity}
}

// Len returns the number of live entries.
func (c *FIFO) Len() int { return c.n }

// Cap returns the configured capacity.
func (c *FIFO) Cap() int { return c.cap }

// Peak returns the maximum number of entries ever resident.
func (c *FIFO) Peak() int { return c.peak }

// Hits and Misses return the lookup counters; Puts and Evictions the
// insertion counters.
func (c *FIFO) Hits() int64      { return c.hits }
func (c *FIFO) Misses() int64    { return c.misses }
func (c *FIFO) Puts() int64      { return c.puts }
func (c *FIFO) Evictions() int64 { return c.evicts }

func (c *FIFO) at(i int) *seq.Entry {
	return &c.buf[(c.head+i)%c.cap]
}

// Put inserts a record at the given position, which must exceed every
// previously inserted position. Inserting a Null record is allowed: some
// operators cache "position known empty" results.
func (c *FIFO) Put(pos seq.Pos, rec seq.Record) {
	if c.havePos && pos <= c.lastPos {
		panic(fmt.Sprintf("cache: out-of-order Put at %d after %d", pos, c.lastPos))
	}
	c.lastPos, c.havePos = pos, true
	c.puts++
	if c.n == c.cap {
		c.buf[c.head] = seq.Entry{}
		c.head = (c.head + 1) % c.cap
		c.n--
		c.evicts++
	}
	*c.at(c.n) = seq.Entry{Pos: pos, Rec: rec}
	c.n++
	if c.n > c.peak {
		c.peak = c.n
	}
}

// Get returns the cached record at exactly pos. The boolean reports
// whether the position is present in the cache at all (a present position
// may still hold a Null record).
func (c *FIFO) Get(pos seq.Pos) (seq.Record, bool) {
	i, ok := c.search(pos)
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return c.at(i).Rec, true
}

// search finds the smallest index whose position is >= pos; ok reports an
// exact match.
func (c *FIFO) search(pos seq.Pos) (int, bool) {
	lo, hi := 0, c.n
	for lo < hi {
		mid := (lo + hi) / 2
		if c.at(mid).Pos < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < c.n && c.at(lo).Pos == pos
}

// EvictBelow drops every entry with position < pos (used by sliding
// windows to retire records that left the scope).
func (c *FIFO) EvictBelow(pos seq.Pos) {
	for c.n > 0 && c.buf[c.head].Pos < pos {
		c.buf[c.head] = seq.Entry{}
		c.head = (c.head + 1) % c.cap
		c.n--
		c.evicts++
	}
}

// Oldest returns the oldest live entry.
func (c *FIFO) Oldest() (seq.Entry, bool) {
	if c.n == 0 {
		return seq.Entry{}, false
	}
	return *c.at(0), true
}

// Newest returns the most recently inserted entry.
func (c *FIFO) Newest() (seq.Entry, bool) {
	if c.n == 0 {
		return seq.Entry{}, false
	}
	return *c.at(c.n - 1), true
}

// Ascend calls f on each live entry from oldest to newest, stopping early
// if f returns false.
func (c *FIFO) Ascend(f func(seq.Entry) bool) {
	for i := 0; i < c.n; i++ {
		if !f(*c.at(i)) {
			return
		}
	}
}

// AscendRange calls f on each live entry with position in [lo, hi], in
// increasing position order, stopping early if f returns false.
func (c *FIFO) AscendRange(lo, hi seq.Pos, f func(seq.Entry) bool) {
	i, _ := c.search(lo)
	for ; i < c.n; i++ {
		e := c.at(i)
		if e.Pos > hi {
			return
		}
		if !f(*e) {
			return
		}
	}
}

// Reset empties the cache and clears positional ordering state (counters
// are preserved so long-running plans keep cumulative statistics).
func (c *FIFO) Reset() {
	for i := 0; i < c.n; i++ {
		*c.at(i) = seq.Entry{}
	}
	c.head, c.n = 0, 0
	c.havePos = false
}
