package planlint_test

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/matview"
	"repro/internal/planlint"
	"repro/internal/seq"
	"repro/internal/storage"
)

// ivmFixture registers a posoffset view over a small base, appends one
// record, runs real maintenance, and hands back everything the verifier
// needs.
func ivmFixture(t *testing.T, epoch int64) (*matview.Registry, func(string) (seq.Sequence, bool), []matview.MaintenanceReport) {
	t.Helper()
	schema := seq.MustSchema(seq.Field{Name: "v", Type: seq.TInt})
	mk := func(positions ...int64) seq.Sequence {
		entries := make([]seq.Entry, len(positions))
		for i, p := range positions {
			entries[i] = seq.Entry{Pos: p, Rec: seq.Record{seq.Int(p)}}
		}
		data, err := seq.NewMaterialized(schema, entries)
		if err != nil {
			t.Fatal(err)
		}
		st, err := storage.FromMaterialized(data, storage.KindSparse, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	oldData, newData := mk(0, 1, 2), mk(0, 1, 2, 5)
	block, err := algebra.PosOffset(algebra.Base("b", oldData), 0)
	if err != nil {
		t.Fatal(err)
	}
	span := seq.NewSpan(0, 10)
	viewData, err := algebra.EvalRange(block, span)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := seq.NewMaterialized(block.Schema, viewData)
	if err != nil {
		t.Fatal(err)
	}
	reg := matview.New()
	if _, err := reg.Register("v", block, mat, span); err != nil {
		t.Fatal(err)
	}
	lookup := func(name string) (seq.Sequence, bool) {
		if name == "b" {
			return newData, true
		}
		return nil, false
	}
	reports, err := core.MaintainViews(reg, "b", seq.NewSpan(5, 5), epoch, lookup, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return reg, lookup, reports
}

func TestVerifyMaintenanceClean(t *testing.T) {
	for _, epoch := range []int64{0, 3} {
		reg, lookup, reports := ivmFixture(t, epoch)
		if issues := planlint.VerifyMaintenance(reg, lookup, reports); len(issues) != 0 {
			t.Fatalf("epoch %d: clean maintenance flagged:\n%v", epoch, planlint.Error(issues))
		}
	}
}

func TestVerifyMaintenanceCatchesViolations(t *testing.T) {
	reg, lookup, reports := ivmFixture(t, 0)
	if len(reports) != 1 || reports[0].Action != matview.MaintainStitch {
		t.Fatalf("fixture did not stitch: %v", reports)
	}

	// A report whose recorded halo disagrees with re-derivation.
	lied := reports[0]
	lied.Affected = seq.NewSpan(7, 7)
	lied.StitchSpan = seq.NewSpan(7, 7)
	issues := planlint.VerifyMaintenance(reg, lookup, []matview.MaintenanceReport{lied})
	if !hasInvariant(issues, "ivm/halo-coverage") {
		t.Fatalf("halo disagreement not reported:\n%v", planlint.Error(issues))
	}

	// A stitch whose span is not the halo∩span intersection.
	off := reports[0]
	off.StitchSpan = seq.NewSpan(off.StitchSpan.Start, seq.ClampPos(off.StitchSpan.End+1))
	issues = planlint.VerifyMaintenance(reg, lookup, []matview.MaintenanceReport{off})
	if !hasInvariant(issues, "ivm/halo-coverage") {
		t.Fatalf("stitch-span mismatch not reported:\n%v", planlint.Error(issues))
	}

	// Stitched content that does not match re-evaluation: lie about the
	// base binding instead of the store.
	stale := func(name string) (seq.Sequence, bool) {
		s, ok := lookup(name)
		if !ok {
			return nil, false
		}
		_ = s
		schema := seq.MustSchema(seq.Field{Name: "v", Type: seq.TInt})
		data, err := seq.NewMaterialized(schema, []seq.Entry{{Pos: 5, Rec: seq.Record{seq.Int(99)}}})
		if err != nil {
			t.Fatal(err)
		}
		st, err := storage.FromMaterialized(data, storage.KindSparse, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st, true
	}
	issues = planlint.VerifyMaintenance(reg, stale, []matview.MaintenanceReport{reports[0]})
	if !hasInvariant(issues, "ivm/stitch-exact") {
		t.Fatalf("content mismatch not reported:\n%v", planlint.Error(issues))
	}

	// Epochs running backwards across a batch.
	a, b := reports[0], reports[0]
	a.Epoch, b.Epoch = 5, 4
	issues = planlint.VerifyMaintenance(reg, lookup, []matview.MaintenanceReport{a, b})
	if !hasInvariant(issues, "ivm/epoch-monotone") {
		t.Fatalf("epoch regression not reported:\n%v", planlint.Error(issues))
	}
}
