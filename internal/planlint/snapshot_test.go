package planlint

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/matview"
	"repro/internal/seq"
	"repro/internal/storage"
)

func snapFixture(t *testing.T) (*seq.Materialized, *storage.Versioned) {
	t.Helper()
	schema, err := seq.NewSchema(seq.Field{Name: "v", Type: seq.TInt})
	if err != nil {
		t.Fatal(err)
	}
	entries := []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Int(1)}},
		{Pos: 2, Rec: seq.Record{seq.Int(2)}},
	}
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	v, err := storage.NewVersioned(data, storage.KindSparse, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return data, v
}

func hasIssue(issues []Issue, id, substr string) bool {
	for _, is := range issues {
		if is.Invariant == id && strings.Contains(is.Detail, substr) {
			return true
		}
	}
	return false
}

func TestVerifySnapshotClean(t *testing.T) {
	_, v := snapFixture(t)
	leaf := algebra.Base("s", v.SnapshotAt(0))
	if issues := VerifySnapshot(leaf, nil, 0); len(issues) != 0 {
		t.Fatalf("clean snapshot plan reported %v", issues)
	}
}

func TestVerifySnapshotPinnedLeaf(t *testing.T) {
	data, _ := snapFixture(t)
	// A live (non-snapshot) store as a leaf must be rejected.
	store, err := storage.FromMaterialized(data, storage.KindSparse, 0)
	if err != nil {
		t.Fatal(err)
	}
	leaf := algebra.Base("s", store)
	issues := VerifySnapshot(leaf, nil, 0)
	if !hasIssue(issues, "snapshot/pinned-leaf", "not an epoch-pinned snapshot") {
		t.Fatalf("live leaf passed: %v", issues)
	}
}

func TestVerifySnapshotSingleEpoch(t *testing.T) {
	_, v := snapFixture(t)
	if err := v.Append(seq.Entry{Pos: 3, Rec: seq.Record{seq.Int(3)}}, 1); err != nil {
		t.Fatal(err)
	}
	// Leaves pinned at different epochs inside one plan.
	left := algebra.Base("s", v.SnapshotAt(0))
	right := algebra.Base("s2", v.SnapshotAt(1))
	join, err := algebra.Compose(left, right, nil, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	issues := VerifySnapshot(join, nil, 0)
	if !hasIssue(issues, "snapshot/single-epoch", "mixes page versions") {
		t.Fatalf("mixed-epoch plan passed: %v", issues)
	}
}

func TestVerifySnapshotViewEpoch(t *testing.T) {
	data, v := snapFixture(t)
	leaf := algebra.Base("s", v.SnapshotAt(0))
	c, err := expr.NewCol(leaf.Schema, "v")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Int(0)))
	if err != nil {
		t.Fatal(err)
	}
	block, err := algebra.Select(algebra.Base("s", data), pred)
	if err != nil {
		t.Fatal(err)
	}
	r := matview.New()
	view, err := r.RegisterAt("hot", block, data, seq.NewSpan(1, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	sub := &matview.Substitution{View: view, Block: block, Need: seq.NewSpan(1, 2)}

	// Reader pinned before the view existed.
	if issues := VerifySnapshot(leaf, []*matview.Substitution{sub}, 0); !hasIssue(issues, "snapshot/view-epoch", "reader epoch 0") {
		t.Fatalf("pre-creation view use passed: %v", issues)
	}
	// Reader inside the validity window — but the leaf must match too.
	okLeaf := algebra.Base("s", v.SnapshotAt(6))
	if issues := VerifySnapshot(okLeaf, []*matview.Substitution{sub}, 6); len(issues) != 0 {
		t.Fatalf("valid view use reported %v", issues)
	}
	// Reader pinned after invalidation.
	r.InvalidateBaseFrom("s", 7)
	lateLeaf := algebra.Base("s", v.SnapshotAt(8))
	if issues := VerifySnapshot(lateLeaf, []*matview.Substitution{sub}, 8); !hasIssue(issues, "snapshot/view-epoch", "reader epoch 8") {
		t.Fatalf("post-invalidation view use passed: %v", issues)
	}
}
