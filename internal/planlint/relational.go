package planlint

import (
	"fmt"
	"math"

	"repro/internal/relational"
)

// VerifyRelational checks the rel/* invariant family over a relational
// plan descriptor (relational.PlanNode) — the ROADMAP item "extend
// planlint to the relational baseline engine", so the E1 comparison
// runs two verified engines, not one verified engine against an
// unchecked loop:
//
//	rel/arity        each operator has the child count and payload its
//	                 Op demands (scans carry a relation and nothing
//	                 else; unary and binary operators carry children).
//	rel/schema       tuple widths derive consistently: projection
//	                 columns index into the child's width, every
//	                 operator's width is well-defined.
//	rel/cardinality  estimates are finite and non-negative, a scan
//	                 states the exact relation cardinality (the
//	                 baseline has perfect table statistics), and no
//	                 unary operator claims more output tuples than its
//	                 input.
func VerifyRelational(root *relational.PlanNode) []Issue {
	c := &checker{}
	if root == nil {
		c.reportRel("rel/arity", nil, "nil plan root")
		return c.issues
	}
	var walk func(n *relational.PlanNode)
	walk = func(n *relational.PlanNode) {
		c.checkRelShape(n)
		c.checkRelCardinality(n)
		for _, ch := range n.Children {
			if ch == nil {
				c.reportRel("rel/arity", n, "nil child")
				continue
			}
			walk(ch)
		}
	}
	walk(root)
	if root.Width() < 0 {
		c.reportRel("rel/schema", root, "plan width is not derivable")
	}
	return c.issues
}

func (c *checker) reportRel(invariant string, n *relational.PlanNode, format string, args ...any) {
	node := "<nil>"
	if n != nil {
		node = n.Op
		if n.Rel != nil {
			node = fmt.Sprintf("%s(%s)", n.Op, n.Rel.Name)
		}
	}
	c.issues = append(c.issues, Issue{
		Invariant: invariant,
		Ref:       "Example 1.1",
		Node:      node,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// relArity returns the expected child count per Op (-1 for unknown).
func relArity(op string) int {
	switch op {
	case "scan":
		return 0
	case "select", "project", "aggregate":
		return 1
	case "nested-loop-join", "merge-join", "apply":
		return 2
	default:
		return -1
	}
}

func (c *checker) checkRelShape(n *relational.PlanNode) {
	want := relArity(n.Op)
	if want < 0 {
		c.reportRel("rel/arity", n, "unknown operator %q", n.Op)
		return
	}
	if len(n.Children) != want {
		c.reportRel("rel/arity", n, "has %d children, want %d", len(n.Children), want)
		return
	}
	if n.Op == "scan" {
		if n.Rel == nil {
			c.reportRel("rel/arity", n, "scan without a relation")
		}
	} else if n.Rel != nil {
		c.reportRel("rel/arity", n, "non-scan operator carries a relation")
	}
	if n.Op == "project" {
		inWidth := -1
		if len(n.Children) == 1 && n.Children[0] != nil {
			inWidth = n.Children[0].Width()
		}
		if len(n.Cols) == 0 {
			c.reportRel("rel/schema", n, "projection with no output columns")
		}
		for _, col := range n.Cols {
			if col < 0 || (inWidth >= 0 && col >= inWidth) {
				c.reportRel("rel/schema", n, "projection column %d outside input width %d", col, inWidth)
			}
		}
	} else if len(n.Cols) != 0 {
		c.reportRel("rel/schema", n, "non-projection operator carries projection columns")
	}
}

func (c *checker) checkRelCardinality(n *relational.PlanNode) {
	est := n.EstTuples
	if math.IsNaN(est) || math.IsInf(est, 0) || est < 0 {
		c.reportRel("rel/cardinality", n, "estimate %v is not finite and non-negative", est)
		return
	}
	switch n.Op {
	case "scan":
		if n.Rel != nil && est != float64(n.Rel.Cardinality()) {
			c.reportRel("rel/cardinality", n, "scan estimate %v, relation holds %d tuples",
				est, n.Rel.Cardinality())
		}
	case "select", "project", "aggregate":
		if len(n.Children) == 1 && n.Children[0] != nil {
			if in := n.Children[0].EstTuples; est > in {
				c.reportRel("rel/cardinality", n, "unary operator estimates %v output tuples from %v inputs",
					est, in)
			}
		}
		if n.Op == "aggregate" && est > 1 {
			c.reportRel("rel/cardinality", n, "scalar aggregate estimates %v tuples, want ≤ 1", est)
		}
	}
}
