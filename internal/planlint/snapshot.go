package planlint

import (
	"repro/internal/algebra"
	"repro/internal/matview"
)

// snapshotStore is the structural interface of an MVCC snapshot leaf
// (storage.Snapshot): a store frozen at the reader epoch it was pinned
// at. Declared locally so the verifier stays decoupled from the storage
// implementation — anything that reports a snapshot epoch qualifies.
type snapshotStore interface {
	SnapshotEpoch() int64
}

// VerifySnapshot re-derives the snapshot-isolation invariants of a
// server reader plan (the snapshot/* invariant family; see
// docs/INVARIANTS.md). A reader session pins one MVCC epoch and must
// evaluate every base sequence — and use every substituted materialized
// view — against exactly that epoch:
//
//   - snapshot/pinned-leaf: every base leaf of the (rewritten) logical
//     tree is an MVCC snapshot store, not a live mutable store. A live
//     leaf could observe concurrent writes mid-scan.
//   - snapshot/single-epoch: every snapshot leaf is pinned at the
//     reader's epoch — no plan mixes page versions across epochs.
//   - snapshot/view-epoch: every materialized-view substitution uses a
//     view whose validity window [FromEpoch, InvalidFrom) contains the
//     reader's epoch: the view's frozen contents correspond to the base
//     pages the reader sees.
//
// Constant-sequence leaves carry no storage and are exempt.
func VerifySnapshot(root *algebra.Node, subs []*matview.Substitution, epoch int64) []Issue {
	c := &checker{}
	if root == nil {
		c.report("snapshot/pinned-leaf", "MVCC", nil, "nil query root")
		return c.issues
	}
	var walk func(n *algebra.Node)
	walk = func(n *algebra.Node) {
		if n.Kind == algebra.KindBase {
			snap, ok := n.Seq.(snapshotStore)
			if !ok {
				c.report("snapshot/pinned-leaf", "MVCC", n,
					"base leaf %q is not an epoch-pinned snapshot store (%T)", n.Name, n.Seq)
			} else if got := snap.SnapshotEpoch(); got != epoch {
				c.report("snapshot/single-epoch", "MVCC", n,
					"base leaf %q pinned at epoch %d, reader pinned at %d: plan mixes page versions across epochs",
					n.Name, got, epoch)
			}
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)

	for _, s := range subs {
		if s == nil || s.View == nil {
			c.report("snapshot/view-epoch", "MVCC", nil, "incomplete substitution record")
			continue
		}
		if !s.View.ValidAt(epoch) {
			c.report("snapshot/view-epoch", "MVCC", s.Block,
				"view %q valid over epochs [%d, %d) does not contain reader epoch %d",
				s.View.Name, s.View.FromEpoch, s.View.InvalidFrom(), epoch)
		}
	}
	return c.issues
}
