package planlint_test

import (
	"flag"
	"math/rand"
	"testing"

	"fmt"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/matview"
	"repro/internal/parallel"
	"repro/internal/planlint"
	"repro/internal/reopt"
	"repro/internal/seq"
	"repro/internal/testgen"
)

var fuzzPlans = flag.Int("planlint.plans", 1200, "number of random plans for the differential fuzz harness")

// TestDifferentialFuzz is the planlint fuzz harness: it generates random
// queries, asserts every one is verifier-clean as a logical tree, runs
// the optimizer in verify mode (which re-checks invariants after every
// rewrite-rule firing, on the Step-2 annotation, and on both physical
// plans), and cross-checks the optimized plan's evaluation against the
// reference interpreter. Any invariant violation or evaluation
// disagreement pinpoints the seed and the offending query.
func TestDifferentialFuzz(t *testing.T) {
	span := seq.NewSpan(-10, 50)
	cfg := testgen.Config{MaxDepth: 5, MaxPos: 32, BaseDensity: 0.5}
	optionSets := []core.Options{
		{},
		{DisableRewrites: true},
		{DisableSpanPropagation: true},
		{ForceNaiveAggregates: true, ForceNaiveValueOffsets: true},
		{DisableSlidingAggregates: true},
	}
	verified, partitioned, substituted := 0, 0, 0
	respliced, reoptTails := 0, 0
	var batched, batchParts int64
	for seed := int64(1); verified < *fuzzPlans; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, err := testgen.RandomQuery(rng, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		if algebra.Divergent(q) {
			continue // the optimizer rejects these up front
		}
		// Every generated tree must be invariant-clean on its own.
		if issues := planlint.Verify(q); len(issues) != 0 {
			t.Fatalf("seed %d: generated query fails verification:\n%v\nquery:\n%s",
				seed, planlint.Error(issues), q)
		}
		opts := optionSets[seed%int64(len(optionSets))]
		opts.Verify = true
		res, err := core.Optimize(q, span, opts)
		if err != nil {
			t.Fatalf("seed %d: optimize (verify mode): %v\nquery:\n%s", seed, err, q)
		}
		want, err := algebra.EvalRange(q, span)
		if err != nil {
			t.Fatalf("seed %d: reference interpreter: %v\nquery:\n%s", seed, err, q)
		}
		got, err := res.Run()
		if err != nil {
			t.Fatalf("seed %d: run: %v\nquery:\n%s\nplan:\n%s", seed, err, q, res.Explain())
		}
		if !testgen.EntriesApproxEqual(got.Entries(), want) {
			t.Fatalf("seed %d: optimized evaluation disagrees with the reference\nquery:\n%s\nplan:\n%s",
				seed, q, res.Explain())
		}
		// Post-run: caches must never have exceeded their configured
		// capacity (the runtime side of Definition 3.2).
		if issues := planlint.VerifyPhysical(res.Plan); len(issues) != 0 {
			t.Fatalf("seed %d: post-run physical verification:\n%v", seed, planlint.Error(issues))
		}
		// Batch-vs-scalar differential: the vectorized data plane must
		// reproduce the scalar interpreter's stream record for record on
		// the same physical plan, and the batch stream itself must uphold
		// the batch/* invariants (span tiling, validity/Null agreement,
		// intern-table isolation).
		if issues := planlint.VerifyBatches(res.Plan, res.RunSpan); len(issues) != 0 {
			t.Fatalf("seed %d: batch verification:\n%v\nquery:\n%s\nplan:\n%s",
				seed, planlint.Error(issues), q, res.Explain())
		}
		if res.RunSpan.Bounded() && !res.RunSpan.IsEmpty() {
			bctx := seq.NewBatchCtx()
			bgot, err := exec.RunBatch(res.Plan, res.RunSpan, bctx)
			if err != nil {
				t.Fatalf("seed %d: batch run: %v\nquery:\n%s\nplan:\n%s", seed, err, q, res.Explain())
			}
			sgot, err := exec.Run(res.Plan, res.RunSpan)
			if err != nil {
				t.Fatalf("seed %d: scalar run: %v\nquery:\n%s\nplan:\n%s", seed, err, q, res.Explain())
			}
			if !testgen.EntriesApproxEqual(bgot.Entries(), sgot.Entries()) {
				t.Fatalf("seed %d: batch evaluation disagrees with scalar\nquery:\n%s\nplan:\n%s",
					seed, q, res.Explain())
			}
			batched += bctx.Batches
		}
		// Partitioned evaluation must agree with the serial stream record
		// for record at any K on any clonable plan, including plans the
		// cost model would never split (ForceK bypasses it). The forced
		// decisions also go through the partition invariant verifier.
		for _, k := range []int{2, 3, 7} {
			dec, err := parallel.ForceK(res.Plan, res.RunSpan, k)
			if err != nil {
				break // unbounded span or unclonable plan: nothing to partition
			}
			if issues := planlint.VerifyPartitions(res.Plan, dec); len(issues) != 0 {
				t.Fatalf("seed %d: K=%d partition verification:\n%v\nplan:\n%s",
					seed, k, planlint.Error(issues), res.Explain())
			}
			pgot, err := parallel.Run(res.Plan, res.RunSpan, dec)
			if err != nil {
				t.Fatalf("seed %d: K=%d partitioned run: %v\nquery:\n%s\nplan:\n%s",
					seed, k, err, q, res.Explain())
			}
			if !testgen.EntriesApproxEqual(pgot.Entries(), got.Entries()) {
				t.Fatalf("seed %d: K=%d partitioned evaluation disagrees with serial\nquery:\n%s\nplan:\n%s",
					seed, k, q, res.Explain())
			}
			// The partitioned batch plane must agree too: per-worker
			// forked intern tables, concatenated in partition order.
			bctx := seq.NewBatchCtx()
			pbgot, err := parallel.RunBatch(res.Plan, res.RunSpan, dec, bctx)
			if err != nil {
				t.Fatalf("seed %d: K=%d partitioned batch run: %v\nquery:\n%s\nplan:\n%s",
					seed, k, err, q, res.Explain())
			}
			if !testgen.EntriesApproxEqual(pbgot.Entries(), got.Entries()) {
				t.Fatalf("seed %d: K=%d partitioned batch evaluation disagrees with serial\nquery:\n%s\nplan:\n%s",
					seed, k, q, res.Explain())
			}
			batchParts += bctx.Batches
			if dec.Parallel() {
				partitioned++
			}
		}
		// Mid-run reoptimization differential: splice forcibly at every
		// checkpoint (threshold 0), at an adversarial single midpoint,
		// and with forced tail parallelism at K in {2,3,7}. Verify mode
		// re-runs the planlint physical/cost/partition checks on every
		// spliced plan and the reopt/* splice invariants on the executed
		// segments; the output must match the static plan and the
		// reference record for record regardless.
		if res.RunSpan.Bounded() && !res.RunSpan.IsEmpty() {
			mid := res.RunSpan.Start + res.RunSpan.Len()/2
			reoptCfgs := []reopt.Config{
				{Enabled: true, CheckEvery: 16, Threshold: 0},
				{Enabled: true, CheckEvery: 1 << 30, Threshold: 8, ForceAt: &mid},
			}
			for _, k := range []int{2, 3, 7} {
				reoptCfgs = append(reoptCfgs,
					reopt.Config{Enabled: true, CheckEvery: 16, Threshold: 0, TailK: k})
			}
			for ci, rcfg := range reoptCfgs {
				rgot, rep, err := res.RunReoptWith(rcfg)
				if err != nil {
					t.Fatalf("seed %d: reopt cfg %d: %v\nquery:\n%s\nplan:\n%s",
						seed, ci, err, q, res.Explain())
				}
				if !testgen.EntriesApproxEqual(rgot.Entries(), got.Entries()) {
					t.Fatalf("seed %d: reopt cfg %d disagrees with the static plan\nquery:\n%s\nplan:\n%s\nreport:\n%s",
						seed, ci, q, res.Explain(), rep.Render())
				}
				if !testgen.EntriesApproxEqual(rgot.Entries(), want) {
					t.Fatalf("seed %d: reopt cfg %d disagrees with the reference\nquery:\n%s\nplan:\n%s\nreport:\n%s",
						seed, ci, q, res.Explain(), rep.Render())
				}
				respliced += len(rep.Switches)
				for _, s := range rep.Segments {
					if s.K > 1 {
						reoptTails++
					}
				}
			}
		}
		// Materialized-view differential: pre-materialize a random
		// sub-block of the rewritten tree as a view, re-optimize with the
		// registry (verify mode re-checks the matview/* invariants), and
		// the answer must match the no-view evaluation record for record.
		if node, nspan, ok := randomSubBlock(rng, res); ok {
			entries, evalErr := algebra.EvalRange(node, nspan)
			if evalErr == nil {
				kept := entries[:0]
				for _, e := range entries {
					if !e.Rec.IsNull() {
						kept = append(kept, e)
					}
				}
				data, err := seq.NewMaterialized(node.Schema, kept)
				if err != nil {
					t.Fatalf("seed %d: materialize sub-block: %v\n%s", seed, err, node)
				}
				reg := matview.New()
				if _, err := reg.Register(fmt.Sprintf("fuzz-%d", seed), node, data, nspan); err != nil {
					t.Fatalf("seed %d: register sub-block view: %v\n%s", seed, err, node)
				}
				opts.Views = reg
				vres, err := core.Optimize(q, span, opts)
				if err != nil {
					t.Fatalf("seed %d: optimize with view (verify mode): %v\nquery:\n%s", seed, err, q)
				}
				vgot, err := vres.Run()
				if err != nil {
					t.Fatalf("seed %d: view-backed run: %v\nquery:\n%s\nplan:\n%s", seed, err, q, vres.Explain())
				}
				if !testgen.EntriesApproxEqual(vgot.Entries(), want) {
					t.Fatalf("seed %d: view-backed evaluation disagrees with the no-view reference\nquery:\n%s\nview block:\n%s\nplan:\n%s",
						seed, q, node, vres.Explain())
				}
				substituted += len(vres.Substitutions)
			}
		}
		verified++
	}
	t.Logf("verified %d random plans differentially (%d partitioned cross-checks, %d view substitutions, %d reopt splices, %d reopt parallel tails, %d batches consumed, %d partitioned-batch batches)",
		verified, partitioned, substituted, respliced, reoptTails, batched, batchParts)
	if partitioned == 0 {
		t.Fatalf("no plan ever took the partitioned evaluation path; the parallel differential harness is dead")
	}
	if batched == 0 {
		t.Fatalf("no plan ever consumed a batch; the batch differential harness is dead")
	}
	if batchParts == 0 {
		t.Fatalf("no partitioned run ever consumed a batch; the partitioned batch differential harness is dead")
	}
	if substituted == 0 {
		t.Fatalf("no plan ever substituted a pre-materialized view; the matview differential harness is dead")
	}
	if respliced == 0 {
		t.Fatalf("no run ever spliced a replanned segment; the reopt differential harness is dead")
	}
	if reoptTails == 0 {
		t.Fatalf("no replanned tail ever ran span-partitioned; the reopt TailK harness is dead")
	}
}

// randomSubBlock picks a random non-leaf node of the rewritten tree
// whose access span is bounded and non-empty — a block that can be
// materialized as a view.
func randomSubBlock(rng *rand.Rand, res *core.Result) (*algebra.Node, seq.Span, bool) {
	var nodes []*algebra.Node
	var walk func(n *algebra.Node)
	walk = func(n *algebra.Node) {
		if n.Kind != algebra.KindBase && n.Kind != algebra.KindConst && !algebra.UniverseSensitive(n) {
			if m := res.Annotation.Get(n); m != nil && m.AccessSpan.Bounded() && !m.AccessSpan.IsEmpty() {
				nodes = append(nodes, n)
			}
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(res.Rewritten)
	if len(nodes) == 0 {
		return nil, seq.EmptySpan, false
	}
	n := nodes[rng.Intn(len(nodes))]
	return n, res.Annotation.Get(n).AccessSpan, true
}

// TestVerifyAllSwitch covers the process-wide debug switch used by other
// packages' tests.
func TestVerifyAllSwitch(t *testing.T) {
	core.VerifyAll = true
	defer func() { core.VerifyAll = false }()
	rng := rand.New(rand.NewSource(42))
	cfg := testgen.DefaultConfig()
	for i := 0; i < 25; i++ {
		q, err := testgen.RandomQuery(rng, cfg)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if algebra.Divergent(q) {
			continue
		}
		if _, err := core.Optimize(q, seq.NewSpan(0, 20), core.Options{}); err != nil {
			t.Fatalf("optimize under VerifyAll: %v\nquery:\n%s", err, q)
		}
	}
}
