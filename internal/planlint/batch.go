package planlint

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/seq"
)

// VerifyBatches drives the plan through the vectorized data plane and
// re-derives the batch/* invariant family against the scalar
// interpreter, which stays the semantic ground truth:
//
//	batch/span-tiling     the emitted batch spans tile the scanned range:
//	                      ascending and gap-free (each span starts right
//	                      after its predecessor ends), every valid row's
//	                      position lies inside its batch's span, and a
//	                      batch that fills before the range is exhausted
//	                      ends exactly at its last row — so span
//	                      boundaries are exact, never approximate.
//	batch/validity        the valid rows of the batch stream agree with
//	                      the scalar scan record for record: a position
//	                      carries a set validity bit iff the scalar
//	                      stream emits a non-Null record there, with
//	                      equal values (validity-bitmap/Null agreement).
//	batch/intern-isolation
//	                      forked worker contexts own distinct intern
//	                      tables, and cloned plans evaluated under forks
//	                      over a partitioned span reproduce the serial
//	                      batch stream — decoded against each worker's
//	                      own table, so a handle leaking across handle
//	                      spaces turns into a value mismatch here.
//
// Unbounded or empty spans verify trivially (the scalar interpreter
// rejects them the same way the batch plane does).
func VerifyBatches(p exec.Plan, span seq.Span) []Issue {
	if p == nil || !span.Bounded() || span.IsEmpty() {
		return nil
	}
	c := &checker{}
	want, err := seq.Collect(p.Scan(span))
	if err != nil {
		// The scalar run fails; the batch run must fail too, not
		// silently produce rows.
		ctx := seq.NewBatchCtx()
		if got, berr := exec.CollectBatches(exec.BatchScanOf(p, span, ctx), ctx); berr == nil {
			c.reportPlan("batch/validity", "§2.3", p,
				"scalar scan fails (%v) but the batch scan returned %d rows", err, len(got))
		}
		return c.issues
	}
	got := c.checkBatchStream(p, span)
	c.checkBatchEntries(p, got, want)
	c.checkInternIsolation(p, span, got)
	return c.issues
}

// checkBatchStream drains the plan's batch cursor checking the tiling
// invariants batch by batch, and returns the decoded valid rows.
func (c *checker) checkBatchStream(p exec.Plan, span seq.Span) []seq.Entry {
	ctx := seq.NewBatchCtx()
	cur := exec.BatchScanOf(p, span, ctx)
	defer cur.Close()
	var out []seq.Entry
	first := true
	var next seq.Pos
	lastPos := seq.MinPos
	// Exactness of a full batch's end is checked one batch in arrears:
	// only a batch followed by another one must end at its last row (the
	// final batch absorbs the tail of the range instead).
	var prevSpan seq.Span
	var prevLast seq.Pos
	prevHadRows := false
	for {
		b, ok := cur.NextBatch()
		if !ok {
			break
		}
		if b.Span.IsEmpty() || !b.Span.Bounded() {
			c.reportPlan("batch/span-tiling", "§2.3", p, "batch carries empty or unbounded span %s", b.Span)
			return out
		}
		if !first {
			if b.Span.Start != next {
				c.reportPlan("batch/span-tiling", "§2.3", p,
					"batch span %s does not start at %d, right after its predecessor", b.Span, next)
				return out
			}
			if prevHadRows && prevSpan.End != prevLast {
				c.reportPlan("batch/span-tiling", "§2.3", p,
					"non-final batch span %s does not end at its last row %d", prevSpan, prevLast)
				return out
			}
		}
		first = false
		next = b.Span.End + 1 //seqvet:ignore spanarith verified bounded above
		rows := b.Rows()
		for i := 0; i < rows; i++ {
			if !b.Valid.Get(i) {
				continue
			}
			pos := b.Pos[i]
			if !b.Span.Contains(pos) {
				c.reportPlan("batch/span-tiling", "§2.3", p,
					"valid row at position %d outside its batch span %s", pos, b.Span)
				return out
			}
			if len(out) > 0 && pos <= lastPos {
				c.reportPlan("batch/span-tiling", "§2.3", p,
					"valid row positions not strictly ascending: %d after %d", pos, lastPos)
				return out
			}
			lastPos = pos
			out = append(out, seq.Entry{Pos: pos, Rec: b.Row(i, ctx.Intern)})
		}
		prevSpan, prevHadRows = b.Span, rows > 0 && b.Valid.Get(rows-1)
		if rows > 0 {
			prevLast = b.Pos[rows-1]
		}
	}
	if err := cur.Err(); err != nil {
		c.reportPlan("batch/validity", "§2.3", p, "batch scan failed where the scalar scan succeeded: %v", err)
	}
	return out
}

// checkBatchEntries compares the decoded batch rows against the scalar
// stream record for record.
func (c *checker) checkBatchEntries(p exec.Plan, got, want []seq.Entry) {
	if len(got) != len(want) {
		c.reportPlan("batch/validity", "§2.3", p,
			"batch stream carries %d valid rows, scalar stream %d", len(got), len(want))
		return
	}
	for i := range got {
		if got[i].Pos != want[i].Pos {
			c.reportPlan("batch/validity", "§2.3", p,
				"row %d: batch position %d, scalar position %d", i, got[i].Pos, want[i].Pos)
			return
		}
		if !recordsEqual(got[i].Rec, want[i].Rec) {
			c.reportPlan("batch/validity", "§2.3", p,
				"position %d: batch record %v disagrees with scalar record %v", got[i].Pos, got[i].Rec, want[i].Rec)
			return
		}
	}
}

func recordsEqual(a, b seq.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// checkInternIsolation partitions the span in two, evaluates plan clones
// under forked batch contexts, and checks table identity plus the
// concatenated decoded output against the serial batch rows.
func (c *checker) checkInternIsolation(p exec.Plan, span seq.Span, serial []seq.Entry) {
	parts := parallel.SplitSpan(span, 2)
	if len(parts) < 2 {
		return // single-position span: nothing to partition
	}
	clones, err := parallel.CloneWorkers(p, len(parts))
	if err != nil {
		return // unclonable plans are outside the parallel batch path
	}
	root := seq.NewBatchCtx()
	var merged []seq.Entry
	seen := map[*seq.Intern]bool{root.Intern: true}
	for i, part := range parts {
		fork := root.Fork()
		if seen[fork.Intern] {
			c.reportPlan("batch/intern-isolation", "Thm. 3.1", p,
				"forked batch context shares its intern table with another context")
			return
		}
		seen[fork.Intern] = true
		entries, err := exec.CollectBatches(exec.BatchScanOf(clones[i], part, fork), fork)
		if err != nil {
			c.reportPlan("batch/intern-isolation", "Thm. 3.1", p,
				"partition %d batch scan failed under a forked context: %v", i, err)
			return
		}
		merged = append(merged, entries...)
	}
	if len(merged) != len(serial) {
		c.reportPlan("batch/intern-isolation", "Thm. 3.1", p,
			"forked partitions decoded %d rows, serial batch stream has %d", len(merged), len(serial))
		return
	}
	for i := range merged {
		if merged[i].Pos != serial[i].Pos || !recordsApproxEqual(merged[i].Rec, serial[i].Rec) {
			c.reportPlan("batch/intern-isolation", "Thm. 3.1", p,
				fmt.Sprintf("row %d decoded under a forked intern table disagrees with the serial stream", i))
			return
		}
	}
}

// recordsApproxEqual compares records with a float tolerance: a worker
// re-accumulates sliding-window sums from its partition start, so its
// floats legitimately round differently from the serial stream's (the
// same tolerance the differential harness uses for partitioned runs).
// Everything else — including string values decoded through different
// intern tables — must match exactly.
func recordsApproxEqual(a, b seq.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].T == seq.TFloat && b[i].T == seq.TFloat {
			x, y := a[i].AsFloat(), b[i].AsFloat()
			if x == y {
				continue
			}
			d := math.Abs(x - y)
			if d < 1e-9 || d <= 1e-9*math.Max(math.Abs(x), math.Abs(y)) {
				continue
			}
			return false
		}
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
