package planlint_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/planlint"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/storage/disk"
	"repro/internal/testgen"
)

// TestBatchDiskDifferential runs the batch-vs-scalar differential with
// every base sequence living on the durable disk tier: random queries
// are generated as usual, their in-memory bases are persisted into a
// disk DB (alternating dense and sparse layouts), and the plans execute
// over buffer-pool-backed snapshots. Disk snapshots do not implement
// the native batch protocol, so this exercises the adapter bridge end
// to end — including its interaction with the metering wrapper — and
// the batch/* invariants on top of it.
func TestBatchDiskDifferential(t *testing.T) {
	db, err := disk.Open(t.TempDir(), disk.Config{
		PageSize: 512, RecordsPerPage: 4, PoolPages: 64, CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	span := seq.NewSpan(-10, 50)
	cfg := testgen.Config{MaxDepth: 4, MaxPos: 32, BaseDensity: 0.5}
	const plans = 60
	verified := 0
	var batches int64
	for seed := int64(1); verified < plans; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, err := testgen.RandomQuery(rng, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		if algebra.Divergent(q) {
			continue
		}
		// Persist every base onto the disk tier and point the query at
		// the recovered snapshots.
		nbase := 0
		var swapErr error
		var walk func(n *algebra.Node)
		walk = func(n *algebra.Node) {
			for _, in := range n.Inputs {
				walk(in)
			}
			if swapErr != nil || n.Kind != algebra.KindBase {
				return
			}
			nbase++
			name := fmt.Sprintf("dseq-%d-%d", seed, nbase)
			mat, ok := n.Seq.(*seq.Materialized)
			if !ok {
				return
			}
			kind := storage.KindSparse
			if nbase%2 == 0 {
				kind = storage.KindDense
			}
			if err := db.CreateSequence(name, mat, kind); err != nil {
				swapErr = fmt.Errorf("create %s: %w", name, err)
				return
			}
			s, ok := db.Seq(name)
			if !ok {
				swapErr = fmt.Errorf("sequence %s vanished after create", name)
				return
			}
			n.Seq = s.Latest()
		}
		walk(q)
		if swapErr != nil {
			t.Fatalf("seed %d: %v", seed, swapErr)
		}
		res, err := core.Optimize(q, span, core.Options{Verify: true})
		if err != nil {
			t.Fatalf("seed %d: optimize: %v\nquery:\n%s", seed, err, q)
		}
		if !res.RunSpan.Bounded() || res.RunSpan.IsEmpty() {
			continue
		}
		if issues := planlint.VerifyBatches(res.Plan, res.RunSpan); len(issues) != 0 {
			t.Fatalf("seed %d: disk-backed batch verification:\n%v\nquery:\n%s\nplan:\n%s",
				seed, planlint.Error(issues), q, res.Explain())
		}
		sgot, err := exec.Run(res.Plan, res.RunSpan)
		if err != nil {
			t.Fatalf("seed %d: scalar run: %v\nplan:\n%s", seed, err, res.Explain())
		}
		ctx := seq.NewBatchCtx()
		bgot, err := exec.RunBatch(res.Plan, res.RunSpan, ctx)
		if err != nil {
			t.Fatalf("seed %d: batch run: %v\nplan:\n%s", seed, err, res.Explain())
		}
		if !testgen.EntriesApproxEqual(bgot.Entries(), sgot.Entries()) {
			t.Fatalf("seed %d: disk-backed batch evaluation disagrees with scalar\nquery:\n%s\nplan:\n%s",
				seed, q, res.Explain())
		}
		batches += ctx.Batches
		verified++
	}
	t.Logf("verified %d disk-backed plans batch-vs-scalar (%d batches consumed)", verified, batches)
	if batches == 0 {
		t.Fatalf("no disk-backed plan ever consumed a batch; the disk batch differential is dead")
	}
}
