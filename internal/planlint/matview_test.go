package planlint_test

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/matview"
	"repro/internal/planlint"
	"repro/internal/seq"
)

func viewFixture(t *testing.T) (*matview.Registry, *matview.View, *algebra.Node) {
	t.Helper()
	schema := seq.MustSchema(
		seq.Field{Name: "v", Type: seq.TFloat},
		seq.Field{Name: "w", Type: seq.TInt},
	)
	var entries []seq.Entry
	for p := int64(1); p <= 20; p++ {
		entries = append(entries, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p)), seq.Int(p)}})
	}
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	base := algebra.Base("s", data)
	c, err := expr.NewCol(base.Schema, "v")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(5)))
	if err != nil {
		t.Fatal(err)
	}
	block, err := algebra.Select(base, pred)
	if err != nil {
		t.Fatal(err)
	}
	out, err := algebra.EvalRange(block, seq.NewSpan(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	kept := out[:0]
	for _, e := range out {
		if !e.Rec.IsNull() {
			kept = append(kept, e)
		}
	}
	viewData, err := seq.NewMaterialized(block.Schema, kept)
	if err != nil {
		t.Fatal(err)
	}
	reg := matview.New()
	v, err := reg.Register("hot", block, viewData, seq.NewSpan(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	return reg, v, block
}

func TestVerifyMatviewsClean(t *testing.T) {
	_, v, block := viewFixture(t)
	sub := &matview.Substitution{
		View: v, Block: block, Need: seq.NewSpan(5, 15),
		ColMap: []int{0, 1}, Stream: true,
	}
	if issues := planlint.VerifyMatviews([]*matview.Substitution{sub}); len(issues) != 0 {
		t.Fatalf("clean substitution flagged:\n%v", planlint.Error(issues))
	}
}

func TestVerifyMatviewsCatchesViolations(t *testing.T) {
	_, v, block := viewFixture(t)

	// Span not covered.
	short := &matview.Substitution{
		View: v, Block: block, Need: seq.NewSpan(0, 30), ColMap: []int{0, 1},
	}
	issues := planlint.VerifyMatviews([]*matview.Substitution{short})
	if !hasInvariant(issues, "matview/span-covers") {
		t.Fatalf("span violation not reported:\n%v", planlint.Error(issues))
	}

	// Column map not a permutation.
	badMap := &matview.Substitution{
		View: v, Block: block, Need: seq.NewSpan(1, 20), ColMap: []int{0, 0},
	}
	issues = planlint.VerifyMatviews([]*matview.Substitution{badMap})
	if !hasInvariant(issues, "matview/canonical-equal") {
		t.Fatalf("bad column map not reported:\n%v", planlint.Error(issues))
	}

	// Residual changes the block: an extra conjunct the block does not
	// have makes the reconstruction canonically different.
	extra, err := expr.NewBin(expr.OpGt,
		&expr.Col{Index: 1, Name: "w", Typ: seq.TInt}, expr.Literal(seq.Int(10)))
	if err != nil {
		t.Fatal(err)
	}
	wrong := &matview.Substitution{
		View: v, Block: block, Need: seq.NewSpan(1, 20),
		Residual: []expr.Expr{extra}, ColMap: []int{0, 1},
	}
	issues = planlint.VerifyMatviews([]*matview.Substitution{wrong})
	if !hasInvariant(issues, "matview/canonical-equal") {
		t.Fatalf("canonical mismatch not reported:\n%v", planlint.Error(issues))
	}
}

// Partial substitutions: the covered prefix must be a genuine prefix of
// the access span and lie inside the view's span; the uncovered tail
// needs no view guarantee.
func TestVerifyMatviewsPartial(t *testing.T) {
	_, v, block := viewFixture(t)

	clean := &matview.Substitution{
		View: v, Block: block, Need: seq.NewSpan(5, 30),
		Covered: seq.NewSpan(5, 20), ColMap: []int{0, 1}, Stream: true,
	}
	if issues := planlint.VerifyMatviews([]*matview.Substitution{clean}); len(issues) != 0 {
		t.Fatalf("clean partial substitution flagged:\n%v", planlint.Error(issues))
	}

	// Covered span starts past the access span's start: not a prefix.
	notPrefix := &matview.Substitution{
		View: v, Block: block, Need: seq.NewSpan(5, 30),
		Covered: seq.NewSpan(10, 20), ColMap: []int{0, 1},
	}
	issues := planlint.VerifyMatviews([]*matview.Substitution{notPrefix})
	if !hasInvariant(issues, "matview/span-covers") {
		t.Fatalf("non-prefix covered span not reported:\n%v", planlint.Error(issues))
	}

	// Covered span claims positions beyond the view's valid span.
	beyond := &matview.Substitution{
		View: v, Block: block, Need: seq.NewSpan(5, 30),
		Covered: seq.NewSpan(5, 25), ColMap: []int{0, 1},
	}
	issues = planlint.VerifyMatviews([]*matview.Substitution{beyond})
	if !hasInvariant(issues, "matview/span-covers") {
		t.Fatalf("covered-beyond-view-span not reported:\n%v", planlint.Error(issues))
	}
}

func hasInvariant(issues []planlint.Issue, invariant string) bool {
	for _, is := range issues {
		if strings.HasPrefix(is.Invariant, invariant) {
			return true
		}
	}
	return false
}
