package planlint_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/planlint"
	"repro/internal/seq"
)

// segmentFixture builds a clean two-segment splice: each segment gets
// its own plan (own operator caches) over the exact remaining span.
func segmentFixture(t *testing.T) (seq.Span, []planlint.ReoptSegment) {
	t.Helper()
	p1, _ := aggFixture(t, 4096)
	p2, _ := aggFixture(t, 4096)
	full := seq.NewSpan(1, 4096)
	return full, []planlint.ReoptSegment{
		{Span: seq.NewSpan(1, 1500), Plan: p1},
		{Span: seq.NewSpan(1501, 4096), Plan: p2},
	}
}

func TestVerifyReoptClean(t *testing.T) {
	full, segs := segmentFixture(t)
	if issues := planlint.VerifyReopt(full, segs); len(issues) != 0 {
		t.Errorf("clean splice raised %v", planlint.Error(issues))
	}
	// A run that never spliced is a single segment over the whole span.
	p, span := aggFixture(t, 4096)
	one := []planlint.ReoptSegment{{Span: span, Plan: p}}
	if issues := planlint.VerifyReopt(span, one); len(issues) != 0 {
		t.Errorf("single segment raised %v", planlint.Error(issues))
	}
	// The empty run verifies trivially.
	if issues := planlint.VerifyReopt(seq.EmptySpan, nil); len(issues) != 0 {
		t.Errorf("empty run raised %v", issues)
	}
}

func TestVerifyReoptSpanCover(t *testing.T) {
	full, segs := segmentFixture(t)

	// Gap between segments: tail starts too late.
	gap := []planlint.ReoptSegment{segs[0], {Span: seq.NewSpan(1600, 4096), Plan: segs[1].Plan}}
	wantInvariant(t, planlint.VerifyReopt(full, gap), "reopt/span-cover", "not contiguous")

	// Overlap: tail re-reads consumed positions.
	overlap := []planlint.ReoptSegment{segs[0], {Span: seq.NewSpan(1400, 4096), Plan: segs[1].Plan}}
	wantInvariant(t, planlint.VerifyReopt(full, overlap), "reopt/span-cover", "not contiguous")

	// Truncated union: the splice dropped the end of the span.
	short := []planlint.ReoptSegment{segs[0], {Span: seq.NewSpan(1501, 4000), Plan: segs[1].Plan}}
	wantInvariant(t, planlint.VerifyReopt(full, short), "reopt/span-cover", "union ends at 4000")

	// No segments at all for a non-empty span.
	wantInvariant(t, planlint.VerifyReopt(full, nil), "reopt/span-cover", "no executed segments")

	// Unbounded monitored span.
	wantInvariant(t, planlint.VerifyReopt(seq.AllSpan, segs), "reopt/span-cover", "unbounded")

	// Empty segment span.
	empty := []planlint.ReoptSegment{{Span: seq.EmptySpan, Plan: segs[0].Plan}, segs[1]}
	wantInvariant(t, planlint.VerifyReopt(full, empty), "reopt/span-cover", "empty or unbounded")
}

func TestVerifyReoptCacheIsolation(t *testing.T) {
	full, segs := segmentFixture(t)
	// Reusing one plan object across segments shares its operator cache:
	// cache contents would cross the switch.
	shared := []planlint.ReoptSegment{
		{Span: segs[0].Span, Plan: segs[0].Plan},
		{Span: segs[1].Span, Plan: segs[0].Plan},
	}
	wantInvariant(t, planlint.VerifyReopt(full, shared), "reopt/cache-isolation", "shared between segment")
}

func TestVerifyReoptSegmentPlan(t *testing.T) {
	full, segs := segmentFixture(t)
	leaf := exec.NewLeaf("a", intBase(t, "a", 0, 1, 2).Seq, seq.NewSpan(0, 2))
	broken := &exec.ValueOffsetNaive{In: leaf, Offset: 0, OutSpan: segs[1].Span}
	bad := []planlint.ReoptSegment{segs[0], {Span: segs[1].Span, Plan: broken}}
	issues := planlint.VerifyReopt(full, bad)
	wantInvariant(t, issues, "reopt/segment-plan", "violates")
	// The wrapped physical issues must ride along for diagnosis.
	if rendered := planlint.Render(issues); !strings.Contains(rendered, "phys/shape") {
		t.Errorf("segment-plan issue lost the underlying physical issue:\n%s", rendered)
	}
}

func TestVerifyCalibrationConstants(t *testing.T) {
	clean := map[string]float64{
		"rand_page": 4.2, "per_record": 0.004, "cache_access": 0.001, "ns_per_unit": 17.0,
	}
	if issues := planlint.VerifyCalibrationConstants(clean); len(issues) != 0 {
		t.Errorf("clean constants raised %v", planlint.Error(issues))
	}
	for name, v := range map[string]float64{
		"zero": 0, "negative": -1, "nan": math.NaN(), "inf": math.Inf(1),
	} {
		bad := map[string]float64{"rand_page": 4.2, name: v}
		wantInvariant(t, planlint.VerifyCalibrationConstants(bad), "reopt/calibration-finite", name)
	}
}
