// Package planlint is a static verifier for query plans: it walks a
// logical or physical plan and checks the algebraic invariants the
// paper's correctness story rests on — scope-property composition
// (Proposition 2.1), span and density propagation (§3.2–3.3, Defs.
// 3.1–3.3), block delimitation at non-unit-scope operators (§3.1), and
// the stream-access/cache-finiteness theorem (Theorem 3.1). A bad
// rewrite rule, a stale annotation, or a half-plumbed operator Kind
// turns into a diagnostic here instead of a silently wrong answer at
// runtime.
//
// The verifier is deliberately a second implementation: wherever the
// engine derives a property (operator scopes, spans, densities, cache
// bounds), planlint re-derives it independently from the paper's
// definitions and compares. See docs/INVARIANTS.md for the full list of
// checked invariants with their paper references.
//
// Entry points:
//
//   - Verify checks a logical tree (structure, schemas, scopes, blocks).
//   - VerifyAnnotation checks Step-2 meta-information against the tree.
//   - VerifyPhysical checks a physical plan's cache bounds and shapes.
//   - VerifyCosts checks recorded per-node cost estimates.
//   - CheckRule is the rewrite-time hook: it verifies one rule firing
//     preserved the whole-query scope properties.
package planlint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

// Issue is one invariant violation found in a plan.
type Issue struct {
	// Invariant is the short identifier of the violated invariant, e.g.
	// "scope/unit" or "meta/density-range" (the ids index into
	// docs/INVARIANTS.md).
	Invariant string
	// Ref is the paper reference backing the invariant.
	Ref string
	// Node locates the offending operator (its label or kind).
	Node string
	// Detail explains the violation.
	Detail string
}

// String renders the issue on one line.
func (i Issue) String() string {
	return fmt.Sprintf("%s [%s] at %s: %s", i.Invariant, i.Ref, i.Node, i.Detail)
}

// Error folds a list of issues into a single error (nil when empty).
func Error(issues []Issue) error {
	if len(issues) == 0 {
		return nil
	}
	lines := make([]string, len(issues))
	for i, is := range issues {
		lines[i] = "  " + is.String()
	}
	return fmt.Errorf("planlint: %d invariant violation(s):\n%s", len(issues), strings.Join(lines, "\n"))
}

// checker accumulates issues during a walk.
type checker struct {
	issues []Issue
}

func (c *checker) report(invariant, ref string, n *algebra.Node, format string, args ...any) {
	node := "<nil>"
	if n != nil {
		node = n.Kind.String()
		if n.Kind == algebra.KindBase {
			node = "base(" + n.Name + ")"
		}
	}
	c.issues = append(c.issues, Issue{
		Invariant: invariant,
		Ref:       ref,
		Node:      node,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Verify checks the logical invariants of a query tree and returns every
// violation found. A nil or empty result means the tree is clean.
func Verify(root *algebra.Node) []Issue {
	c := &checker{}
	if root == nil {
		c.report("tree/nil", "§2.2", nil, "nil query root")
		return c.issues
	}
	// §2.2: query graphs are hierarchical — each node feeds exactly one
	// consumer. Shared nodes also break per-node annotations.
	seen := make(map[*algebra.Node]bool)
	var shared *algebra.Node
	var walkShared func(n *algebra.Node)
	walkShared = func(n *algebra.Node) {
		if shared != nil {
			return
		}
		if seen[n] {
			shared = n
			return
		}
		seen[n] = true
		for _, in := range n.Inputs {
			walkShared(in)
		}
	}
	walkShared(root)
	if shared != nil {
		c.report("tree/shared-node", "§2.2", shared, "node feeds more than one operator")
		return c.issues // downstream checks assume a tree
	}

	var walk func(n *algebra.Node)
	walk = func(n *algebra.Node) {
		c.checkStructure(n)
		c.checkScope(n)
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)
	c.checkPathScopes(root)
	c.checkBlocks(root)
	c.checkStreamability(root)
	return c.issues
}

// arity is the expected input count per Kind (-1 means leaf).
func arity(k algebra.Kind) int {
	switch k {
	case algebra.KindBase, algebra.KindConst:
		return 0
	case algebra.KindSelect, algebra.KindProject, algebra.KindPosOffset,
		algebra.KindValueOffset, algebra.KindAgg, algebra.KindCollapse, algebra.KindExpand:
		return 1
	case algebra.KindCompose:
		return 2
	default:
		return -1
	}
}

// checkStructure validates the node's shape: input arity, payloads,
// schema derivation, and predicate well-formedness — everything the
// algebra constructors enforce, rechecked because rewrites may assemble
// nodes by other means.
func (c *checker) checkStructure(n *algebra.Node) {
	want := arity(n.Kind)
	if want < 0 {
		c.report("node/kind", "§2.1", n, "unknown operator kind %d", int(n.Kind))
		return
	}
	if len(n.Inputs) != want {
		c.report("node/arity", "§2.1", n, "has %d inputs, want %d", len(n.Inputs), want)
		return
	}
	if n.Schema == nil {
		c.report("node/schema", "§2.1", n, "nil output schema")
		return
	}
	for i, in := range n.Inputs {
		if in == nil {
			c.report("node/arity", "§2.1", n, "input %d is nil", i)
			return
		}
	}
	switch n.Kind {
	case algebra.KindBase:
		if n.Seq == nil {
			c.report("node/payload", "§2.1", n, "base without a physical sequence")
		} else if !n.Schema.Equal(n.Seq.Info().Schema) {
			c.report("node/schema", "§2.1", n, "schema %v differs from stored sequence schema %v",
				n.Schema, n.Seq.Info().Schema)
		}
	case algebra.KindConst:
		if n.Seq == nil {
			c.report("node/payload", "§2.1", n, "const without a backing sequence")
		}
		if len(n.Rec) != n.Schema.NumFields() {
			c.report("node/schema", "§2.1", n, "const record arity %d vs schema arity %d",
				len(n.Rec), n.Schema.NumFields())
		}
	case algebra.KindSelect:
		c.checkPred("node/pred", n, n.Pred, n.Inputs[0].Schema, false)
		if !n.Schema.Equal(n.Inputs[0].Schema) {
			c.report("node/schema", "§2.1", n, "selection must preserve the input schema")
		}
	case algebra.KindProject:
		if len(n.Items) == 0 {
			c.report("node/payload", "§2.1", n, "projection with no output items")
			break
		}
		if n.Schema.NumFields() != len(n.Items) {
			c.report("node/schema", "§2.1", n, "schema arity %d vs %d projection items",
				n.Schema.NumFields(), len(n.Items))
			break
		}
		for i, it := range n.Items {
			if it.Expr == nil {
				c.report("node/payload", "§2.1", n, "projection item %d has nil expression", i)
				continue
			}
			c.checkCols("node/pred", n, it.Expr, n.Inputs[0].Schema)
			if n.Schema.Field(i).Type != it.Expr.Type() {
				c.report("node/schema", "§2.1", n, "item %d has type %s but schema says %s",
					i, it.Expr.Type(), n.Schema.Field(i).Type)
			}
		}
	case algebra.KindPosOffset:
		if !n.Schema.Equal(n.Inputs[0].Schema) {
			c.report("node/schema", "§2.1", n, "positional offset must preserve the input schema")
		}
	case algebra.KindValueOffset:
		if n.Offset == 0 {
			c.report("node/payload", "§2.1", n, "value offset of 0 is not an operator")
		}
		if !n.Schema.Equal(n.Inputs[0].Schema) {
			c.report("node/schema", "§2.1", n, "value offset must preserve the input schema")
		}
	case algebra.KindAgg:
		c.checkAggSpec(n, n.Agg, false)
	case algebra.KindCompose:
		wantArity := n.Inputs[0].Schema.NumFields() + n.Inputs[1].Schema.NumFields()
		if n.Schema.NumFields() != wantArity {
			c.report("node/schema", "§2.1", n, "composed schema arity %d, want %d",
				n.Schema.NumFields(), wantArity)
		}
		if n.Pred != nil {
			c.checkPred("node/pred", n, n.Pred, n.Schema, false)
		}
	case algebra.KindCollapse:
		if n.Factor <= 1 {
			c.report("node/payload", "§5.1", n, "collapse factor %d, want > 1", n.Factor)
		}
		c.checkAggSpec(n, n.Agg, true)
	case algebra.KindExpand:
		if n.Factor <= 1 {
			c.report("node/payload", "§5.1", n, "expand factor %d, want > 1", n.Factor)
		}
		if !n.Schema.Equal(n.Inputs[0].Schema) {
			c.report("node/schema", "§5.1", n, "expand must preserve the input schema")
		}
	}
}

func (c *checker) checkAggSpec(n *algebra.Node, spec *algebra.AggSpec, collapse bool) {
	if spec == nil {
		c.report("node/payload", "§2.1", n, "aggregate without a spec")
		return
	}
	if !collapse {
		if err := spec.Window.Validate(); err != nil {
			c.report("node/payload", "§2.1", n, "invalid window: %v", err)
		}
	}
	in := n.Inputs[0].Schema
	switch {
	case spec.Arg == -1:
		if spec.Func != algebra.AggCount {
			c.report("node/payload", "§2.1", n, "%s requires an input attribute", spec.Func)
		}
	case spec.Arg < 0 || spec.Arg >= in.NumFields():
		c.report("node/payload", "§2.1", n, "aggregate attribute %d out of range for %v", spec.Arg, in)
	}
	if n.Schema.NumFields() != 1 {
		c.report("node/schema", "§2.1", n, "aggregate output must be a single attribute, got %d",
			n.Schema.NumFields())
	}
}

func (c *checker) checkPred(invariant string, n *algebra.Node, pred expr.Expr, schema *seq.Schema, optional bool) {
	if pred == nil {
		if !optional {
			c.report(invariant, "§2.1", n, "missing predicate")
		}
		return
	}
	if pred.Type() != seq.TBool {
		c.report(invariant, "§2.1", n, "predicate has type %s, want bool", pred.Type())
	}
	c.checkCols(invariant, n, pred, schema)
}

func (c *checker) checkCols(invariant string, n *algebra.Node, e expr.Expr, schema *seq.Schema) {
	for _, i := range expr.Columns(e) {
		if i < 0 || i >= schema.NumFields() {
			c.report(invariant, "§2.1", n, "expression %s references column %d outside %v", e, i, schema)
		}
	}
}

// checkScope re-derives the scope properties each operator must report on
// each input — straight from the §2.3 definitions — and compares them
// with what Node.Scope returns.
func (c *checker) checkScope(n *algebra.Node) {
	if arity(n.Kind) < 0 || len(n.Inputs) != arity(n.Kind) {
		return // structure check already reported
	}
	for i := range n.Inputs {
		got, err := n.Scope(i)
		if err != nil {
			c.report("scope/defined", "§2.3", n, "Scope(%d): %v", i, err)
			continue
		}
		want, ok := expectedScope(n)
		if !ok {
			continue
		}
		if got != want {
			c.report("scope/derivation", "§2.3", n, "Scope(%d) = %+v, definition gives %+v", i, got, want)
		}
		// Unit-scope operators (§2.3): selections, projections, compose.
		switch n.Kind {
		case algebra.KindSelect, algebra.KindProject, algebra.KindCompose:
			if !got.Unit() || !got.Sequential || !got.Relative {
				c.report("scope/unit", "Prop. 2.1", n, "unit-scope operator reports %+v", got)
			}
		case algebra.KindBase, algebra.KindConst, algebra.KindPosOffset,
			algebra.KindValueOffset, algebra.KindAgg, algebra.KindCollapse,
			algebra.KindExpand:
			// No unit-scope law for leaves and non-unit operators.
		}
		// Soundness of block delimitation: an input scope that is not a
		// fixed single position must come from a NonUnitScope operator,
		// or the block optimizer would reorder across it (§3.1).
		// Positional offsets are the sanctioned exception: their scope is
		// a single relative position, so they stay inside blocks.
		unitSize := got.FixedSize && got.Size == 1
		if !unitSize && !n.NonUnitScope() {
			c.report("scope/block-soundness", "§3.1", n,
				"non-unit scope %+v on an operator the block pass treats as unit", got)
		}
	}
	// Non-unit markers must be exactly the paper's block breakers.
	wantNonUnit := n.Kind == algebra.KindAgg || n.Kind == algebra.KindValueOffset || n.Kind == algebra.KindCollapse
	if n.NonUnitScope() != wantNonUnit {
		c.report("scope/block-markers", "§3.1", n, "NonUnitScope() = %v, want %v",
			n.NonUnitScope(), wantNonUnit)
	}
}

// expectedScope is the independent scope derivation (§2.3, Def. 3.3 for
// value offsets). ok=false for leaves.
func expectedScope(n *algebra.Node) (algebra.ScopeProps, bool) {
	switch n.Kind {
	case algebra.KindBase, algebra.KindConst:
		return algebra.ScopeProps{}, false // leaves have no input scope
	case algebra.KindSelect, algebra.KindProject, algebra.KindCompose:
		return algebra.UnitScope(), true
	case algebra.KindPosOffset:
		return algebra.ScopeProps{
			FixedSize: true, Size: 1,
			Sequential: n.Offset == 0,
			Relative:   true,
			Win:        algebra.Range(n.Offset, n.Offset),
		}, true
	case algebra.KindValueOffset:
		// Effective scope (Def. 3.3): the relative hull of the true,
		// data-dependent scope — open-ended on the side the offset reads.
		w := algebra.Window{LoUnbounded: true, Hi: -1}
		if n.Offset > 0 {
			w = algebra.Window{Lo: 1, HiUnbounded: true}
		}
		return algebra.ScopeProps{Win: w}, true
	case algebra.KindAgg:
		if n.Agg == nil {
			return algebra.ScopeProps{}, false
		}
		w := n.Agg.Window
		size, fixed := w.Size()
		return algebra.ScopeProps{
			FixedSize: fixed, Size: size,
			Sequential: w.Sequential(),
			Relative:   true,
			Win:        w,
		}, true
	case algebra.KindCollapse:
		return algebra.ScopeProps{FixedSize: true, Size: n.Factor}, true
	case algebra.KindExpand:
		return algebra.ScopeProps{FixedSize: true, Size: 1}, true
	default:
		return algebra.ScopeProps{}, false
	}
}

// checkPathScopes verifies Proposition 2.1 on every root-to-leaf path:
// the composed scope of the whole query on a leaf must (a) be fixed-size
// when every operator on the path has fixed-size scope and the summed
// window is bounded, (b) be sequential when every operator is
// sequential, and (c) be relative with the summed window when every
// operator is relative. QueryScopes computes the left side; the fold
// here recomputes the right side independently.
func (c *checker) checkPathScopes(root *algebra.Node) {
	composed := algebra.QueryScopes(root)

	type fold struct {
		allFixed, allSeq, allRel bool
		win                      algebra.Window
	}
	var walk func(n *algebra.Node, acc fold)
	walk = func(n *algebra.Node, acc fold) {
		if n.IsLeaf() {
			got, ok := composed[n]
			if !ok {
				c.report("scope/compose", "Prop. 2.1", n, "leaf missing from QueryScopes")
				return
			}
			if got.Sequential != acc.allSeq {
				c.report("scope/compose", "Prop. 2.1(b)", n,
					"composed Sequential=%v, path fold gives %v", got.Sequential, acc.allSeq)
			}
			if got.Relative != acc.allRel {
				c.report("scope/compose", "Prop. 2.1(c)", n,
					"composed Relative=%v, path fold gives %v", got.Relative, acc.allRel)
			}
			if acc.allRel && got.Win != acc.win {
				c.report("scope/compose", "Prop. 2.1(c)", n,
					"composed window %s, summed path windows %s", got.Win, acc.win)
			}
			_, bounded := acc.win.Size()
			wantFixed := acc.allFixed && bounded
			if got.FixedSize != wantFixed {
				c.report("scope/compose", "Prop. 2.1(a)", n,
					"composed FixedSize=%v, path fold gives %v", got.FixedSize, wantFixed)
			}
			return
		}
		for i, in := range n.Inputs {
			s, err := n.Scope(i)
			if err != nil {
				continue // scope/defined already reported
			}
			next := fold{
				allFixed: acc.allFixed && s.FixedSize,
				allSeq:   acc.allSeq && s.Sequential,
				allRel:   acc.allRel && s.Relative,
				win:      sumWindows(acc.win, s.Win),
			}
			walk(in, next)
		}
	}
	walk(root, fold{allFixed: true, allSeq: true, allRel: true, win: algebra.Range(0, 0)})
}

// sumWindows adds two relative windows, saturating unbounded sides — the
// window arithmetic of Proposition 2.1(c), reimplemented for the check.
func sumWindows(a, b algebra.Window) algebra.Window {
	out := algebra.Window{
		LoUnbounded: a.LoUnbounded || b.LoUnbounded,
		HiUnbounded: a.HiUnbounded || b.HiUnbounded,
	}
	if !out.LoUnbounded {
		out.Lo = a.Lo + b.Lo
	}
	if !out.HiUnbounded {
		out.Hi = a.Hi + b.Hi
	}
	return out
}

// checkBlocks verifies that query blocks are delimited exactly at the
// non-unit-scope operators (§3.1): peeling unit-scope unary operators
// from any region root must bottom out at a leaf, at a compose region,
// or at a non-unit operator — never skip past one.
func (c *checker) checkBlocks(root *algebra.Node) {
	var regionRoots []*algebra.Node
	regionRoots = append(regionRoots, root)
	var collect func(n *algebra.Node)
	collect = func(n *algebra.Node) {
		if n.NonUnitScope() {
			regionRoots = append(regionRoots, n.Inputs...)
		}
		for _, in := range n.Inputs {
			collect(in)
		}
	}
	collect(root)

	var peel func(n *algebra.Node)
	peel = func(n *algebra.Node) {
		if n.IsLeaf() || n.NonUnitScope() {
			return // block boundary: a source or a lower block's output
		}
		if n.Kind == algebra.KindCompose {
			// Compose stays inside the block; its inputs are sources or
			// further unit-scope chains of the same block.
			peel(n.Inputs[0])
			peel(n.Inputs[1])
			return
		}
		if len(n.Inputs) != 1 {
			c.report("block/delimitation", "§3.1", n,
				"unit-scope region contains a non-unary, non-compose operator")
			return
		}
		// The operator stays inside the block only if its scope on its
		// input is a single fixed position.
		s, err := n.Scope(0)
		if err != nil || !s.FixedSize || s.Size != 1 {
			c.report("block/delimitation", "§3.1", n,
				"operator with scope %+v sits inside a block (must delimit it)", s)
			return
		}
		peel(n.Inputs[0])
	}
	for _, r := range regionRoots {
		peel(r)
	}
}

// checkStreamability re-derives the single-scan evaluability rule the
// engine uses (Theorem 3.1 plus the §3.4–3.5 broadenings): only
// unbounded *future* references defeat a bounded-cache stream plan.
func (c *checker) checkStreamability(root *algebra.Node) {
	defeated := false
	var walk func(n *algebra.Node)
	walk = func(n *algebra.Node) {
		if n.Kind == algebra.KindAgg && n.Agg != nil && n.Agg.Window.HiUnbounded {
			defeated = true
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)
	if got := algebra.StreamEvaluable(root); got != !defeated {
		c.report("stream/evaluable", "Thm. 3.1", root,
			"StreamEvaluable=%v but unbounded-future analysis gives %v", got, !defeated)
	}
}

// LeafScopes returns the whole-query scope properties per base-sequence
// name (Prop. 2.1 composition along each path). Names mapping to more
// than one leaf are dropped — the comparison in CheckRule is only sound
// for uniquely named bases.
func LeafScopes(root *algebra.Node) map[string]algebra.ScopeProps {
	scopes := algebra.QueryScopes(root)
	out := make(map[string]algebra.ScopeProps)
	dup := make(map[string]bool)
	for n, s := range scopes {
		if n.Kind != algebra.KindBase {
			continue
		}
		if _, seen := out[n.Name]; seen {
			dup[n.Name] = true
			continue
		}
		out[n.Name] = s
	}
	for name := range dup {
		delete(out, name)
	}
	return out
}

// sortIssues orders issues deterministically for golden-file rendering.
func sortIssues(issues []Issue) {
	sort.Slice(issues, func(i, j int) bool {
		a, b := issues[i], issues[j]
		if a.Invariant != b.Invariant {
			return a.Invariant < b.Invariant
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Detail < b.Detail
	})
}

// Render formats issues one per line, sorted, for golden-file tests.
func Render(issues []Issue) string {
	cp := append([]Issue(nil), issues...)
	sortIssues(cp)
	var b strings.Builder
	for _, is := range cp {
		b.WriteString(is.String())
		b.WriteByte('\n')
	}
	if b.Len() == 0 {
		return "clean\n"
	}
	return b.String()
}
