package planlint

import (
	"fmt"

	"repro/internal/algebra"
)

// CheckRule verifies one rewrite-rule firing: the transformed subtree
// must itself pass Verify, and the firing must preserve the whole-query
// scope properties — the composed scope of the (sub)query on every
// uniquely named base sequence is the same before and after (§3.1: the
// legality of every push-through rule is an instance of Proposition 2.1,
// so a legal rule can reassociate scopes but never change their
// composition). It is installed as the rewrite engine's per-rule hook in
// verify mode and returns a descriptive error on the first violation.
func CheckRule(rule string, before, after *algebra.Node) error {
	if issues := Verify(after); len(issues) != 0 {
		return fmt.Errorf("rule %s produced an invalid tree: %w", rule, Error(issues))
	}
	pre := LeafScopes(before)
	post := LeafScopes(after)
	for name, want := range pre {
		got, ok := post[name]
		if !ok {
			// A rule may drop a base only by eliminating a dead branch;
			// none of the §3.1 rules do, so treat it as a violation.
			return fmt.Errorf("rule %s dropped base %q from the query", rule, name)
		}
		// The window, relativity and fixedness of the composed scope must
		// be preserved exactly. Sequentiality is derived conservatively
		// (an AND-fold along the path), so a rule that cancels offsets may
		// *gain* sequentiality — the scope set itself is unchanged — but a
		// rule must never lose it.
		same := got.Win == want.Win &&
			got.Relative == want.Relative &&
			got.FixedSize == want.FixedSize &&
			got.Size == want.Size &&
			(got.Sequential == want.Sequential || (got.Sequential && !want.Sequential))
		if !same {
			return fmt.Errorf(
				"rule %s changed the query scope on base %q: %+v -> %+v (Prop. 2.1 violated)",
				rule, name, want, got)
		}
	}
	return nil
}
