package planlint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/meta"
	"repro/internal/planlint"
	"repro/internal/seq"
)

var update = flag.Bool("update", false, "rewrite the planlint golden files")

func intSchema(t *testing.T, names ...string) *seq.Schema {
	t.Helper()
	fields := make([]seq.Field, len(names))
	for i, n := range names {
		fields[i] = seq.Field{Name: n, Type: seq.TInt}
	}
	s, err := seq.NewSchema(fields...)
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return s
}

func intBase(t *testing.T, name string, positions ...seq.Pos) *algebra.Node {
	t.Helper()
	schema := intSchema(t, "v")
	entries := make([]seq.Entry, len(positions))
	for i, p := range positions {
		entries[i] = seq.Entry{Pos: p, Rec: seq.Record{seq.Int(int64(p) * 10)}}
	}
	return algebra.Base(name, seq.MustMaterialized(schema, entries))
}

func mustSelect(t *testing.T, in *algebra.Node) *algebra.Node {
	t.Helper()
	col, err := expr.NewCol(in.Schema, in.Schema.Field(0).Name)
	if err != nil {
		t.Fatalf("col: %v", err)
	}
	pred, err := expr.NewBin(expr.OpGt, col, expr.Literal(seq.Int(0)))
	if err != nil {
		t.Fatalf("pred: %v", err)
	}
	sel, err := algebra.Select(in, pred)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	return sel
}

func builder(t *testing.T) func(*algebra.Node, error) *algebra.Node {
	t.Helper()
	return func(n *algebra.Node, err error) *algebra.Node {
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return n
	}
}

// cleanQueries builds well-formed trees covering every operator kind and
// the scope compositions of Proposition 2.1.
func cleanQueries(t *testing.T) map[string]*algebra.Node {
	t.Helper()
	must := builder(t)
	base := func() *algebra.Node { return intBase(t, "a", 0, 1, 2, 3, 5, 8) }
	other := func() *algebra.Node { return intBase(t, "b", 1, 2, 4, 8) }
	q := map[string]*algebra.Node{
		"base":        base(),
		"select":      mustSelect(t, base()),
		"project":     must(algebra.ProjectCols(base(), "v")),
		"pos-offset":  must(algebra.PosOffset(base(), -3)),
		"voffset-pos": must(algebra.Next(base())),
		"voffset-neg": must(algebra.Previous(base())),
		"agg-trailing": must(algebra.AggCol(base(), algebra.AggSum, "v",
			algebra.Trailing(4), "s")),
		"agg-cumulative": must(algebra.AggCol(base(), algebra.AggAvg, "v",
			algebra.Cumulative(), "m")),
		"compose": must(algebra.Compose(base(), other(), nil, "l", "r")),
		"expand":  must(algebra.Expand(base(), 3)),
		"collapse": must(algebra.Collapse(base(), 4,
			algebra.AggSpec{Func: algebra.AggMax, Arg: 0, As: "mx"})),
	}
	// A deep mixed tree: select over agg over voffset over compose.
	deep := must(algebra.Compose(base(), other(), nil, "l", "r"))
	deep = must(algebra.ProjectCols(deep, "l.v"))
	deep = must(algebra.Previous(deep))
	deep = must(algebra.AggCol(deep, algebra.AggMin, "l.v", algebra.Trailing(3), "w"))
	q["deep"] = mustSelect(t, deep)
	return q
}

func TestVerifyCleanQueries(t *testing.T) {
	for name, q := range cleanQueries(t) {
		if issues := planlint.Verify(q); len(issues) != 0 {
			t.Errorf("%s: %v", name, planlint.Error(issues))
		}
	}
}

func TestVerifyAnnotationCleanQueries(t *testing.T) {
	for name, q := range cleanQueries(t) {
		ann, err := meta.Annotate(q, seq.NewSpan(-5, 20))
		if err != nil {
			t.Fatalf("%s: annotate: %v", name, err)
		}
		if issues := planlint.VerifyAnnotation(q, ann); len(issues) != 0 {
			t.Errorf("%s: %v", name, planlint.Error(issues))
		}
	}
}

// brokenQueries assembles invalid trees by struct literal — the way a
// buggy rewrite rule would, bypassing the checked constructors. Each maps
// to a golden file of expected diagnostics.
func brokenQueries(t *testing.T) map[string]*algebra.Node {
	t.Helper()
	base := intBase(t, "a", 0, 1, 2)
	schema := base.Schema
	shared := intBase(t, "s", 0, 1)
	badPred, err := expr.NewCol(intSchema(t, "x", "y", "z"), "z")
	if err != nil {
		t.Fatalf("col: %v", err)
	}
	return map[string]*algebra.Node{
		"clean": mustSelect(t, intBase(t, "a", 0, 1, 2)),
		"unknown-kind": {
			Kind: algebra.Kind(99), Schema: schema,
		},
		"select-arity": {
			Kind: algebra.KindSelect, Schema: schema,
		},
		"select-schema-drift": {
			Kind:   algebra.KindSelect,
			Inputs: []*algebra.Node{intBase(t, "a", 0)},
			Schema: intSchema(t, "other"),
			Pred:   expr.Literal(seq.Bool(true)),
		},
		"pred-out-of-range": {
			Kind:   algebra.KindSelect,
			Inputs: []*algebra.Node{intBase(t, "a", 0)},
			Schema: schema,
			Pred:   badPred, // references column 2 of a 1-column input; also non-bool
		},
		"voffset-zero": {
			Kind:   algebra.KindValueOffset,
			Inputs: []*algebra.Node{intBase(t, "a", 0)},
			Schema: schema,
			Offset: 0,
		},
		"collapse-factor": {
			Kind:   algebra.KindCollapse,
			Inputs: []*algebra.Node{intBase(t, "a", 0)},
			Schema: intSchema(t, "mx"),
			Factor: 1,
			Agg:    &algebra.AggSpec{Func: algebra.AggMax, Arg: 0, As: "mx"},
		},
		"agg-bad-arg": {
			Kind:   algebra.KindAgg,
			Inputs: []*algebra.Node{intBase(t, "a", 0)},
			Schema: intSchema(t, "s"),
			Agg:    &algebra.AggSpec{Func: algebra.AggSum, Arg: 7, Window: algebra.Trailing(2), As: "s"},
		},
		"shared-node": {
			Kind:      algebra.KindCompose,
			Inputs:    []*algebra.Node{shared, shared},
			Schema:    intSchema(t, "l.v", "r.v"),
			LeftQual:  "l",
			RightQual: "r",
		},
	}
}

func TestVerifyGolden(t *testing.T) {
	for name, q := range brokenQueries(t) {
		got := planlint.Render(planlint.Verify(q))
		path := filepath.Join("testdata", name+".golden")
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", name, err)
		}
		if got != string(want) {
			t.Errorf("%s: diagnostics changed\n--- got ---\n%s--- want ---\n%s", name, got, want)
		}
	}
}

// TestVerifyAnnotationStale mutates an annotation after the fact — the
// failure mode of rewriting a tree without re-annotating it.
func TestVerifyAnnotationStale(t *testing.T) {
	q := mustSelect(t, intBase(t, "a", 0, 1, 2, 3))
	ann, err := meta.Annotate(q, seq.NewSpan(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	m := ann.Get(q)
	m.Density = 1.5               // out of range and disagreeing with recompute
	m.Span = m.Span.Grow(0, 1000) // stale span
	issues := planlint.Verify(q)  // tree itself is still fine
	if len(issues) != 0 {
		t.Fatalf("tree unexpectedly dirty: %v", planlint.Error(issues))
	}
	issues = planlint.VerifyAnnotation(q, ann)
	rendered := planlint.Render(issues)
	for _, want := range []string{"meta/density-range", "meta/density-agree", "meta/span-agree", "meta/density-monotone"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("stale annotation: missing %s in:\n%s", want, rendered)
		}
	}
}

// TestVerifyPhysicalBroken builds malformed physical nodes by struct
// literal, bypassing the checked constructors.
func TestVerifyPhysicalBroken(t *testing.T) {
	leaf := exec.NewLeaf("a", intBase(t, "a", 0, 1, 2).Seq, seq.NewSpan(0, 2))

	unboundedMat := &exec.Materialize{In: leaf, Span: seq.AllSpan}
	if got := planlint.Render(planlint.VerifyPhysical(unboundedMat)); !strings.Contains(got, "phys/materialize-bounded") {
		t.Errorf("unbounded materialize not flagged:\n%s", got)
	}

	zeroOffset := &exec.ValueOffsetNaive{In: leaf, Offset: 0, OutSpan: seq.NewSpan(0, 2)}
	if got := planlint.Render(planlint.VerifyPhysical(zeroOffset)); !strings.Contains(got, "phys/shape") {
		t.Errorf("zero-offset naive voffset not flagged:\n%s", got)
	}

	goodMat, err := exec.NewMaterialize(leaf, seq.NewSpan(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if issues := planlint.VerifyPhysical(goodMat); len(issues) != 0 {
		t.Errorf("well-formed materialize flagged: %v", planlint.Error(issues))
	}
}

// TestCheckRule exercises the rewrite-time hook directly.
func TestCheckRule(t *testing.T) {
	must := builder(t)
	base := func() *algebra.Node { return intBase(t, "a", 0, 1, 2, 3) }

	// A "rule" that replaces offset(+2) with offset(+1) changes the
	// composed window on base a: Proposition 2.1 violated.
	before := must(algebra.PosOffset(base(), 2))
	after := must(algebra.PosOffset(base(), 1))
	if err := planlint.CheckRule("bad-shift", before, after); err == nil {
		t.Error("scope-changing rule not rejected")
	} else if !strings.Contains(err.Error(), "Prop. 2.1") {
		t.Errorf("unexpected error: %v", err)
	}

	// Dropping a base from the tree is a violation.
	composed := must(algebra.Compose(base(), intBase(t, "b", 1, 2), nil, "l", "r"))
	if err := planlint.CheckRule("drop-branch", composed, base()); err == nil {
		t.Error("base-dropping rule not rejected")
	} else if !strings.Contains(err.Error(), "dropped base") {
		t.Errorf("unexpected error: %v", err)
	}

	// Cancelling offsets (+1 then -1 -> identity) legitimately *gains*
	// sequentiality; the hook must accept the improvement.
	cancelled := must(algebra.PosOffset(must(algebra.PosOffset(base(), 1)), -1))
	if err := planlint.CheckRule("fuse-offsets", cancelled, base()); err != nil {
		t.Errorf("sequentiality-improving rule rejected: %v", err)
	}

	// A rule producing an invalid tree is rejected with the diagnostics.
	broken := &algebra.Node{Kind: algebra.KindSelect, Schema: base().Schema}
	if err := planlint.CheckRule("breaks-tree", base(), broken); err == nil {
		t.Error("invalid-tree rule not rejected")
	} else if !strings.Contains(err.Error(), "node/arity") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestVerifyCosts checks the cost-record invariants against a hand-built
// lookup.
func TestVerifyCosts(t *testing.T) {
	leaf := exec.NewLeaf("a", intBase(t, "a", 0, 1, 2).Seq, seq.NewSpan(0, 2))
	sel := exec.NewSelect(leaf, expr.Literal(seq.Bool(true)))

	priced := func(p exec.Plan) (float64, float64, bool) { return 1, 0.5, true }
	if issues := planlint.VerifyCosts(sel, priced); len(issues) != 0 {
		t.Errorf("priced plan flagged: %v", planlint.Error(issues))
	}

	unpriced := func(p exec.Plan) (float64, float64, bool) { return 0, 0, false }
	if got := planlint.Render(planlint.VerifyCosts(sel, unpriced)); !strings.Contains(got, "cost/root-priced") {
		t.Errorf("unpriced root not flagged:\n%s", got)
	}

	negative := func(p exec.Plan) (float64, float64, bool) { return -1, 0, true }
	if got := planlint.Render(planlint.VerifyCosts(sel, negative)); !strings.Contains(got, "cost/finite") {
		t.Errorf("negative cost not flagged:\n%s", got)
	}
}
