package planlint

import (
	"math"
	"sort"

	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/seq"
)

// ReoptSegment describes one executed segment of a mid-run reoptimized
// evaluation: the span it covered and the (uninstrumented) plan that
// ran it. internal/core hands the reopt layer's report over in this
// neutral form so the verifier depends on neither side.
type ReoptSegment struct {
	Span seq.Span
	Plan exec.Plan
}

// VerifyReopt checks the splice legality of a reoptimized run — the
// restricted plan-switch Thm. 3.1 makes safe:
//
//	reopt/span-cover      the executed segments are contiguous,
//	                      ascending, and their union is exactly the run
//	                      span: the spliced plan covers exactly the
//	                      remaining span at every switch, so the
//	                      concatenated segment outputs reproduce the
//	                      static evaluation (§2.3 restriction).
//	reopt/cache-isolation no operator cache is reachable from two
//	                      different segments' plans: cache contents
//	                      never cross a switch, each segment warms its
//	                      own cache-finite state (Def. 3.2) from the
//	                      history its operators walk themselves.
//	reopt/segment-plan    every spliced plan is itself invariant-clean
//	                      under the physical checks (cache bounds,
//	                      strategy shapes).
//
// An empty-span run with no segments verifies trivially.
func VerifyReopt(full seq.Span, segs []ReoptSegment) []Issue {
	c := &checker{}
	if full.IsEmpty() && len(segs) == 0 {
		return nil
	}
	c.checkReoptCover(full, segs)
	c.checkReoptCacheIsolation(segs)
	for _, s := range segs {
		if sub := VerifyPhysical(s.Plan); len(sub) > 0 {
			c.reportPlan("reopt/segment-plan", "Thm. 3.1", s.Plan,
				"spliced plan for span %s violates %d physical invariant(s)", s.Span, len(sub))
			c.issues = append(c.issues, sub...)
		}
	}
	return c.issues
}

func (c *checker) checkReoptCover(full seq.Span, segs []ReoptSegment) {
	if !full.Bounded() {
		c.issues = append(c.issues, Issue{
			Invariant: "reopt/span-cover", Ref: "Thm. 3.1", Node: "<run>",
			Detail: "monitored run over unbounded span " + full.String(),
		})
		return
	}
	if len(segs) == 0 {
		c.issues = append(c.issues, Issue{
			Invariant: "reopt/span-cover", Ref: "Thm. 3.1", Node: "<run>",
			Detail: "no executed segments for span " + full.String(),
		})
		return
	}
	next := full.Start
	for i, s := range segs {
		if s.Span.IsEmpty() || !s.Span.Bounded() {
			c.reportPlan("reopt/span-cover", "Thm. 3.1", s.Plan,
				"segment %d span %s is empty or unbounded", i, s.Span)
			return
		}
		if s.Span.Start != next {
			c.reportPlan("reopt/span-cover", "Thm. 3.1", s.Plan,
				"segments are not contiguous ascending: segment %d starts at %d, want %d",
				i, s.Span.Start, next)
			return
		}
		next = s.Span.End + 1
	}
	if next != full.End+1 {
		c.reportPlan("reopt/span-cover", "Thm. 3.1", segs[len(segs)-1].Plan,
			"segment union ends at %d, want run span end %d", next-1, full.End)
	}
}

func (c *checker) checkReoptCacheIsolation(segs []ReoptSegment) {
	seen := make(map[*cache.FIFO]int)
	for i, s := range segs {
		var walk func(n exec.Plan)
		walk = func(n exec.Plan) {
			for _, f := range n.Caches() {
				if f == nil {
					continue
				}
				if prev, ok := seen[f]; ok && prev != i {
					c.reportPlan("reopt/cache-isolation", "Def. 3.2", n,
						"operator cache shared between segment %d and segment %d", prev, i)
				} else {
					seen[f] = i
				}
			}
			for _, ch := range n.Children() {
				walk(ch)
			}
		}
		walk(s.Plan)
	}
}

// VerifyCalibrationConstants checks a regressed constant set: every
// constant must be positive and finite — a non-positive page or record
// weight would invert the §4 cost comparisons, and a NaN/Inf poisons
// every estimate built from it.
//
//	reopt/calibration-finite  each named constant is > 0, finite, and
//	                          not NaN.
func VerifyCalibrationConstants(consts map[string]float64) []Issue {
	c := &checker{}
	names := make([]string, 0, len(consts))
	for name := range consts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := consts[name]
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			c.issues = append(c.issues, Issue{
				Invariant: "reopt/calibration-finite", Ref: "§4.1",
				Node:   "<calibration>",
				Detail: "constant " + name + " is not positive and finite",
			})
		}
	}
	return c.issues
}
