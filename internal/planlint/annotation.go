package planlint

import (
	"math"

	"repro/internal/algebra"
	"repro/internal/meta"
)

// VerifyAnnotation checks the Step-2 meta-information (§3.2–3.3, §4
// Step 2) attached to a query tree:
//
//   - every node carries meta; densities lie in [0, 1];
//   - access spans are contained in the valid span and (when the
//     universe is bounded) are themselves bounded — the §3.2 guarantee
//     that every physical scan stays inside a finite window;
//   - unit-scope operators propagate density monotonically (a selection
//     can only thin its input, a projection and a positional offset
//     preserve it, a compose is at most as dense as either input);
//   - re-running the bottom-up and top-down passes on the same tree
//     reproduces the annotation exactly (catches stale annotations after
//     a tree was mutated instead of rebuilt).
func VerifyAnnotation(root *algebra.Node, ann *meta.Annotation) []Issue {
	c := &checker{}
	if root == nil || ann == nil {
		c.report("meta/present", "§4 Step 2", nil, "nil tree or annotation")
		return c.issues
	}

	var walk func(n *algebra.Node)
	walk = func(n *algebra.Node) {
		m := ann.Get(n)
		if m == nil {
			c.report("meta/present", "§4 Step 2", n, "node has no meta-information")
			return
		}
		if math.IsNaN(m.Density) || m.Density < 0 || m.Density > 1 {
			c.report("meta/density-range", "Def. 3.2 (density)", n,
				"density %v outside [0, 1]", m.Density)
		}
		if !m.AccessSpan.IsEmpty() {
			if m.AccessSpan.Intersect(m.Span) != m.AccessSpan {
				c.report("meta/access-in-span", "§3.2", n,
					"access span %s escapes valid span %s", m.AccessSpan, m.Span)
			}
			if ann.Universe.Bounded() && !m.AccessSpan.Bounded() {
				c.report("meta/access-bounded", "§3.2", n,
					"unbounded access span %s under bounded universe %s", m.AccessSpan, ann.Universe)
			}
		}
		c.checkDensityMonotone(n, m, ann)
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)

	// Root access span: what Run evaluates must lie inside the requested
	// range (§4 Step 2.b starts the top-down pass from it).
	if rm := ann.Get(root); rm != nil && !rm.AccessSpan.IsEmpty() {
		if rm.AccessSpan.Intersect(ann.Requested) != rm.AccessSpan {
			c.report("meta/root-access", "§4 Step 2.b", root,
				"root access span %s escapes requested range %s", rm.AccessSpan, ann.Requested)
		}
	}

	// Recompute both passes and compare node-for-node: the propagation is
	// deterministic, so any mismatch means the annotation went stale.
	fresh, err := meta.Annotate(root, ann.Requested)
	if err != nil {
		c.report("meta/recompute", "§4 Step 2", root, "re-annotation failed: %v", err)
		return c.issues
	}
	var compare func(n *algebra.Node)
	compare = func(n *algebra.Node) {
		a, b := ann.Get(n), fresh.Get(n)
		if a == nil || b == nil {
			return // meta/present already reported
		}
		if a.Span != b.Span {
			c.report("meta/span-agree", "§3.2", n,
				"annotated span %s, recomputed bottom-up span %s", a.Span, b.Span)
		}
		if a.AccessSpan != b.AccessSpan {
			c.report("meta/span-agree", "§3.2", n,
				"annotated access span %s, recomputed top-down span %s", a.AccessSpan, b.AccessSpan)
		}
		if !floatsClose(a.Density, b.Density) {
			c.report("meta/density-agree", "§3.3", n,
				"annotated density %v, recomputed %v", a.Density, b.Density)
		}
		for _, in := range n.Inputs {
			compare(in)
		}
	}
	compare(root)
	return c.issues
}

// checkDensityMonotone enforces the unit-scope density laws (§3.3):
// operators that read exactly the current position cannot create
// records, so their output density never exceeds their input's. Non-unit
// operators (aggregates, value offsets, collapse) legitimately densify.
func (c *checker) checkDensityMonotone(n *algebra.Node, m *meta.NodeMeta, ann *meta.Annotation) {
	const eps = 1e-9
	in := func(i int) *meta.NodeMeta {
		if i < len(n.Inputs) {
			return ann.Get(n.Inputs[i])
		}
		return nil
	}
	switch n.Kind {
	case algebra.KindBase, algebra.KindConst, algebra.KindAgg,
		algebra.KindValueOffset, algebra.KindCollapse, algebra.KindExpand:
		// Leaves have no input to compare with; non-unit operators
		// legitimately densify (an aggregate or value offset is non-Null
		// wherever its window finds records).
	case algebra.KindSelect:
		if im := in(0); im != nil && m.Density > im.Density+eps {
			c.report("meta/density-monotone", "§3.3", n,
				"selection density %v exceeds input density %v", m.Density, im.Density)
		}
	case algebra.KindProject, algebra.KindPosOffset:
		if im := in(0); im != nil && !floatsClose(m.Density, im.Density) {
			c.report("meta/density-monotone", "§3.3", n,
				"density-preserving operator has density %v, input %v", m.Density, im.Density)
		}
	case algebra.KindCompose:
		l, r := in(0), in(1)
		if l != nil && r != nil {
			bound := math.Min(l.Density, r.Density)
			if m.Density > bound+eps {
				c.report("meta/density-monotone", "§3.3", n,
					"compose density %v exceeds min input density %v", m.Density, bound)
			}
		}
	}
}

func floatsClose(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
