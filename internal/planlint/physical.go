package planlint

import (
	"fmt"
	"math"

	"repro/internal/exec"
)

// VerifyPhysical checks the structural invariants of a physical plan,
// chiefly the cache-finiteness side of Theorem 3.1: every operator cache
// must have a positive, data-independent capacity fixed at plan time
// (Definition 3.2), and the capacity must match the bound the paper
// derives for the strategy — |l| retained records for Cache-Strategy-B
// on a value offset of l, the window size for Cache-Strategy-A. It also
// rechecks per-operator shape constraints the constructors enforce, and
// that no cache ever held more than its configured capacity (Peak ≤ Cap,
// meaningful after a run).
func VerifyPhysical(p exec.Plan) []Issue {
	c := &checker{}
	if p == nil {
		c.issues = append(c.issues, Issue{
			Invariant: "phys/nil", Ref: "Thm. 3.1", Node: "<nil>", Detail: "nil plan",
		})
		return c.issues
	}
	var walk func(n exec.Plan)
	walk = func(n exec.Plan) {
		c.checkPhysicalNode(n)
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(p)
	return c.issues
}

func (c *checker) reportPlan(invariant, ref string, p exec.Plan, format string, args ...any) {
	c.issues = append(c.issues, Issue{
		Invariant: invariant,
		Ref:       ref,
		Node:      p.Label(),
		Detail:    fmt.Sprintf(format, args...),
	})
}

func (c *checker) checkPhysicalNode(n exec.Plan) {
	// Definition 3.2: cache sizes are constants fixed at plan time.
	for _, fifo := range n.Caches() {
		if fifo == nil {
			c.reportPlan("phys/cache-bound", "Def. 3.2", n, "nil operator cache")
			continue
		}
		if fifo.Cap() < 1 {
			c.reportPlan("phys/cache-bound", "Def. 3.2", n,
				"cache capacity %d is not a positive constant", fifo.Cap())
		}
		if fifo.Peak() > fifo.Cap() {
			c.reportPlan("phys/cache-bound", "Def. 3.2", n,
				"cache peak residency %d exceeded capacity %d", fifo.Peak(), fifo.Cap())
		}
	}

	inner := n
	if w, ok := n.(*exec.Metered); ok {
		inner = w.Inner
	}
	switch op := inner.(type) {
	case *exec.ValueOffsetIncremental:
		// Theorem 3.1 / §3.5: Cache-Strategy-B retains exactly the last
		// (or next) |l| non-Null records.
		want := op.Offset
		if want < 0 {
			want = -want
		}
		total := 0
		for _, fifo := range op.Caches() {
			total += fifo.Cap()
		}
		if int64(total) != want {
			c.reportPlan("phys/cache-bound", "Thm. 3.1", n,
				"Cache-Strategy-B capacity %d, want |l| = %d", total, want)
		}
		if op.Offset == 0 {
			c.reportPlan("phys/shape", "§2.1", n, "value offset of 0")
		}
	case *exec.ValueOffsetNaive:
		if op.Offset == 0 {
			c.reportPlan("phys/shape", "§2.1", n, "value offset of 0")
		}
	case *exec.AggCached:
		// Cache-Strategy-A holds one window's worth of records (§3.5,
		// Figure 5.A) — only defined for bounded windows.
		size, fixed := op.Spec.Window.Size()
		if !fixed {
			c.reportPlan("phys/shape", "§3.5", n, "Cache-Strategy-A over unbounded window %s", op.Spec.Window)
			break
		}
		total := 0
		for _, fifo := range op.Caches() {
			total += fifo.Cap()
		}
		if int64(total) != size {
			c.reportPlan("phys/cache-bound", "§3.5", n,
				"Cache-Strategy-A capacity %d, want window size %d", total, size)
		}
	case *exec.AggSliding:
		if _, fixed := op.Spec.Window.Size(); !fixed {
			c.reportPlan("phys/shape", "§3.5", n, "sliding accumulator over unbounded window %s", op.Spec.Window)
		}
	case *exec.Materialize:
		// Materialization must cover a bounded span, or the "cache" grows
		// with the data and the memory bound of Definition 3.2 is lost.
		if !op.Span.Bounded() {
			c.reportPlan("phys/materialize-bounded", "§5.3", n, "unbounded materialization span %s", op.Span)
		}
	case *exec.ComposeOp:
		ls := op.L.Info().Schema.NumFields()
		rs := op.R.Info().Schema.NumFields()
		if got := op.Info().Schema.NumFields(); got != ls+rs {
			c.reportPlan("phys/shape", "§2.1", n, "composed arity %d, want %d+%d", got, ls, rs)
		}
	case *exec.CollapseOp:
		if op.Factor <= 1 {
			c.reportPlan("phys/shape", "§5.1", n, "collapse factor %d, want > 1", op.Factor)
		}
	case *exec.ExpandOp:
		if op.Factor <= 1 {
			c.reportPlan("phys/shape", "§5.1", n, "expand factor %d, want > 1", op.Factor)
		}
	}
}

// VerifyCosts checks the optimizer's recorded per-node estimates against
// the cost-model ground rules (§4.1): every recorded cost must be
// non-negative and finite, and the root of the plan must have been
// priced. lookup returns the recorded (stream, perProbe) estimate for a
// node and whether one exists.
func VerifyCosts(p exec.Plan, lookup func(exec.Plan) (stream, probe float64, ok bool)) []Issue {
	c := &checker{}
	if p == nil || lookup == nil {
		return c.issues
	}
	if _, _, ok := lookup(p); !ok {
		c.reportPlan("cost/root-priced", "§4.1", p, "no recorded estimate for the plan root")
	}
	var walk func(n exec.Plan)
	walk = func(n exec.Plan) {
		if stream, probe, ok := lookup(n); ok {
			if stream < 0 || math.IsNaN(stream) || math.IsInf(stream, 0) {
				c.reportPlan("cost/finite", "§4.1", n, "stream cost %v is not a finite non-negative number", stream)
			}
			if probe < 0 || math.IsNaN(probe) || math.IsInf(probe, 0) {
				c.reportPlan("cost/finite", "§4.1", n, "per-probe cost %v is not a finite non-negative number", probe)
			}
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(p)
	return c.issues
}
