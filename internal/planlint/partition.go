package planlint

import (
	"fmt"
	"math"

	"repro/internal/algebra"
	"repro/internal/cache"
	"repro/internal/exec"
	"repro/internal/parallel"
)

// VerifyPartitions checks a partition planner decision against the plan
// it covers. The invariant family guards the legality argument of
// span-partitioned evaluation:
//
//	partition/union       the sub-spans are contiguous, ascending, and
//	                      their union is exactly the evaluation span, so
//	                      concatenated worker outputs reproduce the
//	                      serial stream (§2.3).
//	partition/halo        the decision's declared halo covers the
//	                      composed effective scope of the plan,
//	                      re-derived here independently of the planner
//	                      (Prop. 2.1 window composition, Def. 3.3 value
//	                      offset broadening, §5.1 affine zoom scopes).
//	partition/serial-only a cost-model (non-forced) decision never
//	                      splits a plan whose effective scope cannot be
//	                      usefully bounded — left-unbounded cumulative
//	                      windows, unknown-density value offsets,
//	                      probed-mode compose legs, materialization
//	                      points.
//	partition/cache-isolation
//	                      worker plan clones share no mutable operator
//	                      cache with each other or with the original
//	                      plan (Thm. 3.1 gives each worker its own
//	                      cache-finite state).
//
// Serial decisions (K == 1) assert nothing and verify trivially.
func VerifyPartitions(p exec.Plan, d *parallel.Decision) []Issue {
	if p == nil || !d.Parallel() {
		return nil
	}
	c := &checker{}
	c.checkPartitionUnion(p, d)
	c.checkPartitionScope(p, d)
	c.checkCacheIsolation(p, d)
	return c.issues
}

func (c *checker) checkPartitionUnion(p exec.Plan, d *parallel.Decision) {
	if !d.Span.Bounded() {
		c.reportPlan("partition/union", "§2.3", p, "partitioned decision over unbounded span %s", d.Span)
		return
	}
	if d.K != len(d.Partitions) {
		c.reportPlan("partition/union", "§2.3", p, "decision says K=%d but carries %d partitions", d.K, len(d.Partitions))
	}
	next := d.Span.Start
	for i, part := range d.Partitions {
		if part.IsEmpty() || !part.Bounded() || part.End < part.Start {
			c.reportPlan("partition/union", "§2.3", p, "partition %d is empty or unbounded: %s", i, part)
			return
		}
		if part.Start != next {
			c.reportPlan("partition/union", "§2.3", p,
				"partitions are not contiguous ascending: partition %d starts at %d, want %d", i, part.Start, next)
			return
		}
		next = part.End + 1
	}
	if next != d.Span.End+1 {
		c.reportPlan("partition/union", "§2.3", p,
			"partition union ends at %d, want span end %d", next-1, d.Span.End)
	}
}

// checkPartitionScope re-derives the composed effective scope of the
// plan with its own walk (not the planner's) and checks both scope
// invariants against the decision: a serial-only plan must not have been
// split by the cost model, and a declared halo must cover the composed
// scope hull.
func (c *checker) checkPartitionScope(p exec.Plan, d *parallel.Decision) {
	hull, reason := partitionScope(p, algebra.Range(0, 0))
	if reason != "" {
		if !d.Forced {
			c.reportPlan("partition/serial-only", "Thm. 3.1", p,
				"K=%d cost-model decision over a serial-only plan (%s)", d.K, reason)
		}
		return
	}
	if hull.Lo < d.Halo.Lo || hull.Hi > d.Halo.Hi {
		c.reportPlan("partition/halo", "Prop. 2.1 / Def. 3.3", p,
			"declared halo %s does not cover the composed effective scope %s", d.Halo, hull)
	}
}

// partitionScope composes relative effective-scope windows along every
// root-to-leaf path (Prop. 2.1: relative windows add under composition)
// and returns the hull over all leaves, or a non-empty reason when some
// operator's scope cannot be usefully bounded.
func partitionScope(p exec.Plan, acc algebra.Window) (algebra.Window, string) {
	inner := p
	if w, ok := p.(*exec.Metered); ok {
		inner = w.Inner
	}
	switch op := inner.(type) {
	case *exec.Leaf:
		return acc, ""
	case *exec.Rename:
		return partitionScope(op.In, acc)
	case *exec.SelectOp:
		return partitionScope(op.In, acc)
	case *exec.ProjectOp:
		return partitionScope(op.In, acc)
	case *exec.PosOffsetOp:
		return partitionScope(op.In, algebra.Range(acc.Lo+op.Offset, acc.Hi+op.Offset))
	case *exec.AggNaive:
		return scopeThroughWindow(op.In, op.Spec.Window, acc)
	case *exec.AggCached:
		return scopeThroughWindow(op.In, op.Spec.Window, acc)
	case *exec.AggSliding:
		return scopeThroughWindow(op.In, op.Spec.Window, acc)
	case *exec.AggCumulative:
		return acc, "cumulative aggregate (left-unbounded scope)"
	case *exec.ValueOffsetNaive:
		return scopeThroughValueOffset(op.In, op.Offset, acc)
	case *exec.ValueOffsetIncremental:
		return scopeThroughValueOffset(op.In, op.Offset, acc)
	case *exec.ComposeOp:
		if op.Strategy != exec.ComposeLockStep {
			return acc, "compose with a probed-mode inner leg"
		}
		l, reason := partitionScope(op.L, acc)
		if reason != "" {
			return acc, reason
		}
		r, reason := partitionScope(op.R, acc)
		if reason != "" {
			return acc, reason
		}
		return hullWindow(l, r), ""
	case *exec.Materialize:
		return acc, "materialization point"
	case *exec.CollapseOp:
		return partitionScope(op.In, algebra.Range(acc.Lo*op.Factor, acc.Hi*op.Factor+op.Factor-1))
	case *exec.ExpandOp:
		return partitionScope(op.In, algebra.Range(algebra.FloorDiv(acc.Lo, op.Factor), algebra.FloorDiv(acc.Hi, op.Factor)+1))
	default:
		return acc, fmt.Sprintf("unknown operator %s", p.Label())
	}
}

func scopeThroughWindow(in exec.Plan, w algebra.Window, acc algebra.Window) (algebra.Window, string) {
	if w.LoUnbounded || w.HiUnbounded {
		return acc, fmt.Sprintf("aggregate over unbounded window %s", w)
	}
	return partitionScope(in, algebra.Range(acc.Lo+w.Lo, acc.Hi+w.Hi))
}

func scopeThroughValueOffset(in exec.Plan, offset int64, acc algebra.Window) (algebra.Window, string) {
	density := in.Info().Density
	if density <= 0 {
		return acc, "value offset over input of unknown density"
	}
	need := offset
	if need < 0 {
		need = -need
	}
	est := int64(math.Ceil(float64(need) / density))
	w := algebra.Range(-est, 0)
	if offset > 0 {
		w = algebra.Range(0, est)
	}
	return partitionScope(in, algebra.Range(acc.Lo+w.Lo, acc.Hi+w.Hi))
}

func hullWindow(a, b algebra.Window) algebra.Window {
	out := a
	if b.Lo < out.Lo {
		out.Lo = b.Lo
	}
	if b.Hi > out.Hi {
		out.Hi = b.Hi
	}
	return out
}

// checkCacheIsolation clones the plan the way the parallel runner does
// and verifies no mutable operator cache is reachable from two different
// plans (clone/clone or clone/original).
func (c *checker) checkCacheIsolation(p exec.Plan, d *parallel.Decision) {
	clones, err := parallel.CloneWorkers(p, 2)
	if err != nil {
		c.reportPlan("partition/cache-isolation", "Thm. 3.1", p,
			"plan in a K=%d decision is not clonable: %v", d.K, err)
		return
	}
	seen := make(map[*cache.FIFO]string)
	record := func(root exec.Plan, who string) {
		var walk func(n exec.Plan)
		walk = func(n exec.Plan) {
			for _, f := range n.Caches() {
				if f == nil {
					continue
				}
				if prev, ok := seen[f]; ok {
					c.reportPlan("partition/cache-isolation", "Thm. 3.1", n,
						"operator cache shared between %s and %s", prev, who)
				} else {
					seen[f] = who
				}
			}
			for _, ch := range n.Children() {
				walk(ch)
			}
		}
		walk(root)
	}
	record(p, "the original plan")
	for i, cl := range clones {
		record(cl, fmt.Sprintf("worker clone %d", i))
	}
}
