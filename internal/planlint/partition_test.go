package planlint_test

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/planlint"
	"repro/internal/seq"
	"repro/internal/storage"
)

// aggFixture builds trailing-sum over a sparse paged store — a
// partitionable plan with a genuine non-empty halo.
func aggFixture(t *testing.T, n int) (exec.Plan, seq.Span) {
	t.Helper()
	schema := intSchema(t, "v")
	span := seq.NewSpan(1, seq.Pos(n))
	entries := make([]seq.Entry, 0, n/2)
	for p := seq.Pos(1); p <= seq.Pos(n); p += 2 {
		entries = append(entries, seq.Entry{Pos: p, Rec: seq.Record{seq.Int(int64(p))}})
	}
	m, err := seq.MustMaterialized(schema, entries).WithSpan(span)
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.FromMaterialized(m, storage.KindSparse, 8)
	if err != nil {
		t.Fatal(err)
	}
	leaf := exec.NewLeaf("s", st, span)
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Trailing(4), As: "sum"}
	agg, err := exec.NewAggCached(leaf, spec, span)
	if err != nil {
		t.Fatal(err)
	}
	return agg, span
}

func wantInvariant(t *testing.T, issues []planlint.Issue, invariant, msgFrag string) {
	t.Helper()
	for _, is := range issues {
		if is.Invariant == invariant && strings.Contains(is.Detail, msgFrag) {
			return
		}
	}
	t.Fatalf("no %s issue containing %q in %v", invariant, msgFrag, issues)
}

func TestVerifyPartitionsCleanDecisions(t *testing.T) {
	p, span := aggFixture(t, 4096)
	forced, err := parallel.ForceK(p, span, 3)
	if err != nil {
		t.Fatal(err)
	}
	if issues := planlint.VerifyPartitions(p, forced); len(issues) != 0 {
		t.Errorf("forced K=3 decision raised %v", issues)
	}
	costed := parallel.Plan(p, span, 5000, 4, parallel.DefaultParams())
	if !costed.Parallel() {
		t.Fatalf("expected a cost-model split, got %s", costed)
	}
	if issues := planlint.VerifyPartitions(p, costed); len(issues) != 0 {
		t.Errorf("cost-model decision raised %v", issues)
	}
	// Serial decisions and nil plans verify trivially.
	if issues := planlint.VerifyPartitions(p, nil); issues != nil {
		t.Errorf("nil decision raised %v", issues)
	}
	serial := parallel.Plan(p, span, 1, 4, parallel.DefaultParams())
	if issues := planlint.VerifyPartitions(p, serial); issues != nil {
		t.Errorf("serial decision raised %v", issues)
	}
}

func TestVerifyPartitionsUnionViolations(t *testing.T) {
	p, span := aggFixture(t, 4096)
	base, err := parallel.ForceK(p, span, 3)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(d *parallel.Decision)) []planlint.Issue {
		d := *base
		d.Partitions = append([]seq.Span(nil), base.Partitions...)
		mutate(&d)
		return planlint.VerifyPartitions(p, &d)
	}
	wantInvariant(t, corrupt(func(d *parallel.Decision) {
		//seqvet:ignore spanarith deliberately corrupting bounded partition spans
		d.Partitions[1] = seq.NewSpan(d.Partitions[1].Start+1, d.Partitions[1].End)
	}), "partition/union", "not contiguous")
	wantInvariant(t, corrupt(func(d *parallel.Decision) {
		//seqvet:ignore spanarith deliberately corrupting bounded partition spans
		d.Partitions[0] = seq.NewSpan(d.Partitions[0].Start, d.Partitions[0].End+1)
	}), "partition/union", "not contiguous")
	wantInvariant(t, corrupt(func(d *parallel.Decision) {
		last := &d.Partitions[len(d.Partitions)-1]
		//seqvet:ignore spanarith deliberately corrupting bounded partition spans
		*last = seq.NewSpan(last.Start, last.End-5)
	}), "partition/union", "union ends at")
	wantInvariant(t, corrupt(func(d *parallel.Decision) {
		d.K = 2
	}), "partition/union", "carries 3 partitions")
	wantInvariant(t, corrupt(func(d *parallel.Decision) {
		d.Span = seq.AllSpan
	}), "partition/union", "unbounded span")
}

func TestVerifyPartitionsHaloUnderstated(t *testing.T) {
	p, span := aggFixture(t, 4096)
	d, err := parallel.ForceK(p, span, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Halo.Lo > -3 {
		t.Fatalf("fixture halo %s should reach back at least 3", d.Halo)
	}
	d.Halo = algebra.Range(0, 0) // lie: trailing window needs history
	wantInvariant(t, planlint.VerifyPartitions(p, d),
		"partition/halo", "does not cover the composed effective scope")
}

func TestVerifyPartitionsSerialOnlySplit(t *testing.T) {
	p, span := aggFixture(t, 4096)
	mat, err := exec.NewMaterialize(p, span)
	if err != nil {
		t.Fatal(err)
	}
	// A hand-built (non-forced) K=2 decision over a materialization point
	// claims the cost model split a serial-only plan.
	d := &parallel.Decision{
		K: 2, Partitions: parallel.SplitSpan(span, 2), Span: span, MaxWorkers: 2,
	}
	wantInvariant(t, planlint.VerifyPartitions(mat, d),
		"partition/serial-only", "materialization point")
	// The same decision marked Forced asserts nothing about advisability.
	forced := *d
	forced.Forced = true
	for _, is := range planlint.VerifyPartitions(mat, &forced) {
		if is.Invariant == "partition/serial-only" {
			t.Errorf("forced decision raised %v", is)
		}
	}
}

func TestVerifyPartitionsUnclonablePlan(t *testing.T) {
	p, span := aggFixture(t, 4096)
	instr, _ := exec.Instrument(p, nil)
	d := &parallel.Decision{
		K: 2, Partitions: parallel.SplitSpan(span, 2), Span: span, MaxWorkers: 2, Forced: true,
	}
	wantInvariant(t, planlint.VerifyPartitions(instr, d),
		"partition/cache-isolation", "not clonable")
}
