package planlint

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/matview"
	"repro/internal/seq"
)

// VerifyMaintenance re-derives the correctness of a batch of incremental
// view maintenance decisions (the ivm/* invariant family; see
// docs/INVARIANTS.md). reg is the registry the maintenance ran against
// (post-maintenance state), lookup resolves base names to their
// post-write sequences — the same binding the maintenance used.
//
//   - ivm/halo-coverage: the affected span recorded in the report equals
//     an independent re-derivation from the view's block and the delta,
//     and the chosen action is consistent with it — a stitch re-evaluates
//     exactly the affected intersection, a shrink keeps only positions
//     the halo cannot reach, a no-op requires an empty intersection.
//   - ivm/stitch-exact: the records a stitch spliced into the view store
//     are exactly what evaluating the view's block over the stitched
//     span against the post-write data produces.
//   - ivm/epoch-monotone: per view, maintenance epochs never decrease
//     across the batch, and a generation swapped in at epoch e > 0
//     reports FromEpoch == e.
func VerifyMaintenance(reg *matview.Registry, lookup func(string) (seq.Sequence, bool), reports []matview.MaintenanceReport) []Issue {
	c := &checker{}
	lastEpoch := make(map[string]int64)
	for i := range reports {
		rep := &reports[i]
		verifyMaintenanceReport(c, reg, lookup, rep)
		if prev, ok := lastEpoch[rep.ViewName]; ok && rep.Epoch < prev {
			c.reportIVM("ivm/epoch-monotone", rep,
				"maintenance epoch went backwards: %d after %d", rep.Epoch, prev)
		}
		lastEpoch[rep.ViewName] = rep.Epoch
	}
	return c.issues
}

func verifyMaintenanceReport(c *checker, reg *matview.Registry, lookup func(string) (seq.Sequence, bool), rep *matview.MaintenanceReport) {
	// Internal consistency of the decision against the recorded halo.
	hit := rep.Affected.Intersect(rep.OldSpan)
	switch rep.Action {
	case matview.MaintainNone:
		if !rep.AffectedKnown {
			c.reportIVM("ivm/halo-coverage", rep, "no-op with an unknown halo")
		} else if !hit.IsEmpty() {
			c.reportIVM("ivm/halo-coverage", rep,
				"no-op but the halo reaches the view: affected ∩ span = %v", hit)
		}
		if rep.NewSpan != rep.OldSpan {
			c.reportIVM("ivm/halo-coverage", rep, "no-op changed the span: %v -> %v", rep.OldSpan, rep.NewSpan)
		}
	case matview.MaintainStitch:
		if !rep.AffectedKnown {
			c.reportIVM("ivm/halo-coverage", rep, "stitch with an unknown halo")
		}
		if rep.StitchSpan != hit {
			c.reportIVM("ivm/halo-coverage", rep,
				"stitched span %v is not the halo's intersection with the view span %v", rep.StitchSpan, hit)
		}
		if rep.NewSpan != rep.OldSpan {
			c.reportIVM("ivm/halo-coverage", rep, "stitch changed the span: %v -> %v", rep.OldSpan, rep.NewSpan)
		}
	case matview.MaintainShrink:
		if !rep.AffectedKnown {
			c.reportIVM("ivm/halo-coverage", rep, "shrink with an unknown halo")
		}
		want := seq.NewSpan(rep.OldSpan.Start, seq.ClampPos(hit.Start-1))
		if rep.NewSpan != want {
			c.reportIVM("ivm/halo-coverage", rep,
				"shrunk span %v is not the unaffected prefix %v", rep.NewSpan, want)
		}
		if !rep.NewSpan.Intersect(rep.Affected).IsEmpty() {
			c.reportIVM("ivm/halo-coverage", rep,
				"shrunk span %v still intersects the halo %v", rep.NewSpan, rep.Affected)
		}
	case matview.MaintainInvalidate:
		if !rep.NewSpan.IsEmpty() {
			c.reportIVM("ivm/halo-coverage", rep, "invalidate kept a span: %v", rep.NewSpan)
		}
	}

	// The surviving generation, if any, must agree with the report and
	// with an independent evaluation of its block over post-write data.
	if rep.Action == matview.MaintainInvalidate {
		return
	}
	v, ok := reg.Get(rep.ViewName)
	if !ok {
		c.reportIVM("ivm/halo-coverage", rep, "maintained view is no longer registered")
		return
	}
	if v.Span != rep.NewSpan {
		c.reportIVM("ivm/halo-coverage", rep,
			"registered span %v does not match the report's %v", v.Span, rep.NewSpan)
		return
	}
	if rep.Epoch > 0 && rep.Action != matview.MaintainNone && v.FromEpoch != rep.Epoch {
		c.reportIVM("ivm/epoch-monotone", rep,
			"maintained generation is stamped FromEpoch %d, want the maintenance epoch %d",
			v.FromEpoch, rep.Epoch)
	}

	// Re-derive the halo from the view's block bound to post-write data.
	node, err := matview.Rebind(v.Node, lookup)
	if err != nil {
		c.reportIVM("ivm/halo-coverage", rep, "view block does not rebind to post-write data: %v", err)
		return
	}
	affected, known := matview.AffectedSpan(node, rep.Base, rep.Delta)
	if known != rep.AffectedKnown || (known && affected != rep.Affected) {
		c.reportIVM("ivm/halo-coverage", rep,
			"independent halo derivation disagrees: got %v (known=%v), report says %v (known=%v)",
			affected, known, rep.Affected, rep.AffectedKnown)
		return
	}

	if rep.Action == matview.MaintainStitch && !rep.StitchSpan.IsEmpty() {
		want, err := algebra.EvalRange(node, rep.StitchSpan)
		if err != nil {
			c.reportIVM("ivm/stitch-exact", rep, "re-evaluating the stitched span failed: %v", err)
			return
		}
		got, err := seq.Collect(v.Store.Scan(rep.StitchSpan))
		if err != nil {
			c.reportIVM("ivm/stitch-exact", rep, "scanning the stitched span failed: %v", err)
			return
		}
		if len(got) != len(want) {
			c.reportIVM("ivm/stitch-exact", rep,
				"stitched region holds %d records, re-evaluation yields %d", len(got), len(want))
			return
		}
		for i := range got {
			// Float tolerance: the stitch ran through the optimizer's plan
			// (sliding accumulators, batch kernels), whose summation order
			// legitimately differs from the reference interpreter's.
			if got[i].Pos != want[i].Pos || !recordsApproxEqual(got[i].Rec, want[i].Rec) {
				c.reportIVM("ivm/stitch-exact", rep,
					"stitched record at position %d differs from re-evaluation: got %v, want %v",
					got[i].Pos, got[i].Rec, want[i].Rec)
				return
			}
		}
	}
}

// reportIVM attaches the report context to an ivm/* issue.
func (c *checker) reportIVM(invariant string, rep *matview.MaintenanceReport, format string, args ...any) {
	c.issues = append(c.issues, Issue{
		Invariant: invariant,
		Ref:       "§3.4",
		Node:      "view " + rep.ViewName,
		Detail:    fmt.Sprintf(format, args...) + " (" + rep.String() + ")",
	})
}
