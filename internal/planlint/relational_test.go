package planlint_test

import (
	"math"
	"testing"

	"repro/internal/planlint"
	"repro/internal/relational"
	"repro/internal/seq"
)

func e1Relations(t *testing.T) (*relational.Relation, *relational.Relation) {
	t.Helper()
	volcanos, err := relational.NewRelation("volcanos", relational.VolcanoSchema, []relational.Tuple{
		{seq.Int(2), seq.Str("etna")},
		{seq.Int(6), seq.Str("fuji")},
		{seq.Int(9), seq.Str("rainier")},
	})
	if err != nil {
		t.Fatal(err)
	}
	quakes, err := relational.NewRelation("quakes", relational.QuakeSchema, []relational.Tuple{
		{seq.Int(1), seq.Float(6.0)},
		{seq.Int(4), seq.Float(7.5)},
		{seq.Int(8), seq.Float(5.0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return volcanos, quakes
}

// TestVerifyRelationalE1Plans is the regression test for the ROADMAP
// item: the descriptors of both E1 strategies — the plans the
// experiment actually runs — pass every rel/* invariant.
func TestVerifyRelationalE1Plans(t *testing.T) {
	volcanos, quakes := e1Relations(t)
	for name, plan := range map[string]*relational.PlanNode{
		"nested": relational.NestedPlan(volcanos, quakes),
		"merge":  relational.MergePlan(volcanos, quakes),
	} {
		if issues := planlint.VerifyRelational(plan); len(issues) != 0 {
			t.Errorf("%s: %v", name, planlint.Error(issues))
		}
		if w := plan.Width(); w != 1 {
			t.Errorf("%s: plan width = %d, want 1 (the projected name)", name, w)
		}
	}
}

func TestVerifyRelationalViolations(t *testing.T) {
	volcanos, quakes := e1Relations(t)
	scanV := func() *relational.PlanNode {
		return &relational.PlanNode{Op: "scan", Rel: volcanos, EstTuples: 3}
	}

	// rel/arity: wrong child counts, missing/misplaced relations,
	// unknown operators.
	wantInvariant(t, planlint.VerifyRelational(nil), "rel/arity", "nil plan root")
	wantInvariant(t, planlint.VerifyRelational(&relational.PlanNode{Op: "frobnicate"}),
		"rel/arity", "unknown operator")
	wantInvariant(t, planlint.VerifyRelational(&relational.PlanNode{Op: "select"}),
		"rel/arity", "has 0 children, want 1")
	wantInvariant(t, planlint.VerifyRelational(&relational.PlanNode{Op: "scan"}),
		"rel/arity", "scan without a relation")
	wantInvariant(t, planlint.VerifyRelational(&relational.PlanNode{
		Op: "select", Rel: quakes, EstTuples: 1, Children: []*relational.PlanNode{scanV()},
	}), "rel/arity", "non-scan operator carries a relation")

	// rel/schema: projection columns out of range, missing columns.
	wantInvariant(t, planlint.VerifyRelational(&relational.PlanNode{
		Op: "project", Cols: []int{5}, EstTuples: 3, Children: []*relational.PlanNode{scanV()},
	}), "rel/schema", "projection column 5 outside input width 2")
	wantInvariant(t, planlint.VerifyRelational(&relational.PlanNode{
		Op: "project", EstTuples: 3, Children: []*relational.PlanNode{scanV()},
	}), "rel/schema", "no output columns")

	// rel/cardinality: scans must state the exact cardinality, unary
	// operators cannot amplify, estimates must be finite.
	wantInvariant(t, planlint.VerifyRelational(&relational.PlanNode{
		Op: "scan", Rel: volcanos, EstTuples: 99,
	}), "rel/cardinality", "relation holds 3")
	wantInvariant(t, planlint.VerifyRelational(&relational.PlanNode{
		Op: "select", EstTuples: 10, Children: []*relational.PlanNode{scanV()},
	}), "rel/cardinality", "estimates 10 output tuples from 3")
	wantInvariant(t, planlint.VerifyRelational(&relational.PlanNode{
		Op: "aggregate", EstTuples: 2, Children: []*relational.PlanNode{scanV()},
	}), "rel/cardinality", "scalar aggregate")
	wantInvariant(t, planlint.VerifyRelational(&relational.PlanNode{
		Op: "scan", Rel: volcanos, EstTuples: math.NaN(),
	}), "rel/cardinality", "not finite")
}
