package planlint

import (
	"repro/internal/algebra"
	"repro/internal/canon"
	"repro/internal/expr"
	"repro/internal/matview"
	"repro/internal/seq"
)

// VerifyMatviews re-derives the correctness of every materialized-view
// substitution the optimizer performed (the matview/* invariant family;
// see docs/INVARIANTS.md):
//
//   - matview/span-covers (§3.2): the view's valid span covers the
//     access span the block is evaluated over, so every position the
//     query needs is stored.
//   - matview/residual-scope (Prop. 2.1): the residual operators layered
//     on the view scan — a conjunct filter and a column permutation —
//     are unit-scope, so the substitution cannot change the block's
//     scope properties.
//   - matview/canonical-equal (§3.4–3.5): rebuilding the block as
//     residual-select + permutation over the view's registered block and
//     canonicalizing yields exactly the replaced block's canonical form
//     (same key, same column map) — the substitution computes the same
//     sequence, independently of how the optimizer matched it.
func VerifyMatviews(subs []*matview.Substitution) []Issue {
	c := &checker{}
	for _, s := range subs {
		verifyMatview(c, s)
	}
	return c.issues
}

func verifyMatview(c *checker, s *matview.Substitution) {
	if s == nil || s.View == nil || s.Block == nil {
		c.report("matview/canonical-equal", "§3.4", nil, "incomplete substitution record")
		return
	}

	// A full substitution's view span must cover the whole access span; a
	// partial one (Covered a proper prefix of Need) must cover exactly the
	// prefix it claims — the plan recomputes the rest, which needs no view
	// guarantee. A zero-value Covered is a record from before partial
	// matching existed and means "all of Need".
	served := s.Covered
	if served == (seq.Span{}) {
		served = s.Need
	}
	if served != s.Need {
		if served.IsEmpty() || served.Start != s.Need.Start || served.End >= s.Need.End {
			c.report("matview/span-covers", "§3.2", s.Block,
				"partial substitution's covered span %v is not a proper prefix of the access span %v",
				served, s.Need)
		}
	}
	if !served.IsEmpty() && s.View.Span.Intersect(served) != served {
		c.report("matview/span-covers", "§3.2", s.Block,
			"view %q span %v does not cover the served span %v (access span %v)",
			s.View.Name, s.View.Span, served, s.Need)
	}

	arity := s.Block.Schema.NumFields()
	stored := s.View.Node.Schema.NumFields()
	if len(s.ColMap) != arity || !isPermutation(s.ColMap, stored) {
		c.report("matview/canonical-equal", "§3.4", s.Block,
			"substitution column map %v is not a permutation of the view's %d stored columns onto the block's %d outputs",
			s.ColMap, stored, arity)
		return
	}

	// Rebuild the block the substituted plan computes: the view's
	// registered block, the residual filter (residual conjuncts live in
	// the stored column space, which is the registered block's output
	// space), and the column permutation restoring block column order.
	reconstructed := s.View.Node
	if len(s.Residual) > 0 {
		pred, err := conjoinExprs(s.Residual)
		if err != nil {
			c.report("matview/residual-scope", "Prop. 2.1", s.Block, "residual conjuncts do not conjoin: %v", err)
			return
		}
		sel, err := algebra.Select(reconstructed, pred)
		if err != nil {
			c.report("matview/residual-scope", "Prop. 2.1", s.Block,
				"residual filter is not a valid selection over the view's stored schema: %v", err)
			return
		}
		reconstructed = sel
	}
	items := make([]algebra.ProjItem, arity)
	for i := 0; i < arity; i++ {
		col, err := expr.ColAt(reconstructed.Schema, s.ColMap[i])
		if err != nil {
			c.report("matview/canonical-equal", "§3.4", s.Block, "column map entry %d: %v", s.ColMap[i], err)
			return
		}
		items[i] = algebra.ProjItem{Expr: col, Name: s.Block.Schema.Field(i).Name}
	}
	proj, err := algebra.Project(reconstructed, items)
	if err != nil {
		c.report("matview/canonical-equal", "§3.4", s.Block, "restoring projection is invalid: %v", err)
		return
	}

	// The residual chain must not widen scope: every operator layered on
	// the view scan has to be unit-scope (Prop. 2.1 composition would
	// otherwise change the block's effective scope).
	for n := proj; n != s.View.Node; n = n.Inputs[0] {
		if n.NonUnitScope() {
			c.report("matview/residual-scope", "Prop. 2.1", n, "residual operator %s is not unit-scope", n.Kind)
			return
		}
	}

	want, err := canon.Canonicalize(s.Block)
	if err != nil {
		c.report("matview/canonical-equal", "§3.4", s.Block, "block does not canonicalize: %v", err)
		return
	}
	got, err := canon.Canonicalize(proj)
	if err != nil {
		c.report("matview/canonical-equal", "§3.4", s.Block, "reconstructed block does not canonicalize: %v", err)
		return
	}
	if got.Key != want.Key {
		c.report("matview/canonical-equal", "§3.4", s.Block,
			"view %q plus residual computes a different block\nblock key:         %q\nreconstructed key: %q",
			s.View.Name, want.Key, got.Key)
		return
	}
	for i := range want.ColMap {
		if got.ColMap[i] != want.ColMap[i] {
			c.report("matview/canonical-equal", "§3.4", s.Block,
				"view %q plus residual permutes columns differently: block %v, reconstructed %v",
				s.View.Name, want.ColMap, got.ColMap)
			return
		}
	}
}

func isPermutation(m []int, n int) bool {
	if len(m) != n {
		return false
	}
	seen := make([]bool, n)
	for _, j := range m {
		if j < 0 || j >= n || seen[j] {
			return false
		}
		seen[j] = true
	}
	return true
}

func conjoinExprs(conjs []expr.Expr) (expr.Expr, error) {
	var acc expr.Expr
	for _, e := range conjs {
		var err error
		if acc, err = expr.And(acc, e); err != nil {
			return nil, err
		}
	}
	return acc, nil
}
