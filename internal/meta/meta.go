// Package meta implements Step 2 of the optimization algorithm (§4): the
// propagation of meta-information through the query graph.
//
// The bottom-up pass (Step 2.a) derives, for every node, the span (valid
// range) and density of its output sequence from those of its inputs,
// along with column statistics for selectivity estimation. The top-down
// pass (Step 2.b) then narrows the *access span* of every node — the
// range of positions that actually needs to be computed — starting from
// the range the query requests at the root. This is the bidirectional
// span propagation of §3.2 (Figure 3): composing sequences with
// overlapping valid ranges restricts every base-sequence access to the
// intersection window.
package meta

import (
	"fmt"
	"math"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

// NodeMeta is the meta-information attached to one operator's output.
type NodeMeta struct {
	// Span is the bottom-up valid range: outside it the output is Null.
	Span seq.Span
	// Density estimates the fraction of non-Null positions within Span.
	Density float64
	// ColStats maps output attribute index to value statistics.
	ColStats map[int]expr.ColStats
	// AccessSpan is the top-down restricted range that must actually be
	// computed to answer the query. It is always contained in Span
	// intersected with the requested range's reach.
	AccessSpan seq.Span
}

// ExpectedRecords estimates the number of non-Null records inside the
// access span.
func (m *NodeMeta) ExpectedRecords() float64 {
	n := m.AccessSpan.Len()
	if n <= 0 {
		return 0
	}
	if !m.AccessSpan.Bounded() {
		return math.Inf(1)
	}
	return m.Density * float64(n)
}

// Annotation carries the per-node meta-information of a query graph.
type Annotation struct {
	ByNode    map[*algebra.Node]*NodeMeta
	Requested seq.Span
	// Universe is the bounded range answers within the requested span
	// can depend on: the hull of base spans and the requested range,
	// grown by the query's offset reach. Access spans are clamped to it,
	// which keeps every physical scan and probe walk bounded even for
	// operators whose logical spans are unbounded (value offsets,
	// constants).
	Universe seq.Span

	// overrides substitutes observed densities for the derived estimates
	// at specific nodes (AnnotateWithOverrides): the reoptimization layer
	// feeds runtime observations back into Step 2 when replanning the
	// remaining span.
	overrides map[*algebra.Node]float64
}

// Get returns the meta for a node (nil if the node is not part of the
// annotated graph).
func (a *Annotation) Get(n *algebra.Node) *NodeMeta { return a.ByNode[n] }

// Annotate runs both propagation passes over the query tree for the
// requested output range and returns the resulting annotation.
func Annotate(root *algebra.Node, requested seq.Span) (*Annotation, error) {
	return AnnotateWithOverrides(root, requested, nil)
}

// AnnotateWithOverrides is Annotate with observed densities substituted
// for the derived estimates at the given nodes (§4 Step 2.a with
// runtime feedback). An override replaces the node's bottom-up density
// before its parent consumes it, so the substitution propagates upward
// through the usual derivation; spans are unaffected. Nil or empty
// overrides reduce to Annotate.
func AnnotateWithOverrides(root *algebra.Node, requested seq.Span, overrides map[*algebra.Node]float64) (*Annotation, error) {
	return annotateUniverse(root, requested, algebra.Universe(root, requested), overrides)
}

// AnnotateSubSpan annotates root for a sub-range of an earlier request
// while keeping that request's universe. The universe is part of the
// query's semantics — degenerate operators (value offsets over constant
// sequences) are confined to it — so a mid-run replan of the remaining
// span must reuse the original universe, or the spliced plan would
// compute a different function than the plan it replaces.
func AnnotateSubSpan(root *algebra.Node, requested, universe seq.Span, overrides map[*algebra.Node]float64) (*Annotation, error) {
	return annotateUniverse(root, requested, universe, overrides)
}

func annotateUniverse(root *algebra.Node, requested, universe seq.Span, overrides map[*algebra.Node]float64) (*Annotation, error) {
	a := &Annotation{
		ByNode:    make(map[*algebra.Node]*NodeMeta),
		Requested: requested,
		Universe:  universe,
		overrides: overrides,
	}
	if _, err := a.bottomUp(root); err != nil {
		return nil, err
	}
	rootMeta := a.ByNode[root]
	rootMeta.AccessSpan = rootMeta.Span.Intersect(requested).ClampUnboundedTo(universe)
	if err := a.topDown(root); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Annotation) bottomUp(n *algebra.Node) (*NodeMeta, error) {
	var ins []*NodeMeta
	for _, in := range n.Inputs {
		m, err := a.bottomUp(in)
		if err != nil {
			return nil, err
		}
		ins = append(ins, m)
	}
	m, err := deriveMeta(n, ins)
	if err != nil {
		return nil, err
	}
	if d, ok := a.overrides[n]; ok {
		m.Density = clamp01(d)
	}
	a.ByNode[n] = m
	return m, nil
}

func deriveMeta(n *algebra.Node, ins []*NodeMeta) (*NodeMeta, error) {
	switch n.Kind {
	case algebra.KindBase:
		info := n.Seq.Info()
		stats := n.BaseStats
		if stats == nil {
			stats = map[int]expr.ColStats{}
		}
		return &NodeMeta{Span: info.Span, Density: info.Density, ColStats: stats}, nil

	case algebra.KindConst:
		return &NodeMeta{Span: seq.AllSpan, Density: 1, ColStats: map[int]expr.ColStats{}}, nil

	case algebra.KindSelect:
		in := ins[0]
		sel := expr.Selectivity(n.Pred, in.ColStats)
		return &NodeMeta{Span: in.Span, Density: in.Density * sel, ColStats: in.ColStats}, nil

	case algebra.KindProject:
		in := ins[0]
		stats := make(map[int]expr.ColStats)
		for i, it := range n.Items {
			if c, ok := it.Expr.(*expr.Col); ok {
				if st, have := in.ColStats[c.Index]; have {
					stats[i] = st
				}
			}
		}
		return &NodeMeta{Span: in.Span, Density: in.Density, ColStats: stats}, nil

	case algebra.KindPosOffset:
		in := ins[0]
		// out(i) = in(i+l): a record at input position j surfaces at
		// output position j-l.
		return &NodeMeta{Span: in.Span.Shift(-n.Offset), Density: in.Density, ColStats: in.ColStats}, nil

	case algebra.KindValueOffset:
		in := ins[0]
		m := &NodeMeta{ColStats: in.ColStats}
		if in.Span.IsEmpty() {
			m.Span = seq.EmptySpan
			return m, nil
		}
		k := n.Offset
		if k < 0 {
			// Defined from just after the |k|-th record onward, forever.
			start := in.Span.Start
			if start > seq.MinPos {
				start = seq.ClampPos(start + (-k))
			}
			m.Span = seq.Span{Start: start, End: seq.MaxPos}
		} else {
			end := in.Span.End
			if end < seq.MaxPos {
				end = seq.ClampPos(end - k)
			}
			m.Span = seq.Span{Start: seq.MinPos, End: end}
		}
		// Once enough records exist, every position maps to one: the
		// output is dense within its span (up to edge effects).
		m.Density = 1
		if in.Density == 0 {
			m.Density = 0
		}
		return m, nil

	case algebra.KindAgg:
		in := ins[0]
		w := n.Agg.Window
		m := &NodeMeta{ColStats: map[int]expr.ColStats{}}
		if in.Span.IsEmpty() {
			m.Span = seq.EmptySpan
			return m, nil
		}
		// Non-Null at i iff some input record lies in [i+Lo, i+Hi]:
		// span = [inStart-Hi, inEnd-Lo], unbounded sides saturating.
		start, end := seq.MinPos, seq.MaxPos
		if !w.HiUnbounded && in.Span.Start > seq.MinPos {
			start = seq.ClampPos(in.Span.Start - w.Hi)
		}
		if !w.LoUnbounded && in.Span.End < seq.MaxPos {
			end = seq.ClampPos(in.Span.End - w.Lo)
		}
		if w.HiUnbounded {
			start = seq.MinPos
		}
		if w.LoUnbounded {
			end = seq.MaxPos
		}
		m.Span = seq.Span{Start: start, End: end}
		if size, fixed := w.Size(); fixed {
			// P(window non-empty) = 1 - (1-d)^w under independence.
			m.Density = 1 - math.Pow(1-clamp01(in.Density), float64(size))
		} else {
			m.Density = 1
			if in.Density == 0 {
				m.Density = 0
			}
		}
		return m, nil

	case algebra.KindCollapse:
		in := ins[0]
		m := &NodeMeta{ColStats: map[int]expr.ColStats{}}
		if in.Span.IsEmpty() {
			m.Span = seq.EmptySpan
			return m, nil
		}
		k := n.Factor
		start, end := seq.MinPos, seq.MaxPos
		if in.Span.Start > seq.MinPos {
			start = algebra.FloorDiv(in.Span.Start, k)
		}
		if in.Span.End < seq.MaxPos {
			end = algebra.FloorDiv(in.Span.End, k)
		}
		m.Span = seq.Span{Start: start, End: end}
		m.Density = 1 - math.Pow(1-clamp01(in.Density), float64(k))
		return m, nil

	case algebra.KindExpand:
		in := ins[0]
		m := &NodeMeta{ColStats: in.ColStats, Density: in.Density}
		if in.Span.IsEmpty() {
			m.Span = seq.EmptySpan
			return m, nil
		}
		k := n.Factor
		start, end := seq.MinPos, seq.MaxPos
		if in.Span.Start > seq.MinPos {
			start = seq.ClampPos(in.Span.Start * k)
		}
		if in.Span.End < seq.MaxPos {
			end = seq.ClampPos(in.Span.End*k + k - 1)
		}
		m.Span = seq.Span{Start: start, End: end}
		return m, nil

	case algebra.KindCompose:
		l, r := ins[0], ins[1]
		span := l.Span.Intersect(r.Span)
		sel := 1.0
		if n.Pred != nil {
			stats := concatStats(n, l, r)
			sel = expr.Selectivity(n.Pred, stats)
		}
		// Independence assumption on the Null positions of the inputs
		// (§4, Step 2.a mentions correlation; we expose the knob through
		// the stats maps in a future extension).
		return &NodeMeta{
			Span:     span,
			Density:  l.Density * r.Density * sel,
			ColStats: concatStats(n, l, r),
		}, nil

	default:
		return nil, fmt.Errorf("meta: unknown node kind %v", n.Kind)
	}
}

func concatStats(n *algebra.Node, l, r *NodeMeta) map[int]expr.ColStats {
	stats := make(map[int]expr.ColStats, len(l.ColStats)+len(r.ColStats))
	leftArity := n.Inputs[0].Schema.NumFields()
	for i, st := range l.ColStats {
		stats[i] = st
	}
	for i, st := range r.ColStats {
		stats[leftArity+i] = st
	}
	return stats
}

// topDown narrows the access spans of n's inputs from n's own access
// span (Step 2.b), then recurses.
func (a *Annotation) topDown(n *algebra.Node) error {
	m := a.ByNode[n]
	for idx, in := range n.Inputs {
		childMeta := a.ByNode[in]
		need, err := inputAccessSpan(n, idx, m.AccessSpan, childMeta.Span)
		if err != nil {
			return err
		}
		childMeta.AccessSpan = need.Intersect(childMeta.Span).ClampUnboundedTo(a.Universe)
		if err := a.topDown(in); err != nil {
			return err
		}
	}
	return nil
}

// inputAccessSpan computes the range of input positions operator n must
// read from input idx to produce its output over access.
func inputAccessSpan(n *algebra.Node, idx int, access, childSpan seq.Span) (seq.Span, error) {
	if access.IsEmpty() {
		return seq.EmptySpan, nil
	}
	switch n.Kind {
	case algebra.KindBase, algebra.KindConst:
		return seq.EmptySpan, fmt.Errorf("meta: %s is a leaf and has no input %d", n.Kind, idx)

	case algebra.KindSelect, algebra.KindProject, algebra.KindCompose:
		return access, nil

	case algebra.KindPosOffset:
		return access.Shift(n.Offset), nil

	case algebra.KindValueOffset:
		if n.Offset < 0 {
			// Need records strictly before access.End; how far back is
			// data-dependent, so fall back to the input's own span start.
			end := access.End
			if end < seq.MaxPos {
				end--
			}
			return seq.Span{Start: childSpan.Start, End: end}, nil
		}
		start := access.Start
		if start > seq.MinPos {
			start++
		}
		return seq.Span{Start: start, End: childSpan.End}, nil

	case algebra.KindAgg:
		w := n.Agg.Window
		start, end := seq.MinPos, seq.MaxPos
		if !w.LoUnbounded && access.Start > seq.MinPos {
			start = seq.ClampPos(access.Start + w.Lo)
		}
		if !w.HiUnbounded && access.End < seq.MaxPos {
			end = seq.ClampPos(access.End + w.Hi)
		}
		if w.LoUnbounded {
			start = childSpan.Start
		}
		if w.HiUnbounded {
			end = childSpan.End
		}
		return seq.Span{Start: start, End: end}, nil

	case algebra.KindCollapse:
		k := n.Factor
		start, end := seq.MinPos, seq.MaxPos
		if access.Start > seq.MinPos {
			start = seq.ClampPos(access.Start * k)
		}
		if access.End < seq.MaxPos {
			end = seq.ClampPos(access.End*k + k - 1)
		}
		return seq.Span{Start: start, End: end}, nil

	case algebra.KindExpand:
		k := n.Factor
		start, end := seq.MinPos, seq.MaxPos
		if access.Start > seq.MinPos {
			start = algebra.FloorDiv(access.Start, k)
		}
		if access.End < seq.MaxPos {
			end = algebra.FloorDiv(access.End, k)
		}
		return seq.Span{Start: start, End: end}, nil

	default:
		return seq.EmptySpan, fmt.Errorf("meta: node kind %v has no input %d", n.Kind, idx)
	}
}

// StatsFromMaterialized computes column statistics by scanning a
// materialized sequence once; used when base sequences are registered.
func StatsFromMaterialized(m *seq.Materialized) map[int]expr.ColStats {
	schema := m.Info().Schema
	out := make(map[int]expr.ColStats)
	type acc struct {
		min, max float64
		distinct map[float64]struct{}
		any      bool
	}
	accs := make([]acc, schema.NumFields())
	for i := range accs {
		accs[i].distinct = make(map[float64]struct{})
	}
	for _, e := range m.Entries() {
		for i := 0; i < schema.NumFields(); i++ {
			if !schema.Field(i).Type.Numeric() {
				continue
			}
			v := e.Rec[i].AsFloat()
			a := &accs[i]
			if !a.any {
				a.min, a.max, a.any = v, v, true
			} else {
				if v < a.min {
					a.min = v
				}
				if v > a.max {
					a.max = v
				}
			}
			if len(a.distinct) < 10000 {
				a.distinct[v] = struct{}{}
			}
		}
	}
	for i := range accs {
		if accs[i].any {
			out[i] = expr.ColStats{
				Known:    true,
				Min:      accs[i].min,
				Max:      accs[i].max,
				Distinct: int64(len(accs[i].distinct)),
			}
		}
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
