package meta

import (
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

var closeSchema = seq.MustSchema(seq.Field{Name: "close", Type: seq.TFloat})

// stock builds a base node whose span and density mimic Table 1.
func stock(t *testing.T, name string, start, end seq.Pos, density float64) *algebra.Node {
	t.Helper()
	span := seq.NewSpan(start, end)
	n := span.Len()
	count := int64(density * float64(n))
	var es []seq.Entry
	// Spread `count` records evenly over the span.
	for k := int64(0); k < count; k++ {
		p := start + k*n/count
		es = append(es, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p))}})
	}
	m := seq.MustMaterialized(closeSchema, es)
	m2, err := m.WithSpan(span)
	if err != nil {
		t.Fatal(err)
	}
	return algebra.Base(name, m2)
}

func annotate(t *testing.T, root *algebra.Node, span seq.Span) *Annotation {
	t.Helper()
	a, err := Annotate(root, span)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// Figure 3: composing DEC with (IBM x HP) restricts every base access to
// the intersection [200, 350].
func TestFigure3SpanRestriction(t *testing.T) {
	dec := stock(t, "dec", 1, 350, 0.7)
	ibm := stock(t, "ibm", 200, 500, 0.95)
	hp := stock(t, "hp", 1, 750, 1.0)

	schema, _ := algebra.ComposeSchema(ibm, hp, "ibm", "hp")
	ic, _ := expr.NewCol(schema, "ibm.close")
	hc, _ := expr.NewCol(schema, "hp.close")
	pred, _ := expr.NewBin(expr.OpGt, ic, hc)
	ibmHp, err := algebra.Compose(ibm, hp, pred, "ibm", "hp")
	if err != nil {
		t.Fatal(err)
	}
	q, err := algebra.Compose(dec, ibmHp, nil, "dec", "")
	if err != nil {
		t.Fatal(err)
	}

	a := annotate(t, q, seq.AllSpan)
	want := seq.NewSpan(200, 350)
	if got := a.Get(q).Span; got != want {
		t.Errorf("root span = %v, want %v", got, want)
	}
	for _, b := range []*algebra.Node{dec, ibm, hp} {
		if got := a.Get(b).AccessSpan; got != want {
			t.Errorf("%s access span = %v, want %v", b.Name, got, want)
		}
	}
	// A narrower requested range narrows further.
	a = annotate(t, q, seq.NewSpan(300, 320))
	for _, b := range []*algebra.Node{dec, ibm, hp} {
		if got := a.Get(b).AccessSpan; got != seq.NewSpan(300, 320) {
			t.Errorf("%s access span = %v, want [300, 320]", b.Name, got)
		}
	}
}

func TestSelectDensity(t *testing.T) {
	ibm := stock(t, "ibm", 1, 100, 1.0)
	c, _ := expr.NewCol(ibm.Schema, "close")
	pred, _ := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(50)))
	sel, _ := algebra.Select(ibm, pred)
	a := annotate(t, sel, seq.AllSpan)
	m := a.Get(sel)
	if m.Span != seq.NewSpan(1, 100) {
		t.Errorf("span = %v", m.Span)
	}
	// Without stats the default range selectivity (1/3) applies.
	if got := m.Density; math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("density = %g, want 1/3", got)
	}
	// With stats, the uniform estimate applies.
	stats := map[int]expr.ColStats{0: {Known: true, Min: 0, Max: 100, Distinct: 100}}
	ibm2 := algebra.BaseWithStats("ibm", ibm.Seq, stats)
	sel2, _ := algebra.Select(ibm2, pred)
	a = annotate(t, sel2, seq.AllSpan)
	if got := a.Get(sel2).Density; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("density with stats = %g, want 0.5", got)
	}
}

func TestPosOffsetMeta(t *testing.T) {
	ibm := stock(t, "ibm", 100, 200, 0.8)
	o, _ := algebra.PosOffset(ibm, 10) // out(i) = in(i+10)
	a := annotate(t, o, seq.AllSpan)
	m := a.Get(o)
	if m.Span != seq.NewSpan(90, 190) {
		t.Errorf("span = %v, want [90, 190]", m.Span)
	}
	if math.Abs(m.Density-0.8) > 0.05 {
		t.Errorf("density = %g", m.Density)
	}
	// Top-down: asking for output [100, 120] needs input [110, 130].
	a = annotate(t, o, seq.NewSpan(100, 120))
	if got := a.Get(ibm).AccessSpan; got != seq.NewSpan(110, 130) {
		t.Errorf("input access = %v, want [110, 130]", got)
	}
}

func TestValueOffsetMeta(t *testing.T) {
	ibm := stock(t, "ibm", 100, 200, 1.0)
	prev, _ := algebra.Previous(ibm)
	a := annotate(t, prev, seq.NewSpan(1, 1000))
	m := a.Get(prev)
	if m.Span.Start != 101 || m.Span.End != seq.MaxPos {
		t.Errorf("previous span = %v, want [101, +inf)", m.Span)
	}
	if m.Density != 1 {
		t.Errorf("previous density = %g, want 1", m.Density)
	}
	if got := m.AccessSpan; got != seq.NewSpan(101, 1000) {
		t.Errorf("access span = %v, want [101, 1000]", got)
	}
	// The input must be readable up to access.End-1.
	if got := a.Get(ibm).AccessSpan; got != seq.NewSpan(100, 200) {
		t.Errorf("input access = %v, want full input span", got)
	}
	next, _ := algebra.Next(ibm)
	a = annotate(t, next, seq.NewSpan(1, 1000))
	if got := a.Get(next).Span; got.Start != seq.MinPos || got.End != 199 {
		t.Errorf("next span = %v, want (-inf, 199]", got)
	}
}

func TestAggMeta(t *testing.T) {
	ibm := stock(t, "ibm", 100, 200, 0.5)
	sum, _ := algebra.AggCol(ibm, algebra.AggSum, "close", algebra.Trailing(6), "s6")
	a := annotate(t, sum, seq.AllSpan)
	m := a.Get(sum)
	// Span: [100-0, 200+5] = [100, 205].
	if m.Span != seq.NewSpan(100, 205) {
		t.Errorf("span = %v, want [100, 205]", m.Span)
	}
	want := 1 - math.Pow(0.5, 6)
	if math.Abs(m.Density-want) > 0.02 {
		t.Errorf("density = %g, want about %g", m.Density, want)
	}
	// Top-down: output [150, 160] needs input [145, 160].
	a = annotate(t, sum, seq.NewSpan(150, 160))
	if got := a.Get(ibm).AccessSpan; got != seq.NewSpan(145, 160) {
		t.Errorf("input access = %v, want [145, 160]", got)
	}
	// Cumulative: output span extends right unboundedly; input access
	// reaches back to the input's start.
	cum, _ := algebra.AggCol(ibm, algebra.AggSum, "close", algebra.Cumulative(), "run")
	a = annotate(t, cum, seq.NewSpan(150, 160))
	if got := a.Get(cum).Span; got.Start != 100 || got.End != seq.MaxPos {
		t.Errorf("cumulative span = %v", got)
	}
	if got := a.Get(ibm).AccessSpan; got != seq.NewSpan(100, 160) {
		t.Errorf("cumulative input access = %v, want [100, 160]", got)
	}
}

func TestComposeDensity(t *testing.T) {
	a1 := stock(t, "a", 1, 100, 0.5)
	b1 := stock(t, "b", 1, 100, 0.4)
	c, _ := algebra.Compose(a1, b1, nil, "a", "b")
	a := annotate(t, c, seq.AllSpan)
	if got := a.Get(c).Density; math.Abs(got-0.2) > 0.05 {
		t.Errorf("compose density = %g, want 0.2", got)
	}
}

func TestConstMeta(t *testing.T) {
	k, _ := algebra.Const(closeSchema, seq.Record{seq.Float(5)})
	ibm := stock(t, "ibm", 1, 50, 1.0)
	c, _ := algebra.Compose(ibm, k, nil, "i", "k")
	a := annotate(t, c, seq.AllSpan)
	if got := a.Get(c).Span; got != seq.NewSpan(1, 50) {
		t.Errorf("span = %v (constant must not widen)", got)
	}
	if got := a.Get(k).AccessSpan; got != seq.NewSpan(1, 50) {
		t.Errorf("constant access span = %v", got)
	}
}

func TestProjectStatsRemap(t *testing.T) {
	two := seq.MustSchema(
		seq.Field{Name: "a", Type: seq.TFloat},
		seq.Field{Name: "b", Type: seq.TFloat},
	)
	m := seq.MustMaterialized(two, []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Float(1), seq.Float(10)}},
	})
	base := algebra.BaseWithStats("s", m, map[int]expr.ColStats{
		0: {Known: true, Min: 0, Max: 1},
		1: {Known: true, Min: 0, Max: 10},
	})
	p, _ := algebra.ProjectCols(base, "b")
	a := annotate(t, p, seq.AllSpan)
	st := a.Get(p).ColStats
	if got, ok := st[0]; !ok || got.Max != 10 {
		t.Errorf("projected stats = %v", st)
	}
}

func TestExpectedRecords(t *testing.T) {
	ibm := stock(t, "ibm", 1, 100, 0.5)
	a := annotate(t, ibm, seq.AllSpan)
	if got := a.Get(ibm).ExpectedRecords(); math.Abs(got-50) > 2 {
		t.Errorf("expected records = %g, want about 50", got)
	}
	a = annotate(t, ibm, seq.EmptySpan)
	if got := a.Get(ibm).ExpectedRecords(); got != 0 {
		t.Errorf("empty access expected records = %g", got)
	}
}

func TestStatsFromMaterialized(t *testing.T) {
	two := seq.MustSchema(
		seq.Field{Name: "v", Type: seq.TFloat},
		seq.Field{Name: "s", Type: seq.TString},
	)
	m := seq.MustMaterialized(two, []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Float(3), seq.Str("x")}},
		{Pos: 2, Rec: seq.Record{seq.Float(7), seq.Str("y")}},
		{Pos: 3, Rec: seq.Record{seq.Float(3), seq.Str("z")}},
	})
	st := StatsFromMaterialized(m)
	got, ok := st[0]
	if !ok || got.Min != 3 || got.Max != 7 || got.Distinct != 2 {
		t.Errorf("stats = %+v", got)
	}
	if _, ok := st[1]; ok {
		t.Error("string column must have no numeric stats")
	}
}

func TestEmptySpans(t *testing.T) {
	empty := algebra.Base("empty", seq.MustMaterialized(closeSchema, nil))
	prev, _ := algebra.Previous(empty)
	a := annotate(t, prev, seq.AllSpan)
	if !a.Get(prev).Span.IsEmpty() {
		t.Error("previous of empty must be empty")
	}
	sum, _ := algebra.AggCol(empty, algebra.AggSum, "close", algebra.Trailing(3), "")
	a = annotate(t, sum, seq.AllSpan)
	if !a.Get(sum).Span.IsEmpty() {
		t.Error("agg of empty must be empty")
	}
	// Disjoint compose: children get empty access spans.
	l := stock(t, "l", 1, 10, 1)
	r := stock(t, "r", 50, 60, 1)
	c, _ := algebra.Compose(l, r, nil, "l", "r")
	a = annotate(t, c, seq.AllSpan)
	if !a.Get(l).AccessSpan.IsEmpty() || !a.Get(r).AccessSpan.IsEmpty() {
		t.Error("disjoint compose must empty the children's access spans")
	}
}

func TestCollapseExpandMeta(t *testing.T) {
	daily := stock(t, "daily", 0, 69, 1.0) // 70 days = 10 weeks
	weekly, err := algebra.Collapse(daily, 7, algebra.AggSpec{Func: algebra.AggAvg, Arg: 0, As: "w"})
	if err != nil {
		t.Fatal(err)
	}
	a := annotate(t, weekly, seq.AllSpan)
	m := a.Get(weekly)
	if m.Span != seq.NewSpan(0, 9) {
		t.Errorf("weekly span = %v, want [0, 9]", m.Span)
	}
	if m.Density < 0.99 {
		t.Errorf("weekly density = %g, want ~1", m.Density)
	}
	// Top-down: asking for weeks [2, 4] needs days [14, 34].
	a = annotate(t, weekly, seq.NewSpan(2, 4))
	if got := a.Get(daily).AccessSpan; got != seq.NewSpan(14, 34) {
		t.Errorf("daily access = %v, want [14, 34]", got)
	}

	back, err := algebra.Expand(weekly, 7)
	if err != nil {
		t.Fatal(err)
	}
	a = annotate(t, back, seq.AllSpan)
	if got := a.Get(back).Span; got != seq.NewSpan(0, 69) {
		t.Errorf("expanded span = %v, want [0, 69]", got)
	}
	// Requesting days [10, 20] of the expansion needs weeks [1, 2],
	// hence days [7, 20] of the daily input.
	a = annotate(t, back, seq.NewSpan(10, 20))
	if got := a.Get(weekly).AccessSpan; got != seq.NewSpan(1, 2) {
		t.Errorf("weekly access = %v, want [1, 2]", got)
	}
	if got := a.Get(daily).AccessSpan; got != seq.NewSpan(7, 20) {
		t.Errorf("daily access = %v, want [7, 20]", got)
	}
}
