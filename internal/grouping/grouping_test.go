package grouping

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
	"repro/internal/workload"
)

var valSchema = seq.MustSchema(seq.Field{Name: "v", Type: seq.TFloat})

func mkMember(t *testing.T, pairs map[seq.Pos]float64) *seq.Materialized {
	t.Helper()
	es := make([]seq.Entry, 0, len(pairs))
	for p, v := range pairs {
		es = append(es, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(v)}})
	}
	return seq.MustMaterialized(valSchema, es)
}

func testGrouping(t *testing.T) *Grouping {
	t.Helper()
	g := New(valSchema)
	if err := g.Add("run-a", mkMember(t, map[seq.Pos]float64{1: 5, 2: 9, 3: 4})); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("run-b", mkMember(t, map[seq.Pos]float64{1: 2, 2: 3})); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("run-c", mkMember(t, map[seq.Pos]float64{2: 8, 5: 11})); err != nil {
		t.Fatal(err)
	}
	return g
}

// exceeds builds the template "records with v > limit".
func exceeds(limit float64) Template {
	return func(member *algebra.Node) (*algebra.Node, error) {
		c, err := expr.NewCol(member.Schema, "v")
		if err != nil {
			return nil, err
		}
		pred, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(limit)))
		if err != nil {
			return nil, err
		}
		return algebra.Select(member, pred)
	}
}

func TestAddValidation(t *testing.T) {
	g := New(valSchema)
	if err := g.Add("", nil); err == nil {
		t.Error("empty name must fail")
	}
	if err := g.Add("x", mkMember(t, map[seq.Pos]float64{1: 1})); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("x", mkMember(t, map[seq.Pos]float64{1: 1})); err == nil {
		t.Error("duplicate must fail")
	}
	other := seq.MustSchema(seq.Field{Name: "w", Type: seq.TInt})
	bad := seq.MustMaterialized(other, nil)
	if err := g.Add("y", bad); err == nil {
		t.Error("schema mismatch must fail")
	}
	if !g.Schema().Equal(valSchema) {
		t.Error("schema accessor wrong")
	}
}

func TestWhere(t *testing.T) {
	g := testGrouping(t)
	// Which runs ever exceed 7?
	names, err := g.Where(exceeds(7), seq.NewSpan(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "run-a" || names[1] != "run-c" {
		t.Errorf("Where = %v", names)
	}
	// Nobody exceeds 100.
	names, err = g.Where(exceeds(100), seq.NewSpan(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("Where = %v", names)
	}
}

func TestApply(t *testing.T) {
	g := testGrouping(t)
	results, err := g.Apply(exceeds(0), seq.NewSpan(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Name != "run-a" || results[0].Result.Count() != 3 {
		t.Errorf("run-a = %v", results[0])
	}
	if results[1].Name != "run-b" || results[1].Result.Count() != 2 {
		t.Errorf("run-b = %v", results[1])
	}
	// Errors propagate with member context.
	bad := func(*algebra.Node) (*algebra.Node, error) { return nil, errTest{} }
	if _, err := g.Apply(bad, seq.NewSpan(1, 10)); err == nil {
		t.Error("template error must propagate")
	}
}

type errTest struct{}

func (errTest) Error() string { return "boom" }

func TestAggregateEach(t *testing.T) {
	g := testGrouping(t)
	// Whole-run maximum per member.
	maxAll := func(member *algebra.Node) (*algebra.Node, error) {
		return algebra.AggCol(member, algebra.AggMax, "v", algebra.All(), "m")
	}
	got, err := g.AggregateEach(maxAll, seq.NewSpan(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got["run-a"].AsFloat() != 9 || got["run-b"].AsFloat() != 3 || got["run-c"].AsFloat() != 11 {
		t.Errorf("AggregateEach = %v", got)
	}
	// Multi-attribute templates are rejected.
	ident := func(member *algebra.Node) (*algebra.Node, error) { return member, nil }
	g2 := New(workload.StockSchema)
	data, err := workload.Stock(workload.StockConfig{Name: "s", Span: seq.NewSpan(1, 10), Density: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Add("s", data); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.AggregateEach(ident, seq.NewSpan(1, 10)); err == nil {
		t.Error("multi-attribute aggregate template must be rejected")
	}
}

// A realistic use: which experiment runs have a 3-sample moving average
// above threshold at any point (sensor drift detection).
func TestGroupingWithWindows(t *testing.T) {
	g := New(valSchema)
	for name, base := range map[string]float64{"stable": 10, "drifting": 10} {
		var es []seq.Entry
		v := base
		for p := seq.Pos(1); p <= 50; p++ {
			if name == "drifting" && p > 25 {
				v += 0.8
			}
			es = append(es, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(v)}})
		}
		if err := g.Add(name, seq.MustMaterialized(valSchema, es)); err != nil {
			t.Fatal(err)
		}
	}
	drifted := func(member *algebra.Node) (*algebra.Node, error) {
		avg, err := algebra.AggCol(member, algebra.AggAvg, "v", algebra.Trailing(3), "a")
		if err != nil {
			return nil, err
		}
		c, err := expr.NewCol(avg.Schema, "a")
		if err != nil {
			return nil, err
		}
		pred, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(15)))
		if err != nil {
			return nil, err
		}
		return algebra.Select(avg, pred)
	}
	names, err := g.Where(drifted, seq.NewSpan(1, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "drifting" {
		t.Errorf("Where = %v", names)
	}
}
