// Package grouping implements the sequence-groupings extension of §5.1:
// "in some situations, it might be desirable to collectively query a
// group of sequences of similar record type. For instance, given a
// database of experimental result sequences, a query might ask for those
// sequences that satisfy some condition."
//
// A Grouping is a named collection of sequences sharing one schema. A
// query template — a function from a member's base node to a query graph
// — is instantiated per member, optimized with the usual §4 pipeline,
// and evaluated; Where keeps the members whose instantiated query has
// any answer, Apply returns every member's full result.
package grouping

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/meta"
	"repro/internal/seq"
)

// Grouping is a collection of same-schema sequences.
type Grouping struct {
	schema  *seq.Schema
	members map[string]*algebra.Node
	opts    core.Options
}

// New creates an empty grouping over the given record schema.
func New(schema *seq.Schema) *Grouping {
	return &Grouping{schema: schema, members: make(map[string]*algebra.Node)}
}

// SetOptions sets the optimizer options used for member queries.
func (g *Grouping) SetOptions(opts core.Options) { g.opts = opts }

// Add registers a member sequence. Its schema must match the grouping's.
func (g *Grouping) Add(name string, data *seq.Materialized) error {
	if name == "" {
		return fmt.Errorf("grouping: empty member name")
	}
	if _, dup := g.members[name]; dup {
		return fmt.Errorf("grouping: member %q already exists", name)
	}
	if !data.Info().Schema.Equal(g.schema) {
		return fmt.Errorf("grouping: member %q schema %v does not match grouping schema %v",
			name, data.Info().Schema, g.schema)
	}
	g.members[name] = algebra.BaseWithStats(name, data, meta.StatsFromMaterialized(data))
	return nil
}

// Members lists the member names, sorted.
func (g *Grouping) Members() []string {
	out := make([]string, 0, len(g.members))
	for name := range g.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Schema returns the grouping's record schema.
func (g *Grouping) Schema() *seq.Schema { return g.schema }

// Template instantiates a query for one member: it receives the member's
// base node and returns the query graph to evaluate for that member.
type Template func(member *algebra.Node) (*algebra.Node, error)

// MemberResult is one member's evaluated query output.
type MemberResult struct {
	Name   string
	Result *seq.Materialized
}

// Apply instantiates and runs the template for every member over the
// span, returning results in member-name order.
func (g *Grouping) Apply(tmpl Template, span seq.Span) ([]MemberResult, error) {
	out := make([]MemberResult, 0, len(g.members))
	for _, name := range g.Members() {
		q, err := tmpl(g.members[name])
		if err != nil {
			return nil, fmt.Errorf("grouping: member %q: %w", name, err)
		}
		res, err := core.Optimize(q, span, g.opts)
		if err != nil {
			return nil, fmt.Errorf("grouping: member %q: %w", name, err)
		}
		m, err := res.Run()
		if err != nil {
			return nil, fmt.Errorf("grouping: member %q: %w", name, err)
		}
		out = append(out, MemberResult{Name: name, Result: m})
	}
	return out, nil
}

// Where returns the names of the members whose instantiated query
// produces at least one record in the span — the "which sequences
// satisfy some condition" query form.
func (g *Grouping) Where(tmpl Template, span seq.Span) ([]string, error) {
	results, err := g.Apply(tmpl, span)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, r := range results {
		if r.Result.Count() > 0 {
			out = append(out, r.Name)
		}
	}
	return out, nil
}

// AggregateEach instantiates the template per member and returns each
// member's single aggregate value (the template must produce a
// one-record result, e.g. a whole-sequence aggregate probed at one
// position). Members with empty results are skipped.
func (g *Grouping) AggregateEach(tmpl Template, span seq.Span) (map[string]seq.Value, error) {
	results, err := g.Apply(tmpl, span)
	if err != nil {
		return nil, err
	}
	out := make(map[string]seq.Value, len(results))
	for _, r := range results {
		entries := r.Result.Entries()
		if len(entries) == 0 {
			continue
		}
		last := entries[len(entries)-1]
		if len(last.Rec) != 1 {
			return nil, fmt.Errorf("grouping: member %q: aggregate template must produce single-attribute records, got %v",
				r.Name, last.Rec)
		}
		out[r.Name] = last.Rec[0]
	}
	return out, nil
}
