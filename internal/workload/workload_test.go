package workload

import (
	"math"
	"testing"

	"repro/internal/relational"
	"repro/internal/seq"
)

func TestStockBasics(t *testing.T) {
	m, err := Stock(StockConfig{Name: "x", Span: seq.NewSpan(1, 1000), Density: 0.8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	info := m.Info()
	if info.Span != seq.NewSpan(1, 1000) {
		t.Errorf("span = %v", info.Span)
	}
	if math.Abs(info.Density-0.8) > 0.05 {
		t.Errorf("density = %g, want about 0.8", info.Density)
	}
	for _, e := range m.Entries() {
		if e.Rec[1].AsFloat() < 1 {
			t.Fatalf("price below floor at %d: %v", e.Pos, e.Rec)
		}
		if v := e.Rec[2].AsInt(); v < 1000 || v > 10000 {
			t.Fatalf("volume out of range at %d: %v", e.Pos, e.Rec)
		}
	}
}

func TestStockDeterministic(t *testing.T) {
	cfg := StockConfig{Name: "x", Span: seq.NewSpan(1, 100), Density: 0.5, Seed: 42}
	a, _ := Stock(cfg)
	b, _ := Stock(cfg)
	if a.Count() != b.Count() {
		t.Fatal("same seed must give same data")
	}
	for i, e := range a.Entries() {
		if !e.Rec.Equal(b.Entries()[i].Rec) {
			t.Fatal("same seed must give same records")
		}
	}
}

func TestStockValidation(t *testing.T) {
	if _, err := Stock(StockConfig{Span: seq.AllSpan, Density: 0.5}); err == nil {
		t.Error("unbounded span must be rejected")
	}
	if _, err := Stock(StockConfig{Span: seq.NewSpan(1, 10), Density: 0}); err == nil {
		t.Error("zero density must be rejected")
	}
	if _, err := Stock(StockConfig{Span: seq.NewSpan(1, 10), Density: 1.5}); err == nil {
		t.Error("density > 1 must be rejected")
	}
}

func TestTable1(t *testing.T) {
	ibm, dec, hp, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if ibm.Info().Span != seq.NewSpan(200, 500) {
		t.Errorf("ibm span = %v", ibm.Info().Span)
	}
	if dec.Info().Span != seq.NewSpan(1, 350) {
		t.Errorf("dec span = %v", dec.Info().Span)
	}
	if hp.Info().Span != seq.NewSpan(1, 750) {
		t.Errorf("hp span = %v", hp.Info().Span)
	}
	if math.Abs(hp.Info().Density-1.0) > 0.001 {
		t.Errorf("hp density = %g, want 1.0", hp.Info().Density)
	}
	if math.Abs(dec.Info().Density-0.7) > 0.06 {
		t.Errorf("dec density = %g, want about 0.7", dec.Info().Density)
	}
	if _, _, _, err := Table1(0); err == nil {
		t.Error("zero scale must be rejected")
	}
	// Scaled spans.
	ibm10, _, _, err := Table1(10)
	if err != nil {
		t.Fatal(err)
	}
	if ibm10.Info().Span != seq.NewSpan(2000, 5000) {
		t.Errorf("scaled ibm span = %v", ibm10.Info().Span)
	}
}

func TestEvents(t *testing.T) {
	m, err := Events(seq.NewSpan(1, 2000), 0.1, []string{"a", "b"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Info().Density-0.1) > 0.03 {
		t.Errorf("density = %g, want about 0.1", m.Info().Density)
	}
	kinds := map[string]bool{}
	for _, e := range m.Entries() {
		kinds[e.Rec[0].AsStr()] = true
	}
	if !kinds["a"] || !kinds["b"] {
		t.Error("both kinds must appear")
	}
	if _, err := Events(seq.AllSpan, 0.1, nil, 0); err == nil {
		t.Error("unbounded span must be rejected")
	}
	if _, err := Events(seq.NewSpan(1, 10), 0, nil, 0); err == nil {
		t.Error("zero rate must be rejected")
	}
	// Default kind.
	m, err = Events(seq.NewSpan(1, 100), 0.5, nil, 1)
	if err != nil || m.Count() == 0 {
		t.Fatal("default kinds failed")
	}
}

func TestMonitoring(t *testing.T) {
	quakes, volcanos, err := Monitoring(seq.NewSpan(1, 1000), 100, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if quakes.Count() != 100 || volcanos.Count() != 10 {
		t.Errorf("counts = %d, %d", quakes.Count(), volcanos.Count())
	}
	// Positions are distinct across both sequences.
	seen := map[seq.Pos]bool{}
	for _, e := range quakes.Entries() {
		seen[e.Pos] = true
	}
	for _, e := range volcanos.Entries() {
		if seen[e.Pos] {
			t.Fatalf("volcano collides with quake at %d", e.Pos)
		}
	}
	for _, e := range quakes.Entries() {
		s := e.Rec[0].AsFloat()
		if s < 4 || s > 9 {
			t.Fatalf("strength %g out of range", s)
		}
	}
	if _, _, err := Monitoring(seq.NewSpan(1, 5), 10, 10, 0); err == nil {
		t.Error("overfull span must be rejected")
	}
}

func TestToRelations(t *testing.T) {
	quakes, volcanos, err := Monitoring(seq.NewSpan(1, 500), 50, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	q, v, err := ToRelations(quakes, volcanos)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cardinality() != 50 || v.Cardinality() != 5 {
		t.Errorf("cardinalities = %d, %d", q.Cardinality(), v.Cardinality())
	}
	// The nested and merge baselines run on the converted relations.
	nested, err := relational.VolcanoQueryNested(v, q)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := relational.VolcanoQueryMerge(v, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(nested) != len(merged) {
		t.Errorf("plans disagree: nested %v, merge %v", nested, merged)
	}
}
