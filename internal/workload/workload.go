// Package workload generates the synthetic datasets the experiments run
// on: random-walk stock series with controlled spans and densities
// (shaped after Table 1 of the paper), Poisson event sequences, and the
// volcano/earthquake monitoring data of Example 1.1 (with a conversion
// into relations for the relational baseline).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/relational"
	"repro/internal/seq"
)

// StockSchema is the record type of generated stock series.
var StockSchema = seq.MustSchema(
	seq.Field{Name: "open", Type: seq.TFloat},
	seq.Field{Name: "close", Type: seq.TFloat},
	seq.Field{Name: "volume", Type: seq.TInt},
)

// StockConfig parameterizes a stock series.
type StockConfig struct {
	Name       string
	Span       seq.Span // valid range
	Density    float64  // fraction of positions with a record
	StartPrice float64  // initial price (default 100)
	Volatility float64  // per-step random-walk step size (default 1)
	Seed       int64
}

// Stock generates a random-walk daily series: each non-empty position
// carries open/close prices and a volume.
func Stock(cfg StockConfig) (*seq.Materialized, error) {
	if cfg.Span.IsEmpty() || !cfg.Span.Bounded() {
		return nil, fmt.Errorf("workload: stock series needs a bounded span, got %v", cfg.Span)
	}
	if cfg.Density <= 0 || cfg.Density > 1 {
		return nil, fmt.Errorf("workload: density %g out of (0, 1]", cfg.Density)
	}
	if cfg.StartPrice == 0 {
		cfg.StartPrice = 100
	}
	if cfg.Volatility == 0 {
		cfg.Volatility = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	price := cfg.StartPrice
	var entries []seq.Entry
	for p := cfg.Span.Start; p <= cfg.Span.End; p++ {
		open := price
		// A mean-reverting walk (Ornstein-Uhlenbeck-like): prices wander
		// but stay near the start price, so independently generated
		// series keep crossing each other — queries comparing two
		// series have non-degenerate answers at every scale.
		price += (cfg.StartPrice-price)*0.02 + (rng.Float64()*2-1)*cfg.Volatility
		if price < 1 {
			price = 1
		}
		if rng.Float64() >= cfg.Density {
			continue // empty position (holiday, halt)
		}
		entries = append(entries, seq.Entry{
			Pos: p,
			Rec: seq.Record{
				seq.Float(open),
				seq.Float(price),
				seq.Int(int64(rng.Intn(9000) + 1000)),
			},
		})
	}
	m, err := seq.NewMaterialized(StockSchema, entries)
	if err != nil {
		return nil, err
	}
	return m.WithSpan(cfg.Span)
}

// Table1 generates the three sequences of the paper's Table 1, with the
// spans scaled by the given factor:
//
//	IBM  [200k, 500k]  density 0.95
//	DEC  [1k,   350k]  density 0.70
//	HP   [1k,   750k]  density 1.00
func Table1(scale int64) (ibm, dec, hp *seq.Materialized, err error) {
	if scale <= 0 {
		return nil, nil, nil, fmt.Errorf("workload: scale must be positive, got %d", scale)
	}
	mk := func(name string, lo, hi int64, density float64, seed int64) (*seq.Materialized, error) {
		return Stock(StockConfig{
			Name: name, Span: seq.NewSpan(lo*scale, hi*scale),
			Density: density, Seed: seed,
		})
	}
	if ibm, err = mk("ibm", 200, 500, 0.95, 1); err != nil {
		return nil, nil, nil, err
	}
	if dec, err = mk("dec", 1, 350, 0.70, 2); err != nil {
		return nil, nil, nil, err
	}
	if hp, err = mk("hp", 1, 750, 1.00, 3); err != nil {
		return nil, nil, nil, err
	}
	return ibm, dec, hp, nil
}

// EventSchema is the record type of generated event sequences.
var EventSchema = seq.MustSchema(
	seq.Field{Name: "kind", Type: seq.TString},
	seq.Field{Name: "value", Type: seq.TFloat},
)

// Events generates a sparse event sequence: events arrive with the given
// per-position probability (a discretized Poisson process), carrying a
// kind drawn from kinds and a value in [0, 100).
func Events(span seq.Span, rate float64, kinds []string, seed int64) (*seq.Materialized, error) {
	if span.IsEmpty() || !span.Bounded() {
		return nil, fmt.Errorf("workload: events need a bounded span, got %v", span)
	}
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("workload: rate %g out of (0, 1]", rate)
	}
	if len(kinds) == 0 {
		kinds = []string{"event"}
	}
	rng := rand.New(rand.NewSource(seed))
	var entries []seq.Entry
	for p := span.Start; p <= span.End; p++ {
		if rng.Float64() >= rate {
			continue
		}
		entries = append(entries, seq.Entry{
			Pos: p,
			Rec: seq.Record{
				seq.Str(kinds[rng.Intn(len(kinds))]),
				seq.Float(rng.Float64() * 100),
			},
		})
	}
	m, err := seq.NewMaterialized(EventSchema, entries)
	if err != nil {
		return nil, err
	}
	return m.WithSpan(span)
}

// Schemas of the Example 1.1 monitoring sequences.
var (
	QuakeSchema = seq.MustSchema(seq.Field{Name: "strength", Type: seq.TFloat})
	VolcSchema  = seq.MustSchema(seq.Field{Name: "name", Type: seq.TString})
)

// Monitoring generates the weather-monitoring data of Example 1.1:
// nQuakes earthquakes (strengths in [4, 9]) and nVolcanos volcano
// eruptions, interleaved at distinct positions of the span.
func Monitoring(span seq.Span, nQuakes, nVolcanos int, seed int64) (quakes, volcanos *seq.Materialized, err error) {
	if !span.Bounded() || span.Len() < int64(nQuakes+nVolcanos) {
		return nil, nil, fmt.Errorf("workload: span %v too small for %d events", span, nQuakes+nVolcanos)
	}
	rng := rand.New(rand.NewSource(seed))
	positions := rng.Perm(int(span.Len()))[:nQuakes+nVolcanos]
	var qe, ve []seq.Entry
	for i, off := range positions {
		pos := span.Start + seq.Pos(off)
		if i < nQuakes {
			qe = append(qe, seq.Entry{
				Pos: pos,
				Rec: seq.Record{seq.Float(4 + rng.Float64()*5)},
			})
		} else {
			ve = append(ve, seq.Entry{
				Pos: pos,
				Rec: seq.Record{seq.Str(fmt.Sprintf("volcano-%d", i-nQuakes))},
			})
		}
	}
	if quakes, err = seq.NewMaterialized(QuakeSchema, qe); err != nil {
		return nil, nil, err
	}
	if quakes, err = quakes.WithSpan(span); err != nil {
		return nil, nil, err
	}
	if volcanos, err = seq.NewMaterialized(VolcSchema, ve); err != nil {
		return nil, nil, err
	}
	if volcanos, err = volcanos.WithSpan(span); err != nil {
		return nil, nil, err
	}
	return quakes, volcanos, nil
}

// ToRelations converts monitoring sequences into the relational
// baseline's relations, materializing the position as a "time" column.
func ToRelations(quakes, volcanos *seq.Materialized) (q, v *relational.Relation, err error) {
	qt := make([]relational.Tuple, 0, quakes.Count())
	for _, e := range quakes.Entries() {
		qt = append(qt, relational.Tuple{seq.Int(e.Pos), e.Rec[0]})
	}
	if q, err = relational.NewRelation("earthquakes", relational.QuakeSchema, qt); err != nil {
		return nil, nil, err
	}
	vt := make([]relational.Tuple, 0, volcanos.Count())
	for _, e := range volcanos.Entries() {
		vt = append(vt, relational.Tuple{seq.Int(e.Pos), e.Rec[0]})
	}
	if v, err = relational.NewRelation("volcanos", relational.VolcanoSchema, vt); err != nil {
		return nil, nil, err
	}
	return q, v, nil
}
