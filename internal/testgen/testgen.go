// Package testgen generates random sequence queries and random base data
// for property-based testing. The rewriter and the optimizer are both
// checked by the same invariant: whatever the random query and data,
// transformed/optimized evaluation must agree with the reference
// interpreter.
package testgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
	"repro/internal/storage"
)

// Config bounds the generated queries.
type Config struct {
	MaxDepth    int     // operator nesting depth
	MaxPos      int64   // base records live in [0, MaxPos]
	BaseDensity float64 // probability a position holds a record
}

// DefaultConfig returns sensible bounds for fast property tests.
func DefaultConfig() Config {
	return Config{MaxDepth: 4, MaxPos: 30, BaseDensity: 0.5}
}

var twoColSchema = seq.MustSchema(
	seq.Field{Name: "close", Type: seq.TFloat},
	seq.Field{Name: "volume", Type: seq.TInt},
)

// RandomBase builds a random materialized base sequence.
func RandomBase(rng *rand.Rand, cfg Config, name string) *algebra.Node {
	var entries []seq.Entry
	for p := int64(0); p <= cfg.MaxPos; p++ {
		if rng.Float64() < cfg.BaseDensity {
			entries = append(entries, seq.Entry{
				Pos: p,
				Rec: seq.Record{
					seq.Float(float64(rng.Intn(100)) / 4),
					seq.Int(int64(rng.Intn(50))),
				},
			})
		}
	}
	m, err := seq.NewMaterialized(twoColSchema, entries)
	if err != nil {
		panic(err) // schema is static; cannot happen
	}
	return algebra.Base(name, m)
}

// RandomQuery builds a random query of at most cfg.MaxDepth operators
// over freshly generated base sequences.
func RandomQuery(rng *rand.Rand, cfg Config) (*algebra.Node, error) {
	g := &gen{rng: rng, cfg: cfg}
	return g.node(cfg.MaxDepth)
}

type gen struct {
	rng    *rand.Rand
	cfg    Config
	nbases int
}

func (g *gen) leaf() (*algebra.Node, error) {
	g.nbases++
	if g.rng.Intn(8) == 0 {
		return algebra.Const(twoColSchema, seq.Record{
			seq.Float(float64(g.rng.Intn(40))),
			seq.Int(int64(g.rng.Intn(40))),
		})
	}
	return RandomBase(g.rng, g.cfg, fmt.Sprintf("b%d", g.nbases)), nil
}

func (g *gen) node(depth int) (*algebra.Node, error) {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		return g.leaf()
	}
	switch g.rng.Intn(9) {
	case 7: // collapse (§5.1 extension)
		in, err := g.node(depth - 1)
		if err != nil {
			return nil, err
		}
		cols := numericCols(in.Schema)
		if len(cols) == 0 {
			return in, nil
		}
		funcs := []algebra.AggFunc{algebra.AggSum, algebra.AggAvg, algebra.AggMin, algebra.AggMax, algebra.AggCount}
		return algebra.Collapse(in, int64(g.rng.Intn(3)+2), algebra.AggSpec{
			Func: funcs[g.rng.Intn(len(funcs))],
			Arg:  cols[g.rng.Intn(len(cols))],
			As:   "g",
		})
	case 8: // expand (§5.1 extension)
		in, err := g.node(depth - 1)
		if err != nil {
			return nil, err
		}
		return algebra.Expand(in, int64(g.rng.Intn(3)+2))
	case 0: // select
		in, err := g.node(depth - 1)
		if err != nil {
			return nil, err
		}
		pred, err := g.pred(in.Schema)
		if err != nil || pred == nil {
			return in, err
		}
		return algebra.Select(in, pred)
	case 1: // project
		in, err := g.node(depth - 1)
		if err != nil {
			return nil, err
		}
		return g.project(in)
	case 2: // positional offset
		in, err := g.node(depth - 1)
		if err != nil {
			return nil, err
		}
		return algebra.PosOffset(in, int64(g.rng.Intn(7)-3))
	case 3: // value offset
		in, err := g.node(depth - 1)
		if err != nil {
			return nil, err
		}
		offsets := []int64{-2, -1, 1, 2}
		return algebra.ValueOffset(in, offsets[g.rng.Intn(len(offsets))])
	case 4: // aggregate
		in, err := g.node(depth - 1)
		if err != nil {
			return nil, err
		}
		return g.agg(in)
	default: // compose
		l, err := g.node(depth - 1)
		if err != nil {
			return nil, err
		}
		r, err := g.node(depth - 1)
		if err != nil {
			return nil, err
		}
		schema, err := algebra.ComposeSchema(l, r, "l", "r")
		if err != nil {
			return nil, err
		}
		var pred expr.Expr
		if g.rng.Intn(2) == 0 {
			pred, err = g.pred(schema)
			if err != nil {
				return nil, err
			}
		}
		return algebra.Compose(l, r, pred, "l", "r")
	}
}

// numericCols returns the indexes of numeric attributes.
func numericCols(schema *seq.Schema) []int {
	var out []int
	for i := 0; i < schema.NumFields(); i++ {
		if schema.Field(i).Type.Numeric() {
			out = append(out, i)
		}
	}
	return out
}

// pred builds a random comparison (possibly conjunctive) over the schema,
// or nil if no numeric attribute exists.
func (g *gen) pred(schema *seq.Schema) (expr.Expr, error) {
	cols := numericCols(schema)
	if len(cols) == 0 {
		return nil, nil
	}
	one := func() (expr.Expr, error) {
		ops := []expr.BinOp{expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe, expr.OpEq, expr.OpNe}
		op := ops[g.rng.Intn(len(ops))]
		ci := cols[g.rng.Intn(len(cols))]
		c, err := expr.ColAt(schema, ci)
		if err != nil {
			return nil, err
		}
		if g.rng.Intn(4) == 0 { // wrap in a scalar function sometimes
			wrapped, err := expr.NewCall(expr.FnAbs, []expr.Expr{c})
			if err != nil {
				return nil, err
			}
			return expr.NewBin(op, wrapped, expr.Literal(seq.Float(float64(g.rng.Intn(30)))))
		}
		if len(cols) > 1 && g.rng.Intn(3) == 0 {
			cj := cols[g.rng.Intn(len(cols))]
			c2, err := expr.ColAt(schema, cj)
			if err != nil {
				return nil, err
			}
			return expr.NewBin(op, c, c2)
		}
		return expr.NewBin(op, c, expr.Literal(seq.Float(float64(g.rng.Intn(30)))))
	}
	p, err := one()
	if err != nil {
		return nil, err
	}
	if g.rng.Intn(3) == 0 {
		q, err := one()
		if err != nil {
			return nil, err
		}
		return expr.NewBin(expr.OpAnd, p, q)
	}
	return p, nil
}

// project builds a random projection: a column subset, sometimes with a
// computed attribute.
func (g *gen) project(in *algebra.Node) (*algebra.Node, error) {
	n := in.Schema.NumFields()
	k := g.rng.Intn(n) + 1
	perm := g.rng.Perm(n)[:k]
	items := make([]algebra.ProjItem, 0, k+1)
	used := make(map[string]bool)
	for _, ci := range perm {
		c, err := expr.ColAt(in.Schema, ci)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("c%d", ci)
		if used[name] {
			continue
		}
		used[name] = true
		items = append(items, algebra.ProjItem{Expr: c, Name: name})
	}
	if cols := numericCols(in.Schema); len(cols) > 0 && g.rng.Intn(3) == 0 {
		c, err := expr.ColAt(in.Schema, cols[g.rng.Intn(len(cols))])
		if err != nil {
			return nil, err
		}
		dbl, err := expr.NewBin(expr.OpAdd, c, c)
		if err != nil {
			return nil, err
		}
		items = append(items, algebra.ProjItem{Expr: dbl, Name: "computed"})
	}
	return algebra.Project(in, items)
}

// agg builds a random windowed aggregate over a numeric attribute.
func (g *gen) agg(in *algebra.Node) (*algebra.Node, error) {
	cols := numericCols(in.Schema)
	if len(cols) == 0 {
		return in, nil
	}
	funcs := []algebra.AggFunc{algebra.AggSum, algebra.AggAvg, algebra.AggMin, algebra.AggMax, algebra.AggCount}
	windows := []algebra.Window{
		algebra.Trailing(int64(g.rng.Intn(4) + 1)),
		algebra.Range(-2, 1),
		algebra.Range(int64(-1-g.rng.Intn(2)), int64(g.rng.Intn(2))),
		algebra.Cumulative(),
	}
	return algebra.Agg(in, algebra.AggSpec{
		Func:   funcs[g.rng.Intn(len(funcs))],
		Arg:    cols[g.rng.Intn(len(cols))],
		Window: windows[g.rng.Intn(len(windows))],
		As:     "a",
	})
}

// SkewedStore wraps a storage.Store and reports a fabricated density to
// the optimizer while the underlying data keeps its real one — the
// deliberately-skewed-estimate workload of the reoptimization tests.
// Scans, probes, page counters and access costs all pass through to the
// real store; only the Step-2 density estimate lies.
type SkewedStore struct {
	storage.Store
	// Claimed is the density Info() reports instead of the real one.
	Claimed float64
}

// Info implements seq.Sequence with the claimed density substituted.
func (s *SkewedStore) Info() seq.Info {
	info := s.Store.Info()
	info.Density = s.Claimed
	return info
}

// SkewedBase builds a base node over a store whose real density is
// actual but whose Info() claims claimed — records val(p)=p at every
// position selected with probability actual over [0, maxPos]. It
// returns the node together with the wrapped store so tests can read
// the real page counters.
func SkewedBase(rng *rand.Rand, name string, maxPos int64, actual, claimed float64,
	recordsPerPage int) (*algebra.Node, *SkewedStore, error) {
	var entries []seq.Entry
	for p := int64(0); p <= maxPos; p++ {
		if rng.Float64() < actual {
			entries = append(entries, seq.Entry{
				Pos: p,
				Rec: seq.Record{seq.Float(float64(p)), seq.Int(p)},
			})
		}
	}
	m, err := seq.NewMaterialized(twoColSchema, entries)
	if err != nil {
		return nil, nil, err
	}
	m, err = m.WithSpan(seq.NewSpan(0, maxPos))
	if err != nil {
		return nil, nil, err
	}
	st, err := storage.FromMaterialized(m, storage.KindSparse, recordsPerPage)
	if err != nil {
		return nil, nil, err
	}
	sk := &SkewedStore{Store: st, Claimed: claimed}
	return algebra.Base(name, sk), sk, nil
}

// EntriesEqual compares two evaluation results.
func EntriesEqual(a, b []seq.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || !a[i].Rec.Equal(b[i].Rec) {
			return false
		}
	}
	return true
}

// EntriesApproxEqual compares evaluation results with a relative
// tolerance on floating-point attributes. Incremental aggregate
// strategies (subtractable sliding sums) legitimately accumulate
// rounding differently from per-window recomputation; positions and
// non-float values must still match exactly.
func EntriesApproxEqual(a, b []seq.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || !recordApproxEqual(a[i].Rec, b[i].Rec) {
			return false
		}
	}
	return true
}

func recordApproxEqual(a, b seq.Record) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].T == seq.TFloat && b[i].T == seq.TFloat {
			if !floatApproxEqual(a[i].AsFloat(), b[i].AsFloat()) {
				return false
			}
			continue
		}
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func floatApproxEqual(x, y float64) bool {
	if x == y {
		return true
	}
	d := math.Abs(x - y)
	if d < 1e-9 {
		return true
	}
	return d <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
}
