package matview

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

// epochFixture registers one view over select(base, v > 0) at FromEpoch 3.
func epochFixture(t *testing.T) (*Registry, *View) {
	t.Helper()
	schema, err := seq.NewSchema(seq.Field{Name: "v", Type: seq.TInt})
	if err != nil {
		t.Fatal(err)
	}
	entries := []seq.Entry{
		{Pos: 1, Rec: seq.Record{seq.Int(1)}},
		{Pos: 2, Rec: seq.Record{seq.Int(2)}},
	}
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	base := algebra.Base("s", data)
	c, err := expr.NewCol(base.Schema, "v")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Int(0)))
	if err != nil {
		t.Fatal(err)
	}
	node, err := algebra.Select(base, pred)
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	v, err := r.RegisterAt("hot", node, data, seq.NewSpan(1, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	return r, v
}

func TestViewEpochValidity(t *testing.T) {
	r, v := epochFixture(t)
	if v.ValidAt(2) {
		t.Fatal("view valid before FromEpoch")
	}
	if !v.ValidAt(3) || !v.ValidAt(10) {
		t.Fatal("view invalid inside its window")
	}

	if got := r.At(2).Len(); got != 0 {
		t.Fatalf("At(2) has %d views, want 0", got)
	}
	if got := r.At(3).Len(); got != 1 {
		t.Fatalf("At(3) has %d views, want 1", got)
	}

	marked := r.InvalidateBaseFrom("s", 7)
	if len(marked) != 1 || marked[0] != "hot" {
		t.Fatalf("invalidated %v, want [hot]", marked)
	}
	if !v.ValidAt(6) {
		t.Fatal("reader pinned before the invalidating write lost the view")
	}
	if v.ValidAt(7) {
		t.Fatal("reader pinned at the invalidating write still sees the view")
	}
	// Re-invalidation keeps the earliest epoch.
	if marked := r.InvalidateBaseFrom("s", 9); len(marked) != 0 {
		t.Fatalf("re-invalidation marked %v", marked)
	}
	if got := v.InvalidFrom(); got != 7 {
		t.Fatalf("invalidFrom = %d, want 7", got)
	}

	// GC: a reader could still be pinned at 6 -> keep; once min live
	// reaches 7 the view is unreachable.
	if dropped := r.GC(6); len(dropped) != 0 {
		t.Fatalf("GC(6) dropped %v", dropped)
	}
	if dropped := r.GC(7); len(dropped) != 1 || dropped[0] != "hot" {
		t.Fatalf("GC(7) dropped %v, want [hot]", dropped)
	}
	if r.Len() != 0 {
		t.Fatal("registry not empty after GC")
	}
}

func TestRegistrySliceIsolation(t *testing.T) {
	r, _ := epochFixture(t)
	slice := r.At(5)
	if slice.Len() != 1 {
		t.Fatalf("slice has %d views", slice.Len())
	}
	// Invalidation in the parent does not change a pinned slice's
	// membership: the pinned reader was sliced at epoch 5 < 7.
	r.InvalidateBaseFrom("s", 7)
	if slice.Len() != 1 {
		t.Fatal("pinned slice lost its view after a later invalidation")
	}
	// Dropping from the slice leaves the parent untouched.
	if !slice.Drop("hot") {
		t.Fatal("slice drop failed")
	}
	if r.Len() != 1 {
		t.Fatal("slice drop leaked into the parent registry")
	}
}
