package matview

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/seq"
)

// deltaBase builds a base leaf named "b" with non-Null records at the
// given positions (value = position), the post-write state the affected
// analysis scans.
func deltaBase(t *testing.T, positions ...int64) *algebra.Node {
	t.Helper()
	schema := seq.MustSchema(seq.Field{Name: "v", Type: seq.TInt})
	entries := make([]seq.Entry, len(positions))
	for i, p := range positions {
		entries[i] = seq.Entry{Pos: p, Rec: seq.Record{seq.Int(p)}}
	}
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	return algebra.Base("b", data)
}

// ops are applied outermost-last, e.g. posoff(2) then trailing(3) means
// trailing(3) over posoff(2) over base.
type deltaOp func(t *testing.T, in *algebra.Node) *algebra.Node

func posoff(o int64) deltaOp {
	return func(t *testing.T, in *algebra.Node) *algebra.Node {
		n, err := algebra.PosOffset(in, o)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
}

func voff(o int64) deltaOp {
	return func(t *testing.T, in *algebra.Node) *algebra.Node {
		n, err := algebra.ValueOffset(in, o)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
}

func agg(w algebra.Window) deltaOp {
	return func(t *testing.T, in *algebra.Node) *algebra.Node {
		n, err := algebra.Agg(in, algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: w})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
}

func collapse(k int64) deltaOp {
	return func(t *testing.T, in *algebra.Node) *algebra.Node {
		n, err := algebra.Collapse(in, k, algebra.AggSpec{Func: algebra.AggCount, Arg: 0})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
}

func expand(k int64) deltaOp {
	return func(t *testing.T, in *algebra.Node) *algebra.Node {
		n, err := algebra.Expand(in, k)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
}

func TestAffectedSpan(t *testing.T) {
	// Post-append data: records at 1..5, 8, and the appended 14. The gap
	// at 6..7 is the density boundary the value-offset washouts feel.
	positions := []int64{1, 2, 3, 4, 5, 8, 14}
	unboundedAbove := seq.Span{Start: 0, End: seq.MaxPos} // Start filled per case
	_ = unboundedAbove

	cases := []struct {
		name  string
		ops   []deltaOp
		delta seq.Span
		want  seq.Span
	}{
		{"identity: no operators", nil, seq.NewSpan(14, 14), seq.NewSpan(14, 14)},
		{"empty delta (reorganize) stays empty through a chain",
			[]deltaOp{posoff(2), agg(algebra.Trailing(3)), collapse(3)},
			seq.EmptySpan, seq.EmptySpan},
		{"posoffset shifts against its offset",
			[]deltaOp{posoff(2)}, seq.NewSpan(14, 14), seq.NewSpan(12, 12)},
		{"negative posoffset shifts the other way",
			[]deltaOp{posoff(-3)}, seq.NewSpan(14, 14), seq.NewSpan(17, 17)},
		{"trailing window reaches backward from the delta",
			[]deltaOp{agg(algebra.Trailing(3))}, seq.NewSpan(14, 14), seq.NewSpan(14, 16)},
		{"cumulative aggregate: everything at and above the delta",
			[]deltaOp{agg(algebra.Cumulative())}, seq.NewSpan(14, 14),
			seq.Span{Start: 14, End: seq.MaxPos}},
		{"anticipating window: everything at and below the delta",
			[]deltaOp{agg(algebra.Window{HiUnbounded: true})}, seq.NewSpan(14, 14),
			seq.Span{Start: seq.MinPos, End: 14}},
		{"collapse maps the delta into coarse groups",
			[]deltaOp{collapse(3)}, seq.NewSpan(14, 16), seq.NewSpan(4, 5)},
		{"collapse floors negative positions",
			[]deltaOp{collapse(3)}, seq.NewSpan(-4, -4), seq.NewSpan(-2, -2)},
		{"expand fans each input position across its group",
			[]deltaOp{expand(3)}, seq.NewSpan(4, 4), seq.NewSpan(12, 14)},
		{"backward voffset: tail append affects everything above it",
			[]deltaOp{voff(-1)}, seq.NewSpan(14, 14),
			seq.Span{Start: 15, End: seq.MaxPos}},
		{"backward voffset: mid-delta washes out at the next record above",
			[]deltaOp{voff(-1)}, seq.NewSpan(3, 3), seq.NewSpan(4, 4)},
		{"backward voffset(-2): needs two shields above",
			[]deltaOp{voff(-2)}, seq.NewSpan(3, 3), seq.NewSpan(4, 5)},
		{"forward voffset: washout spans the density gap below the delta",
			[]deltaOp{voff(1)}, seq.NewSpan(14, 14), seq.NewSpan(8, 13)},
		{"forward voffset(+2): two shields below",
			[]deltaOp{voff(2)}, seq.NewSpan(14, 14), seq.NewSpan(5, 13)},
		{"composed: trailing aggregate over shifted delta",
			[]deltaOp{posoff(2), agg(algebra.Trailing(3))},
			seq.NewSpan(14, 14), seq.NewSpan(12, 14)},
		{"composed: collapse over backward voffset keeps the unbounded tail",
			[]deltaOp{voff(-1), collapse(3)}, seq.NewSpan(14, 14),
			seq.Span{Start: 5, End: seq.MaxPos}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := deltaBase(t, positions...)
			for _, op := range tc.ops {
				n = op(t, n)
			}
			got, ok := AffectedSpan(n, "b", tc.delta)
			if !ok {
				t.Fatalf("AffectedSpan not computable")
			}
			if got != tc.want {
				t.Errorf("affected = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestAffectedSpanOtherBase: a delta on a base the block does not read
// affects nothing.
func TestAffectedSpanOtherBase(t *testing.T) {
	n := deltaBase(t, 1, 2, 3)
	sel := posoff(1)(t, n)
	got, ok := AffectedSpan(sel, "other", seq.NewSpan(10, 10))
	if !ok || !got.IsEmpty() {
		t.Fatalf("affected = %v ok=%v, want empty", got, ok)
	}
}

// TestAffectedSpanCompose: the halo of a compose is the union of its
// legs' halos, here with the same base read at two different shifts.
func TestAffectedSpanCompose(t *testing.T) {
	l := posoff(2)(t, deltaBase(t, 1, 2, 3))
	r := posoff(-2)(t, deltaBase(t, 1, 2, 3))
	c, err := algebra.Compose(l, r, nil, "l", "r")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := AffectedSpan(c, "b", seq.NewSpan(10, 10))
	if !ok {
		t.Fatal("not computable")
	}
	if want := seq.NewSpan(8, 12); got != want {
		t.Errorf("affected = %v, want %v", got, want)
	}
}
