// Regression test for differential-fuzz seed 81: a collapse(count, k=3)
// query over a materialized voffset(-2)-over-select-over-voffset(+1)
// block returned 61 rows where the reference evaluation returns 58.
//
// The defect: the view block's inner voffset(+1) gives the selection
// input non-Null records at every position below the base start, so the
// outer voffset(-2)'s backward walk is stopped only by the evaluation
// universe — the block is universe-sensitive (algebra.UniverseSensitive).
// The view was materialized under the universe of one evaluation and
// substituted into a query planned under another, and the two disagree
// near the data edges (three extra collapse groups).
//
// The fix refuses registration of universe-sensitive blocks, so this
// test passes either way it resolves: registration refused (fixed), or
// registration accepted AND the substituted plan agrees record-for-record
// with the reference (which the old code fails).
package matview_test

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/matview"
	"repro/internal/seq"
	"repro/internal/testgen"
)

// seed81Query rebuilds the exact seed-81 shape over a hand-copied base:
//
//	collapse(count(volume), k=3) as g
//	  voffset(-2)
//	    select((close >= 12))
//	      voffset(+1)
//	        base(b1)
//
// Returns the query root and the voffset(-2) sub-block the fuzz run
// materialized as a view.
func seed81Query(t *testing.T) (query, block *algebra.Node) {
	t.Helper()
	schema := seq.MustSchema(
		seq.Field{Name: "close", Type: seq.TFloat},
		seq.Field{Name: "volume", Type: seq.TInt},
	)
	rows := []struct {
		pos    int64
		close  float64
		volume int64
	}{
		{1, 24.25, 48}, {3, 3.5, 25}, {4, 3, 14}, {6, 11.75, 38},
		{8, 0.5, 17}, {9, 15, 22}, {11, 10, 25}, {14, 13, 19},
		{15, 16.25, 9}, {17, 2, 34}, {19, 14.25, 18}, {20, 0, 18},
		{22, 23.5, 40}, {24, 10.75, 5}, {25, 1, 5}, {26, 8, 25},
		{27, 24.5, 32}, {28, 16.5, 6}, {29, 15, 46},
	}
	entries := make([]seq.Entry, len(rows))
	for i, r := range rows {
		entries[i] = seq.Entry{Pos: r.pos, Rec: seq.Record{seq.Float(r.close), seq.Int(r.volume)}}
	}
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	base := algebra.Base("b1", data)
	next, err := algebra.ValueOffset(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	closeCol, err := expr.NewCol(schema, "close")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := expr.NewBin(expr.OpGe, closeCol, expr.Literal(seq.Float(12)))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := algebra.Select(next, pred)
	if err != nil {
		t.Fatal(err)
	}
	block, err = algebra.ValueOffset(sel, -2)
	if err != nil {
		t.Fatal(err)
	}
	query, err = algebra.Collapse(block, 3, algebra.AggSpec{Func: algebra.AggCount, Arg: 1, As: "g"})
	if err != nil {
		t.Fatal(err)
	}
	return query, block
}

func TestSeed81CollapseOverValueOffsetView(t *testing.T) {
	query, block := seed81Query(t)
	qspan := seq.NewSpan(-10, 50)
	opts := core.Options{ForceNaiveAggregates: true, ForceNaiveValueOffsets: true}

	want, err := algebra.EvalRange(query, qspan)
	if err != nil {
		t.Fatal(err)
	}

	// Materialize the voffset(-2) block over [-30, 152] — its access span
	// under the collapse query, which is the span the original fuzz run
	// registered (the materializing evaluation's universe is wider than
	// the consuming query's).
	vspan := seq.NewSpan(-30, 152)
	entries, err := algebra.EvalRange(block, vspan)
	if err != nil {
		t.Fatal(err)
	}
	kept := entries[:0]
	for _, e := range entries {
		if !e.Rec.IsNull() {
			kept = append(kept, e)
		}
	}
	data, err := seq.NewMaterialized(block.Schema, kept)
	if err != nil {
		t.Fatal(err)
	}

	reg := matview.New()
	if _, err := reg.Register("seed81", block, data, vspan); err != nil {
		// Fixed behavior: the registry refuses the unsound block.
		if !strings.Contains(err.Error(), "universe-sensitive") {
			t.Fatalf("registration refused for the wrong reason: %v", err)
		}
		return
	}

	// Old behavior: registration succeeded, so the substituted plan must
	// agree with the reference evaluation. Seed 81 returns 61 rows here
	// against a 58-row reference.
	withViews := opts
	withViews.Views = reg
	vres, err := core.Optimize(query, qspan, withViews)
	if err != nil {
		t.Fatal(err)
	}
	if len(vres.Substitutions) == 0 {
		t.Fatal("view registered but never substituted; regression shape drifted")
	}
	got, err := vres.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !testgen.EntriesApproxEqual(got.Entries(), want) {
		t.Errorf("substituted plan disagrees with reference: got %d rows, want %d\nplan:\n%s",
			len(got.Entries()), len(want), vres.Explain())
	}
}

// TestUniverseInsensitiveBlockRegisters pins the other side of the fix:
// the select-over-voffset(+1) sub-block of the same query has finite
// support below it (the base), is not universe-sensitive, and must still
// register and substitute correctly.
func TestUniverseInsensitiveBlockRegisters(t *testing.T) {
	query, block := seed81Query(t)
	sel := block.Inputs[0] // select((close >= 12)) over voffset(+1)
	if algebra.UniverseSensitive(sel) {
		t.Fatal("select block unexpectedly universe-sensitive")
	}
	qspan := seq.NewSpan(-10, 50)
	want, err := algebra.EvalRange(query, qspan)
	if err != nil {
		t.Fatal(err)
	}

	vspan := seq.NewSpan(-22, 28)
	entries, err := algebra.EvalRange(sel, vspan)
	if err != nil {
		t.Fatal(err)
	}
	kept := entries[:0]
	for _, e := range entries {
		if !e.Rec.IsNull() {
			kept = append(kept, e)
		}
	}
	data, err := seq.NewMaterialized(sel.Schema, kept)
	if err != nil {
		t.Fatal(err)
	}
	reg := matview.New()
	if _, err := reg.Register("seed81-sel", sel, data, vspan); err != nil {
		t.Fatalf("insensitive block refused registration: %v", err)
	}
	opts := core.Options{
		ForceNaiveAggregates:   true,
		ForceNaiveValueOffsets: true,
		Views:                  reg,
	}
	vres, err := core.Optimize(query, qspan, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vres.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !testgen.EntriesApproxEqual(got.Entries(), want) {
		t.Errorf("substituted plan disagrees with reference: got %d rows, want %d",
			len(got.Entries()), len(want))
	}
}
