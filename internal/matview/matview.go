// Package matview is the materialized-view registry: derived sequences
// that have been computed and stored register their *canonical* query
// block (internal/canon), their span, and their storage, and the
// optimizer asks the registry whether a block it is about to plan can be
// answered from a view instead (§3.4–3.5: a materialized derived
// sequence is just another cached access path).
//
// Matching is by canonical key with subsumption: a view answers a block
// exactly when their keys are equal, and answers a selection block with
// a residual filter when the view is the same block with a subset of the
// conjuncts (the view sel{P_v}(X) serves the query sel{P_q}(X) whenever
// P_v ⊆ P_q; the residual is P_q \ P_v applied on top of the view scan).
// In both cases the view's span must cover the span the query needs at
// that block (top-down span propagation, §3.2) — a structural match
// whose span falls short is recorded as a miss.
//
// Views are backed by the same metered stores (internal/storage) as base
// sequences, so the cost model, EXPLAIN ANALYZE page counters, parallel
// partitioning, and stats forking treat a view scan exactly like a base
// scan.
package matview

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/canon"
	"repro/internal/expr"
	"repro/internal/seq"
	"repro/internal/storage"
)

// View is one registered materialization.
type View struct {
	// Name is the registry-unique view name.
	Name string
	// Node is the logical block the view materializes, as registered
	// (post-rewrite). Its output columns are the stored columns, in order.
	Node *algebra.Node
	// Canon is the canonical form of Node. Canon.ColMap maps stored
	// column j to canonical column Canon.ColMap[j].
	Canon *canon.Canon
	// Span is the position range over which the stored data equals the
	// block's output. Always bounded.
	Span seq.Span
	// Store holds the materialized entries, metered like a base store.
	Store storage.Store
	// FromEpoch is the MVCC epoch the view's contents correspond to: a
	// reader pinned at an earlier epoch must not use it. Views registered
	// outside the server (FromEpoch 0) are valid from the beginning.
	FromEpoch int64

	// invalidFrom is the epoch a base write invalidated this view at
	// (readers pinned at >= invalidFrom must not use it); 0 while the
	// view is live.
	invalidFrom atomic.Int64

	hits   atomic.Int64
	misses atomic.Int64
}

// ValidAt reports whether a reader pinned at epoch e may use this view:
// the view existed by e and no base write had invalidated it yet.
func (v *View) ValidAt(e int64) bool {
	if e < v.FromEpoch {
		return false
	}
	inv := v.invalidFrom.Load()
	return inv == 0 || e < inv
}

// InvalidFrom returns the epoch the view was invalidated at (0 = live).
func (v *View) InvalidFrom() int64 { return v.invalidFrom.Load() }

// Hit records that the optimizer substituted this view into a plan.
func (v *View) Hit() { v.hits.Add(1) }

// Miss records that this view matched structurally but was not used —
// its span fell short, or recomputation was costed cheaper.
func (v *View) Miss() { v.misses.Add(1) }

// Hits returns the substitution count.
func (v *View) Hits() int64 { return v.hits.Load() }

// Misses returns the matched-but-unused count.
func (v *View) Misses() int64 { return v.misses.Load() }

// Density returns the stored fraction of valid positions.
func (v *View) Density() float64 { return v.Store.Info().Density }

// Schema returns the stored schema (the registered block's output schema).
func (v *View) Schema() *seq.Schema { return v.Node.Schema }

// Counters is a point-in-time snapshot of one view's observability
// counters, rendered in EXPLAIN ANALYZE and `show views`.
type Counters struct {
	Name    string
	Span    seq.Span
	Records int
	Density float64
	Hits    int64
	Misses  int64
	Pages   storage.StatsSnapshot
	// FromEpoch/InvalidFrom delimit the MVCC validity window of the view
	// ([FromEpoch, InvalidFrom); InvalidFrom 0 = still live). Both are 0
	// outside the server.
	FromEpoch   int64
	InvalidFrom int64
}

// Counters snapshots the view's counters.
func (v *View) Counters() Counters {
	info := v.Store.Info()
	records := 0
	if info.Span.Bounded() {
		records = int(float64(info.Span.Len())*info.Density + 0.5)
	}
	return Counters{
		Name:        v.Name,
		Span:        v.Span,
		Records:     records,
		Density:     info.Density,
		Hits:        v.Hits(),
		Misses:      v.Misses(),
		Pages:       v.Store.Stats().Snapshot(),
		FromEpoch:   v.FromEpoch,
		InvalidFrom: v.InvalidFrom(),
	}
}

// Match is a successful subsumption test: the block can be computed as
// scan(view) + residual select + column permutation.
type Match struct {
	View *View
	// Residual holds the query conjuncts the view does not already
	// apply, remapped into the view's stored column space. Empty for an
	// exact match.
	Residual []expr.Expr
	// ColMap maps block output columns to stored columns: block column i
	// is stored column ColMap[i]. Always a permutation.
	ColMap []int
	// Covered is the portion of the requested span the view's valid span
	// actually holds. Equal to the request for a full match; a proper
	// prefix of it for a partial match, where the caller must recompute
	// the remainder [Covered.End+1, need.End] itself.
	Covered seq.Span
}

// Partial reports whether the match covers only a prefix of need.
func (m *Match) Partial(need seq.Span) bool {
	return !need.IsEmpty() && m.Covered != need
}

// Substitution records one optimizer decision to answer a query block
// from a view. The optimizer keeps these on its Result so EXPLAIN can
// show the choice and planlint can re-verify it (matview/* invariants).
type Substitution struct {
	View *View
	// Block is the replaced block: the node of the rewritten query tree
	// whose plan the view scan substitutes for.
	Block *algebra.Node
	// Need is the access span the substituted plan must produce, per
	// top-down span propagation.
	Need seq.Span
	// Covered is the prefix of Need the view scan serves. Equal to Need
	// for a full substitution; shorter for a partial one, where the plan
	// concatenates the view scan with a recomputation of the uncovered
	// tail (Covered.End+1 .. Need.End).
	Covered seq.Span
	// Residual holds the conjuncts applied on top of the view scan, in
	// the view's stored column space. Empty for an exact match.
	Residual []expr.Expr
	// ColMap maps block output columns to stored columns: block column i
	// is stored column ColMap[i].
	ColMap []int
	// Stream and Probed report which access modes adopted the view path
	// (each mode is costed separately against recomputation).
	Stream, Probed bool
	// ViewCost and RecomputeCost are the stream-cost comparison the
	// decision used.
	ViewCost, RecomputeCost float64
}

// Registry holds the registered views. Safe for concurrent use.
//
// mu is a leaf in the declared lock order: critical sections are map
// and slice bookkeeping; invalidation scans copy the view list under
// RLock and CAS the epoch bounds outside it.
//
//seqvet:lockorder leaf matview.Registry.mu
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*View
	order  []*View
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*View)}
}

// Register materializes data as a view over the block node, valid on
// span. The node should be in post-rewrite form (what the optimizer sees
// when it plans future queries); data's columns must match node's output
// schema positionally, and span must be bounded and cover data's
// entries. The storage representation is chosen by density: dense at
// ≥ half the positions occupied, sparse below.
func (r *Registry) Register(name string, node *algebra.Node, data *seq.Materialized, span seq.Span) (*View, error) {
	return r.RegisterAt(name, node, data, span, 0)
}

// RegisterAt is Register tagging the view with the MVCC epoch its
// contents correspond to: only readers pinned at >= epoch may use it
// (server materialization). Epoch 0 means valid from the beginning.
func (r *Registry) RegisterAt(name string, node *algebra.Node, data *seq.Materialized, span seq.Span, epoch int64) (*View, error) {
	if name == "" {
		return nil, fmt.Errorf("matview: empty view name")
	}
	if node == nil {
		return nil, fmt.Errorf("matview: nil block")
	}
	if node.Kind == algebra.KindBase {
		return nil, fmt.Errorf("matview: %q is a bare base sequence, not a derived block", name)
	}
	if !span.Bounded() {
		return nil, fmt.Errorf("matview: view %q span %v is unbounded", name, span)
	}
	if algebra.UniverseSensitive(node) {
		// The stored records would encode the evaluation universe of the
		// materializing run; substituting them into a query planned under
		// a different universe is unsound (the fuzz seed-81 defect).
		return nil, fmt.Errorf("matview: view %q block is universe-sensitive (value offset or unbounded aggregate over an input with infinite support) and cannot be materialized soundly", name)
	}
	if got, want := data.Info().Schema, node.Schema; !compatibleSchemas(got, want) {
		return nil, fmt.Errorf("matview: view %q data schema %v does not match block schema %v", name, got, want)
	}
	c, err := canon.Canonicalize(node)
	if err != nil {
		return nil, fmt.Errorf("matview: canonicalize view %q: %w", name, err)
	}
	spanned, err := data.WithSpan(span)
	if err != nil {
		return nil, fmt.Errorf("matview: view %q: %w", name, err)
	}
	kind := storage.KindSparse
	if spanned.Info().Density >= 0.5 {
		kind = storage.KindDense
	}
	store, err := storage.FromMaterialized(spanned, kind, 0)
	if err != nil {
		return nil, fmt.Errorf("matview: store view %q: %w", name, err)
	}
	v := &View{Name: name, Node: node, Canon: c, Span: span, Store: store, FromEpoch: epoch}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return nil, fmt.Errorf("matview: view %q already registered", name)
	}
	r.byName[name] = v
	r.order = append(r.order, v)
	return v, nil
}

// compatibleSchemas requires positionally equal field types; names are
// cosmetic (the canon renders columns positionally).
func compatibleSchemas(a, b *seq.Schema) bool {
	if a.NumFields() != b.NumFields() {
		return false
	}
	for i := 0; i < a.NumFields(); i++ {
		if a.Field(i).Type != b.Field(i).Type {
			return false
		}
	}
	return true
}

// Match finds the best view answering the block with canonical form c
// over the span need. Candidates match exactly (equal keys) or by
// conjunct subsumption; among structural matches whose span covers need,
// the one with the fewest residual conjuncts wins (ties: registration
// order). When no view covers all of need, a view whose span covers a
// proper prefix of it can still match partially (Covered < need): the
// caller serves the prefix from the view and recomputes the rest.
// Structural matches that cover nothing record a Miss. Match itself
// never records Hits: the optimizer costs the substitution against
// recomputation and reports the outcome via View.Hit/Miss.
func (r *Registry) Match(c *canon.Canon, need seq.Span) (*Match, bool) {
	r.mu.RLock()
	views := append([]*View(nil), r.order...)
	r.mu.RUnlock()

	var best, partial *Match
	for _, v := range views {
		m, ok := subsume(v, c)
		if !ok {
			continue
		}
		if need.IsEmpty() || v.Span.Intersect(need) == need {
			m.Covered = need
			if best == nil || len(m.Residual) < len(best.Residual) {
				best = m
			}
			continue
		}
		// Prefix cover: the view holds [need.Start, v.Span.End] with a
		// recomputable gap above. Prefer the longest covered prefix, then
		// the fewest residual conjuncts.
		if need.Bounded() && v.Span.Start <= need.Start && v.Span.End >= need.Start {
			m.Covered = seq.NewSpan(need.Start, v.Span.End)
			if partial == nil || m.Covered.End > partial.Covered.End ||
				(m.Covered.End == partial.Covered.End && len(m.Residual) < len(partial.Residual)) {
				partial = m
			}
			continue
		}
		v.Miss()
	}
	if best != nil {
		return best, true
	}
	return partial, partial != nil
}

// subsume tests whether view v structurally answers the canonical block
// c, ignoring spans. On success the returned match carries the residual
// conjuncts and column map, both in v's stored column space.
func subsume(v *View, c *canon.Canon) (*Match, bool) {
	// invStored[canonical column] = stored column.
	invStored := make([]int, len(v.Canon.ColMap))
	for stored, canonCol := range v.Canon.ColMap {
		invStored[canonCol] = stored
	}

	if v.Canon.Key == c.Key {
		return &Match{View: v, ColMap: composeThrough(c.ColMap, invStored)}, true
	}

	// Conjunct subsumption: both blocks must be selections over the same
	// canonical input (a view with no selection is a selection with zero
	// conjuncts), and the view's conjuncts must be a subset of the
	// query's. Selection preserves columns, so the select's output space
	// is its input space and invStored applies unchanged.
	if c.Node.Kind != algebra.KindSelect {
		return nil, false
	}
	if v.Canon.SelectInputKey != c.SelectInputKey {
		return nil, false
	}
	qConjs := canon.Conjuncts(c.Node.Pred)
	vConjs := []expr.Expr(nil)
	if v.Canon.Node.Kind == algebra.KindSelect {
		vConjs = canon.Conjuncts(v.Canon.Node.Pred)
	}
	have := make(map[string]bool, len(vConjs))
	for _, e := range vConjs {
		have[canon.ExprKey(e)] = true
	}
	matched := 0
	var residual []expr.Expr
	for _, e := range qConjs {
		if have[canon.ExprKey(e)] {
			matched++
			continue
		}
		remapped, err := remapToStored(e, invStored)
		if err != nil {
			return nil, false
		}
		residual = append(residual, remapped)
	}
	if matched != len(vConjs) {
		// The view filters by a conjunct the query does not: it may have
		// dropped records the query needs.
		return nil, false
	}
	return &Match{View: v, Residual: residual, ColMap: composeThrough(c.ColMap, invStored)}, true
}

// composeThrough returns out[i] = through[m[i]].
func composeThrough(m, through []int) []int {
	out := make([]int, len(m))
	for i, j := range m {
		out[i] = through[j]
	}
	return out
}

func remapToStored(e expr.Expr, invStored []int) (expr.Expr, error) {
	m := make(map[int]int, len(invStored))
	for canonCol, stored := range invStored {
		m[canonCol] = stored
	}
	return expr.Remap(e, m)
}

// Get returns the view by name.
func (r *Registry) Get(name string) (*View, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.byName[name]
	return v, ok
}

// Views returns the registered views sorted by name.
func (r *Registry) Views() []*View {
	r.mu.RLock()
	out := append([]*View(nil), r.order...)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered views.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}

// Drop removes the named view. It reports whether the view existed.
func (r *Registry) Drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		return false
	}
	delete(r.byName, name)
	// Remove every generation of the name (SwapGeneration retains old
	// generations in order for pinned readers).
	kept := r.order[:0]
	for _, v := range r.order {
		if v.Name != name {
			kept = append(kept, v)
		}
	}
	r.order = kept
	return true
}

// At returns a read-only registry slice containing exactly the views a
// reader pinned at epoch e may use. The slice shares View pointers with
// the parent (counters accumulate in one place) but has its own
// membership, so concurrent registration and invalidation in the parent
// never change what a pinned reader can match. Register/Drop on the
// slice affect only the slice; sessions must register through the
// parent.
func (r *Registry) At(e int64) *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := &Registry{byName: make(map[string]*View)}
	for _, v := range r.order {
		if v.ValidAt(e) {
			out.byName[v.Name] = v
			out.order = append(out.order, v)
		}
	}
	return out
}

// InvalidateBaseFrom marks every view whose block reads the named base
// sequence as invalid for readers pinned at or after the given epoch —
// the epoch-based MVCC flavor of InvalidateBase: readers pinned at
// earlier epochs keep using the view, and GC reclaims it once no such
// reader can exist. Returns the names of the views invalidated now
// (already-invalid views are left at their earlier epoch).
func (r *Registry) InvalidateBaseFrom(base string, epoch int64) []string {
	r.mu.RLock()
	views := append([]*View(nil), r.order...)
	r.mu.RUnlock()
	var marked []string
	for _, v := range views {
		if !readsBase(v.Node, base) {
			continue
		}
		if v.invalidFrom.CompareAndSwap(0, epoch) {
			marked = append(marked, v.Name)
		}
	}
	return marked
}

// GC removes every view invalidated at or before minLive: no live reader
// is pinned early enough to use it. Returns the dropped view names.
func (r *Registry) GC(minLive int64) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var dropped []string
	kept := r.order[:0]
	for _, v := range r.order {
		if inv := v.invalidFrom.Load(); inv != 0 && inv <= minLive {
			// An old generation superseded by SwapGeneration no longer owns
			// the byName entry; only clear it if this view still does.
			if r.byName[v.Name] == v {
				delete(r.byName, v.Name)
			}
			dropped = append(dropped, v.Name)
			continue
		}
		kept = append(kept, v)
	}
	r.order = kept
	return dropped
}

// InvalidateBase drops every view whose block reads the named base
// sequence; called when that sequence's data changes (append, reorganize,
// drop). Returns the dropped view names.
func (r *Registry) InvalidateBase(base string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var dropped []string
	kept := r.order[:0]
	for _, v := range r.order {
		if readsBase(v.Node, base) {
			delete(r.byName, v.Name)
			dropped = append(dropped, v.Name)
			continue
		}
		kept = append(kept, v)
	}
	r.order = kept
	return dropped
}

// ReadsBase reports whether the block reads the named base sequence.
func ReadsBase(n *algebra.Node, base string) bool { return readsBase(n, base) }

// InvalidateFrom marks this single view invalid for readers pinned at or
// after epoch; it reports whether this call did the marking (false when
// an earlier write already invalidated the view). The maintenance
// planner uses it when it decides a view is not worth stitching.
func (v *View) InvalidateFrom(epoch int64) bool {
	return v.invalidFrom.CompareAndSwap(0, epoch)
}

func readsBase(n *algebra.Node, base string) bool {
	if n.Kind == algebra.KindBase && n.Name == base {
		return true
	}
	for _, in := range n.Inputs {
		if readsBase(in, base) {
			return true
		}
	}
	return false
}
