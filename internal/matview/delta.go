// Incremental view maintenance: the delta-halo analysis.
//
// When a base sequence changes over a span D (an append publishes D =
// [p, p]; a reorganize preserves content, D = empty), only a computable
// halo of each view's output can change — the paper's bounded effective
// scopes (Def. 3.3, Prop. 2.1) propagated bottom-up as an *affected
// interval*: the span of output positions whose records may differ
// between the old and new evaluation. The maintenance planner
// re-evaluates exactly that interval and stitches it into the view's
// backing store; everything outside it is provably unchanged.
//
// The propagation rules mirror the evaluator's per-operator access
// pattern (algebra/eval.go), expressed in each node's own coordinate
// frame with seq.MinPos/MaxPos standing in for unbounded sides:
//
//	base(b)        D if b is the changed sequence, empty otherwise
//	const          empty
//	select, project A (position- and Null-preserving)
//	offset(o)      A shifted by -o          (output j reads input j+o)
//	agg[lo,hi]     [A.Start-hi, A.End-lo]   (output j reads [j+lo, j+hi])
//	compose        union of the legs
//	collapse(k)    [floor(A.Start/k), floor(A.End/k)]
//	expand(k)      [A.Start*k, A.End*k+k-1]
//	voffset(o<0)   [A.Start+1, r]   r = |o|-th non-Null above A.End, else +inf
//	voffset(o>0)   [q, A.End-1]     q = |o|-th non-Null below A.Start, else -inf
//
// The value-offset washout bounds (q, r) are data-dependent: a value
// offset's output changes as far as the |o|-th non-Null neighbour on the
// unchanged side of the delta, so the halo's width at a density boundary
// is the width of the gap. They are found by scanning the operator's
// *input* outward from the delta edge — sound because registrable views
// are universe-insensitive (algebra.UniverseSensitive), which guarantees
// every value-offset input has finite support and the scan terminates at
// the input's data hull. When the scan budget runs out the side stays
// unbounded, which is conservative (a wider halo is never wrong).
package matview

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/seq"
	"repro/internal/storage"
)

// washoutBudget bounds how many positions a value-offset washout scan
// may visit before giving up and reporting the side unbounded.
const washoutBudget = 1 << 14

// AffectedSpan returns the span of output positions of the block rooted
// at n whose records may change when base's data changes over delta
// (base coordinates). The node must be bound to the *new* data: washout
// scans read the unchanged side of the delta, where old and new agree.
// An unbounded side means the effect reaches arbitrarily far in that
// direction; callers clip against the view span. The second result is
// false when the analysis cannot bound the effect and the caller must
// assume everything changed.
func AffectedSpan(n *algebra.Node, base string, delta seq.Span) (seq.Span, bool) {
	switch n.Kind {
	case algebra.KindBase:
		if n.Name == base {
			return delta, true
		}
		return seq.EmptySpan, true
	case algebra.KindConst:
		return seq.EmptySpan, true
	case algebra.KindSelect, algebra.KindProject:
		return AffectedSpan(n.Inputs[0], base, delta)
	case algebra.KindPosOffset:
		a, ok := AffectedSpan(n.Inputs[0], base, delta)
		if !ok {
			return seq.AllSpan, false
		}
		return a.Shift(-n.Offset), true
	case algebra.KindCompose:
		l, ok := AffectedSpan(n.Inputs[0], base, delta)
		if !ok {
			return seq.AllSpan, false
		}
		r, ok := AffectedSpan(n.Inputs[1], base, delta)
		if !ok {
			return seq.AllSpan, false
		}
		return l.Union(r), true
	case algebra.KindAgg:
		a, ok := AffectedSpan(n.Inputs[0], base, delta)
		if !ok {
			return seq.AllSpan, false
		}
		if a.IsEmpty() {
			return seq.EmptySpan, true
		}
		w := n.Agg.Window
		out := seq.Span{Start: seq.MinPos, End: seq.MaxPos}
		if !w.HiUnbounded && !seq.EffectivelyUnbounded(a.Start) {
			out.Start = seq.ClampPos(a.Start - w.Hi)
		}
		if !w.LoUnbounded && !seq.EffectivelyUnbounded(a.End) {
			out.End = seq.ClampPos(a.End - w.Lo)
		}
		return normalize(out), true
	case algebra.KindCollapse:
		a, ok := AffectedSpan(n.Inputs[0], base, delta)
		if !ok {
			return seq.AllSpan, false
		}
		if a.IsEmpty() {
			return seq.EmptySpan, true
		}
		out := seq.Span{Start: seq.MinPos, End: seq.MaxPos}
		if !seq.EffectivelyUnbounded(a.Start) {
			out.Start = floorDiv(a.Start, n.Factor)
		}
		if !seq.EffectivelyUnbounded(a.End) {
			out.End = floorDiv(a.End, n.Factor)
		}
		return normalize(out), true
	case algebra.KindExpand:
		a, ok := AffectedSpan(n.Inputs[0], base, delta)
		if !ok {
			return seq.AllSpan, false
		}
		if a.IsEmpty() {
			return seq.EmptySpan, true
		}
		out := seq.Span{Start: seq.MinPos, End: seq.MaxPos}
		if !seq.EffectivelyUnbounded(a.Start) {
			out.Start = seq.ClampPos(a.Start * n.Factor)
		}
		if !seq.EffectivelyUnbounded(a.End) {
			out.End = seq.ClampPos(a.End*n.Factor + n.Factor - 1)
		}
		return normalize(out), true
	case algebra.KindValueOffset:
		a, ok := AffectedSpan(n.Inputs[0], base, delta)
		if !ok {
			return seq.AllSpan, false
		}
		if a.IsEmpty() {
			return seq.EmptySpan, true
		}
		if n.Offset < 0 {
			// Backward-looking: outputs strictly above a changed position
			// can see it; the effect washes out at the |o|-th non-Null
			// above the delta (that record shields everything beyond).
			out := seq.Span{Start: seq.MinPos, End: seq.MaxPos}
			if !seq.EffectivelyUnbounded(a.Start) {
				out.Start = seq.ClampPos(a.Start + 1)
			}
			if !seq.EffectivelyUnbounded(a.End) {
				if r, ok := washout(n.Inputs[0], a.End, -n.Offset, +1); ok {
					out.End = r
				}
			}
			return normalize(out), true
		}
		// Forward-looking: outputs strictly below a changed position can
		// see it, down to the |o|-th non-Null below the delta.
		out := seq.Span{Start: seq.MinPos, End: seq.MaxPos}
		if !seq.EffectivelyUnbounded(a.End) {
			out.End = seq.ClampPos(a.End - 1)
		}
		if !seq.EffectivelyUnbounded(a.Start) {
			if q, ok := washout(n.Inputs[0], a.Start, n.Offset, -1); ok {
				out.Start = q
			}
		}
		return normalize(out), true
	default:
		return seq.AllSpan, false
	}
}

// washout finds the position of the count-th non-Null record of node in,
// scanning from edge (exclusive) in direction dir (+1 above, -1 below).
// Returns false when fewer than count non-Nulls exist on that side or
// the scan budget runs out — the caller leaves the side unbounded.
func washout(in *algebra.Node, edge seq.Pos, count int64, dir int64) (seq.Pos, bool) {
	hull := algebra.TransformedHull(in)
	if hull.IsEmpty() {
		return 0, false
	}
	var scan seq.Span
	if dir > 0 {
		scan = seq.NewSpan(edge+1, hull.End)
	} else {
		scan = seq.NewSpan(hull.Start, edge-1)
	}
	if scan.IsEmpty() {
		return 0, false
	}
	if !scan.Bounded() || scan.Len() > washoutBudget {
		return 0, false
	}
	entries, err := algebra.EvalRange(in, scan)
	if err != nil {
		return 0, false
	}
	seen := int64(0)
	if dir > 0 {
		for _, e := range entries {
			seen++
			if seen == count {
				return e.Pos, true
			}
		}
	} else {
		for i := len(entries) - 1; i >= 0; i-- {
			seen++
			if seen == count {
				return entries[i].Pos, true
			}
		}
	}
	return 0, false
}

// normalize snaps effectively unbounded endpoints to the sentinels so
// downstream arithmetic treats them uniformly.
func normalize(s seq.Span) seq.Span {
	if s.IsEmpty() {
		return seq.EmptySpan
	}
	if seq.EffectivelyUnbounded(s.Start) {
		s.Start = seq.MinPos
	}
	if seq.EffectivelyUnbounded(s.End) {
		s.End = seq.MaxPos
	}
	return s
}

// floorDiv divides rounding toward negative infinity.
func floorDiv(a, k seq.Pos) seq.Pos {
	q := a / k
	if a%k != 0 && (a < 0) != (k < 0) {
		q--
	}
	return q
}

// Rebind returns a copy of the block with every base leaf re-bound to
// the sequence lookup returns for its name (leaves lookup rejects are
// kept as registered). Maintenance uses it to evaluate the registered
// block against post-write data without mutating the immutable node.
func Rebind(n *algebra.Node, lookup func(name string) (seq.Sequence, bool)) (*algebra.Node, error) {
	if n.Kind == algebra.KindBase {
		s, ok := lookup(n.Name)
		if !ok {
			return n, nil
		}
		if !compatibleSchemas(s.Info().Schema, n.Schema) {
			return nil, fmt.Errorf("matview: rebind %q: schema %v does not match registered %v",
				n.Name, s.Info().Schema, n.Schema)
		}
		cp := *n
		cp.Seq = s
		return &cp, nil
	}
	if len(n.Inputs) == 0 {
		return n, nil
	}
	changed := false
	inputs := make([]*algebra.Node, len(n.Inputs))
	for i, in := range n.Inputs {
		r, err := Rebind(in, lookup)
		if err != nil {
			return nil, err
		}
		inputs[i] = r
		if r != in {
			changed = true
		}
	}
	if !changed {
		return n, nil
	}
	cp := *n
	cp.Inputs = inputs
	return &cp, nil
}

// MaintainAction is the maintenance planner's decision for one view
// after one base delta.
type MaintainAction int

const (
	// MaintainNone: the delta cannot touch the view's span; nothing to do.
	MaintainNone MaintainAction = iota
	// MaintainStitch: re-evaluate the affected sub-span and splice it
	// into the backing store; the rest of the span is provably unchanged.
	MaintainStitch
	// MaintainShrink: the unaffected prefix stays valid; the span is
	// trimmed to it without re-evaluation (partial-span matching serves
	// the prefix; queries recompute the rest).
	MaintainShrink
	// MaintainInvalidate: maintenance is not worth it (or not possible);
	// the view is invalidated as before.
	MaintainInvalidate
)

// String returns the action's name.
func (a MaintainAction) String() string {
	switch a {
	case MaintainNone:
		return "none"
	case MaintainStitch:
		return "stitch"
	case MaintainShrink:
		return "shrink"
	case MaintainInvalidate:
		return "invalidate"
	default:
		return fmt.Sprintf("MaintainAction(%d)", int(a))
	}
}

// MaintenanceReport records one maintenance decision for audit: EXPLAIN
// surfaces it and planlint's ivm/* invariants re-verify it.
type MaintenanceReport struct {
	ViewName string
	Base     string
	// Delta is the changed base span that triggered maintenance.
	Delta seq.Span
	// Affected is the analyzed halo in view-output coordinates, before
	// clipping to the view span. Unbounded sides use seq.MinPos/MaxPos.
	Affected seq.Span
	// AffectedKnown is false when the analysis could not bound the halo.
	AffectedKnown bool
	Action        MaintainAction
	// StitchSpan is the re-evaluated sub-span (stitch only).
	StitchSpan seq.Span
	// OldSpan/NewSpan are the view spans before and after maintenance
	// (NewSpan is empty for invalidation).
	OldSpan, NewSpan seq.Span
	// Epoch is the MVCC epoch the maintained generation is valid from.
	Epoch int64
	// StitchCost/RecomputeCost are the planner costs the stitch decision
	// compared (stitch and shrink/invalidate outcomes both record them).
	StitchCost, RecomputeCost float64
}

// String renders the report for EXPLAIN and test failures.
func (m MaintenanceReport) String() string {
	s := fmt.Sprintf("ivm: view %q base %q delta %v affected %v action %s",
		m.ViewName, m.Base, m.Delta, m.Affected, m.Action)
	switch m.Action {
	case MaintainStitch:
		s += fmt.Sprintf(" stitch %v cost %.2f vs recompute %.2f", m.StitchSpan, m.StitchCost, m.RecomputeCost)
	case MaintainShrink:
		s += fmt.Sprintf(" span %v -> %v", m.OldSpan, m.NewSpan)
	case MaintainNone, MaintainInvalidate:
	}
	return s
}

// SwapGeneration replaces the named view with a new generation carrying
// the maintained store and span, visible to readers pinned at or after
// epoch. The old generation is marked invalid from the same epoch and —
// when epoch > 0 — retained for already-pinned readers until GC; with
// epoch 0 (library use, no MVCC readers) it is dropped immediately. The
// new generation keeps the registered node and canonical form and
// inherits the hit/miss counters.
func (r *Registry) SwapGeneration(name string, span seq.Span, store storage.Store, epoch int64) (*View, error) {
	if !span.Bounded() {
		return nil, fmt.Errorf("matview: swap %q: span %v is unbounded", name, span)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("matview: swap %q: no such view", name)
	}
	nv := &View{
		Name:  name,
		Node:  old.Node,
		Canon: old.Canon,
		Span:  span,
		Store: store,
		// A new generation becomes visible at the epoch of the write it
		// incorporates.
		FromEpoch: epoch,
	}
	nv.hits.Store(old.Hits())
	nv.misses.Store(old.Misses())
	if epoch > 0 {
		// Pinned readers below epoch keep the old generation; it leaves
		// byName (the name now resolves to the new generation) but stays
		// in order until GC reclaims it.
		old.invalidFrom.CompareAndSwap(0, epoch)
		r.byName[name] = nv
		r.order = append(r.order, nv)
		return nv, nil
	}
	// No MVCC readers: replace in place.
	r.byName[name] = nv
	for i, v := range r.order {
		if v == old {
			r.order[i] = nv
			break
		}
	}
	return nv, nil
}
