package matview

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/canon"
	"repro/internal/expr"
	"repro/internal/seq"
)

func testBase(t *testing.T, name string) *algebra.Node {
	t.Helper()
	schema := seq.MustSchema(
		seq.Field{Name: "v", Type: seq.TFloat},
		seq.Field{Name: "w", Type: seq.TInt},
	)
	var entries []seq.Entry
	for p := int64(1); p <= 20; p++ {
		entries = append(entries, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p) / 2), seq.Int(p)}})
	}
	m, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	return algebra.Base(name, m)
}

func col(t *testing.T, n *algebra.Node, name string) *expr.Col {
	t.Helper()
	c, err := expr.NewCol(n.Schema, name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func gt(t *testing.T, l, r expr.Expr) expr.Expr {
	t.Helper()
	e, err := expr.NewBin(expr.OpGt, l, r)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func sel(t *testing.T, in *algebra.Node, pred expr.Expr) *algebra.Node {
	t.Helper()
	n, err := algebra.Select(in, pred)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// materialize evaluates the block over span and registers it.
func materialize(t *testing.T, r *Registry, name string, n *algebra.Node, span seq.Span) *View {
	t.Helper()
	entries, err := algebra.EvalRange(n, span)
	if err != nil {
		t.Fatal(err)
	}
	kept := entries[:0]
	for _, e := range entries {
		if !e.Rec.IsNull() {
			kept = append(kept, e)
		}
	}
	data, err := seq.NewMaterialized(n.Schema, kept)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Register(name, n, data, span)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func canonOf(t *testing.T, n *algebra.Node) *canon.Canon {
	t.Helper()
	c, err := canon.Canonicalize(n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExactMatchModuloPermutation(t *testing.T) {
	r := New()
	base := testBase(t, "s")
	block := sel(t, base, gt(t, col(t, base, "v"), expr.Literal(seq.Float(3))))
	v := materialize(t, r, "hot", block, seq.NewSpan(1, 20))

	// The same block asked with its output columns permuted by a
	// projection still matches; the ColMap undoes the permutation.
	qBase := testBase(t, "s")
	qSel := sel(t, qBase, gt(t, col(t, qBase, "v"), expr.Literal(seq.Float(3))))
	perm, err := algebra.Project(qSel, []algebra.ProjItem{
		{Expr: col(t, qSel, "w"), Name: "w"},
		{Expr: col(t, qSel, "v"), Name: "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := r.Match(canonOf(t, perm), seq.NewSpan(5, 15))
	if !ok {
		t.Fatal("permuted block did not match the view")
	}
	if m.View != v || len(m.Residual) != 0 {
		t.Fatalf("want exact match of %q, got view=%q residual=%v", v.Name, m.View.Name, m.Residual)
	}
	// Block col 0 is w (stored col 1), block col 1 is v (stored col 0).
	if m.ColMap[0] != 1 || m.ColMap[1] != 0 {
		t.Fatalf("ColMap = %v, want [1 0]", m.ColMap)
	}
}

func TestConjunctSubsumption(t *testing.T) {
	r := New()
	base := testBase(t, "s")
	pv := gt(t, col(t, base, "v"), expr.Literal(seq.Float(3)))
	materialize(t, r, "wide", sel(t, base, pv), seq.NewSpan(1, 20))

	// Query adds a conjunct: matches with that conjunct as residual.
	qBase := testBase(t, "s")
	pq1 := gt(t, col(t, qBase, "v"), expr.Literal(seq.Float(3)))
	pq2 := gt(t, col(t, qBase, "w"), expr.Literal(seq.Int(10)))
	and, err := expr.And(pq1, pq2)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := r.Match(canonOf(t, sel(t, qBase, and)), seq.NewSpan(1, 20))
	if !ok {
		t.Fatal("superset-conjunct query did not match")
	}
	if len(m.Residual) != 1 {
		t.Fatalf("want 1 residual conjunct, got %v", m.Residual)
	}
	// The residual references the stored schema: column 1 (w).
	found := false
	var walk func(e expr.Expr)
	walk = func(e expr.Expr) {
		switch v := e.(type) {
		case *expr.Col:
			if v.Index == 1 {
				found = true
			}
		case *expr.Bin:
			walk(v.L)
			walk(v.R)
		}
	}
	walk(m.Residual[0])
	if !found {
		t.Fatalf("residual %v does not reference stored column 1", m.Residual[0])
	}

	// The reverse — view filters MORE than the query — must not match.
	bare := testBase(t, "s")
	if _, ok := r.Match(canonOf(t, sel(t, bare, gt(t, col(t, bare, "w"), expr.Literal(seq.Int(10))))), seq.NewSpan(1, 20)); ok {
		t.Fatal("view with extra conjunct wrongly matched a weaker query")
	}
}

func TestUnfilteredViewServesSelection(t *testing.T) {
	r := New()
	base := testBase(t, "s")
	shifted, err := algebra.PosOffset(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	materialize(t, r, "shift2", shifted, seq.NewSpan(1, 22))

	qBase := testBase(t, "s")
	qShift, err := algebra.PosOffset(qBase, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := sel(t, qShift, gt(t, col(t, qShift, "v"), expr.Literal(seq.Float(5))))
	m, ok := r.Match(canonOf(t, q), seq.NewSpan(3, 20))
	if !ok {
		t.Fatal("selection over a materialized unfiltered block did not match")
	}
	if len(m.Residual) != 1 {
		t.Fatalf("want the whole predicate as residual, got %v", m.Residual)
	}
}

func TestSpanMustCover(t *testing.T) {
	r := New()
	base := testBase(t, "s")
	block := sel(t, base, gt(t, col(t, base, "v"), expr.Literal(seq.Float(0))))
	v := materialize(t, r, "narrow", block, seq.NewSpan(5, 10))

	c := canonOf(t, block)
	if _, ok := r.Match(c, seq.NewSpan(1, 20)); ok {
		t.Fatal("view with short span wrongly matched")
	}
	if v.Misses() != 1 {
		t.Fatalf("span-failing structural match should record a miss, got %d", v.Misses())
	}
	if m, ok := r.Match(c, seq.NewSpan(6, 9)); !ok || m.View != v {
		t.Fatal("covered sub-span did not match")
	}
}

func TestBestMatchFewestResiduals(t *testing.T) {
	r := New()
	b1 := testBase(t, "s")
	materialize(t, r, "loose", sel(t, b1, gt(t, col(t, b1, "v"), expr.Literal(seq.Float(3)))), seq.NewSpan(1, 20))
	b2 := testBase(t, "s")
	p1 := gt(t, col(t, b2, "v"), expr.Literal(seq.Float(3)))
	p2 := gt(t, col(t, b2, "w"), expr.Literal(seq.Int(10)))
	and, err := expr.And(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	materialize(t, r, "tight", sel(t, b2, and), seq.NewSpan(1, 20))

	m, ok := r.Match(canonOf(t, sel(t, b2, and)), seq.NewSpan(1, 20))
	if !ok {
		t.Fatal("no match")
	}
	if m.View.Name != "tight" || len(m.Residual) != 0 {
		t.Fatalf("want exact view %q, got %q with residual %v", "tight", m.View.Name, m.Residual)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := New()
	base := testBase(t, "quakes")
	block := sel(t, base, gt(t, col(t, base, "v"), expr.Literal(seq.Float(1))))
	materialize(t, r, "a", block, seq.NewSpan(1, 20))

	if _, err := r.Register("a", block, seq.MustMaterialized(block.Schema, nil), seq.NewSpan(1, 20)); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := r.Register("b", testBase(t, "quakes"), seq.MustMaterialized(base.Schema, nil), seq.NewSpan(1, 20)); err == nil {
		t.Fatal("bare base registered as a view")
	}

	other := testBase(t, "volcanos")
	materialize(t, r, "c", sel(t, other, gt(t, col(t, other, "v"), expr.Literal(seq.Float(1)))), seq.NewSpan(1, 20))
	if got := r.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}

	dropped := r.InvalidateBase("quakes")
	if len(dropped) != 1 || dropped[0] != "a" {
		t.Fatalf("InvalidateBase dropped %v, want [a]", dropped)
	}
	if _, ok := r.Get("a"); ok {
		t.Fatal("invalidated view still present")
	}
	if !r.Drop("c") || r.Drop("c") {
		t.Fatal("Drop misbehaved")
	}
	if r.Len() != 0 {
		t.Fatalf("registry not empty: %d", r.Len())
	}
}
