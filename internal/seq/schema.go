package seq

import (
	"fmt"
	"strings"
)

// Field is a single named, typed attribute of a record schema.
type Field struct {
	Name string
	Type Type
}

// Schema describes the record type of a sequence: an ordered list of named
// attributes of atomic type (paper §2: R = <A1:T1, ..., AN:TN>).
// Schemas are immutable after construction.
type Schema struct {
	fields []Field
	byName map[string]int
}

// NewSchema builds a schema from the given fields. Duplicate attribute
// names are rejected so that name resolution is unambiguous.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields: append([]Field(nil), fields...),
		byName: make(map[string]int, len(fields)),
	}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("seq: field %d has empty name", i)
		}
		if f.Type == TInvalid {
			return nil, fmt.Errorf("seq: field %q has invalid type", f.Name)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("seq: duplicate field name %q", f.Name)
		}
		s.byName[f.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. It is intended for
// statically known schemas in tests and examples.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumFields returns the number of attributes in the schema.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th attribute.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Fields returns a copy of the attribute list.
func (s *Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// Index returns the position of the named attribute, or -1 if absent.
// Lookup first tries an exact match; if the name is unqualified (contains
// no '.') it also matches a unique qualified attribute whose suffix after
// the last '.' equals the name. An ambiguous unqualified name returns -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	if strings.Contains(name, ".") {
		return -1
	}
	found := -1
	for i, f := range s.fields {
		if j := strings.LastIndexByte(f.Name, '.'); j >= 0 && f.Name[j+1:] == name {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = i
		}
	}
	return found
}

// Concat builds the schema of a composed record: the attributes of s
// followed by those of o. Name collisions are disambiguated by prefixing
// the colliding attributes with the given qualifiers (e.g. "ibm.close").
// Empty qualifiers fall back to "l" and "r".
func (s *Schema) Concat(o *Schema, leftQual, rightQual string) (*Schema, error) {
	if leftQual == "" {
		leftQual = "l"
	}
	if rightQual == "" {
		rightQual = "r"
	}
	fields := make([]Field, 0, len(s.fields)+len(o.fields))
	collide := make(map[string]bool)
	for _, f := range s.fields {
		if o.Index(f.Name) >= 0 {
			collide[f.Name] = true
		}
	}
	used := make(map[string]bool, len(s.fields)+len(o.fields))
	qualify := func(qual string, f Field) Field {
		name := f.Name
		if collide[name] {
			name = qual + "." + name
		}
		// Qualification can itself collide with a pre-qualified name
		// (e.g. a field literally named "l.volume"); keep qualifying
		// until unique.
		for used[name] {
			name = qual + "." + name
		}
		used[name] = true
		return Field{Name: name, Type: f.Type}
	}
	for _, f := range s.fields {
		fields = append(fields, qualify(leftQual, f))
	}
	for _, f := range o.fields {
		fields = append(fields, qualify(rightQual, f))
	}
	return NewSchema(fields...)
}

// Project builds the schema consisting of the attributes at the given
// indexes, in order.
func (s *Schema) Project(idx []int) (*Schema, error) {
	fields := make([]Field, len(idx))
	for k, i := range idx {
		if i < 0 || i >= len(s.fields) {
			return nil, fmt.Errorf("seq: projection index %d out of range", i)
		}
		fields[k] = s.fields[i]
	}
	return NewSchema(fields...)
}

// Rename returns a copy of the schema with the i-th attribute renamed.
func (s *Schema) Rename(i int, name string) (*Schema, error) {
	fields := s.Fields()
	if i < 0 || i >= len(fields) {
		return nil, fmt.Errorf("seq: rename index %d out of range", i)
	}
	fields[i].Name = name
	return NewSchema(fields...)
}

// Equal reports whether two schemas have identical field lists.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "<name type, ...>".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Type.String())
	}
	b.WriteByte('>')
	return b.String()
}
