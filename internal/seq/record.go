package seq

import "strings"

// Record is a tuple of atomic values conforming to some schema. The nil
// Record is the distinguished Null record of the model (paper §2): every
// position of a sequence that carries no data maps to it. Code must treat
// a nil Record as Null and must never index into one.
type Record []Value

// IsNull reports whether the record is the Null record.
func (r Record) IsNull() bool { return r == nil }

// Equal reports whether two records have identical values (or are both
// Null).
func (r Record) Equal(o Record) bool {
	if r.IsNull() || o.IsNull() {
		return r.IsNull() && o.IsNull()
	}
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the record (nil for Null).
func (r Record) Clone() Record {
	if r.IsNull() {
		return nil
	}
	return append(Record(nil), r...)
}

// Concat returns the composition of two records, as produced by the
// Compose operator: the values of r followed by the values of o. If either
// record is Null the result is Null (paper §2.1).
func (r Record) Concat(o Record) Record {
	if r.IsNull() || o.IsNull() {
		return nil
	}
	out := make(Record, 0, len(r)+len(o))
	out = append(out, r...)
	return append(out, o...)
}

// Project returns the record restricted to the attributes at the given
// indexes. Projecting the Null record yields the Null record.
func (r Record) Project(idx []int) Record {
	if r.IsNull() {
		return nil
	}
	out := make(Record, len(idx))
	for k, i := range idx {
		out[k] = r[i]
	}
	return out
}

// Conforms reports whether the record's arity and value types match the
// schema. The Null record conforms to every schema.
func (r Record) Conforms(s *Schema) bool {
	if r.IsNull() {
		return true
	}
	if len(r) != s.NumFields() {
		return false
	}
	for i := range r {
		if r[i].T != s.Field(i).Type {
			return false
		}
	}
	return true
}

// String renders the record as "<v1, v2, ...>", or "NULL" for the Null
// record.
func (r Record) String() string {
	if r.IsNull() {
		return "NULL"
	}
	var b strings.Builder
	b.WriteByte('<')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte('>')
	return b.String()
}
