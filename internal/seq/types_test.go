package seq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TInt: "int", TFloat: "float", TString: "string", TBool: "bool", TInvalid: "invalid",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestTypeNumeric(t *testing.T) {
	if !TInt.Numeric() || !TFloat.Numeric() {
		t.Error("int and float must be numeric")
	}
	if TString.Numeric() || TBool.Numeric() || TInvalid.Numeric() {
		t.Error("string/bool/invalid must not be numeric")
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 {
		t.Error("Int round trip failed")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float round trip failed")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("AsFloat must widen ints")
	}
	if Str("x").AsStr() != "x" {
		t.Error("Str round trip failed")
	}
	if !Bool(true).AsBool() {
		t.Error("Bool round trip failed")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on string", func() { Str("x").AsInt() })
	mustPanic("AsFloat on bool", func() { Bool(true).AsFloat() })
	mustPanic("AsStr on int", func() { Int(1).AsStr() })
	mustPanic("AsBool on float", func() { Float(1).AsBool() })
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-4), "-4"},
		{Float(1.5), "1.5"},
		{Str("hi"), `"hi"`},
		{Bool(false), "false"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Int(3)) || Int(3).Equal(Int(4)) {
		t.Error("int equality wrong")
	}
	if Int(3).Equal(Float(3)) {
		t.Error("Equal must not coerce int to float")
	}
	if !Float(math.NaN()).Equal(Float(math.NaN())) {
		t.Error("NaN must equal NaN under Equal (record identity)")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality wrong")
	}
	if !Bool(true).Equal(Bool(true)) || Bool(true).Equal(Bool(false)) {
		t.Error("bool equality wrong")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(2.5), Int(2), 1},
		{Float(2), Int(2), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Fatalf("Compare(%v, %v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareIncomparable(t *testing.T) {
	if _, err := Int(1).Compare(Str("a")); err == nil {
		t.Error("comparing int with string must fail")
	}
	if _, err := Bool(true).Compare(Float(1)); err == nil {
		t.Error("comparing bool with float must fail")
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Int(a).Compare(Int(b))
		y, err2 := Int(b).Compare(Int(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareConsistentWithFloatOrder(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		got, err := Float(a).Compare(Float(b))
		if err != nil {
			return false
		}
		switch {
		case a < b:
			return got < 0
		case a > b:
			return got > 0
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
