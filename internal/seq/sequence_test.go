package seq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func closeOnly() *Schema {
	return MustSchema(Field{Name: "close", Type: TFloat})
}

func entriesFrom(positions []Pos, base float64) []Entry {
	es := make([]Entry, len(positions))
	for i, p := range positions {
		es[i] = Entry{Pos: p, Rec: Record{Float(base + float64(p))}}
	}
	return es
}

func TestMaterializedBasics(t *testing.T) {
	m := MustMaterialized(closeOnly(), entriesFrom([]Pos{5, 1, 3}, 0))
	info := m.Info()
	if info.Span != NewSpan(1, 5) {
		t.Errorf("span = %v, want [1, 5]", info.Span)
	}
	if m.Count() != 3 {
		t.Errorf("count = %d, want 3", m.Count())
	}
	if got := info.Density; got != 0.6 {
		t.Errorf("density = %g, want 0.6", got)
	}
}

func TestMaterializedRejectsDuplicatesAndBadRecords(t *testing.T) {
	s := closeOnly()
	if _, err := NewMaterialized(s, []Entry{
		{Pos: 1, Rec: Record{Float(1)}},
		{Pos: 1, Rec: Record{Float(2)}},
	}); err == nil {
		t.Error("duplicate positions must be rejected")
	}
	if _, err := NewMaterialized(s, []Entry{{Pos: 1, Rec: Record{Int(1)}}}); err == nil {
		t.Error("non-conforming record must be rejected")
	}
	if _, err := NewMaterialized(nil, nil); err == nil {
		t.Error("nil schema must be rejected")
	}
	if _, err := NewMaterialized(s, []Entry{{Pos: MaxPos, Rec: Record{Float(1)}}}); err == nil {
		t.Error("sentinel position must be rejected")
	}
}

func TestMaterializedDropsNullEntries(t *testing.T) {
	m := MustMaterialized(closeOnly(), []Entry{
		{Pos: 1, Rec: Record{Float(1)}},
		{Pos: 2, Rec: nil},
	})
	if m.Count() != 1 {
		t.Errorf("count = %d, want 1 (Null entries are implicit)", m.Count())
	}
}

func TestMaterializedProbe(t *testing.T) {
	m := MustMaterialized(closeOnly(), entriesFrom([]Pos{1, 3, 5}, 0))
	r, err := m.Probe(3)
	if err != nil || r.IsNull() || r[0].AsFloat() != 3 {
		t.Errorf("Probe(3) = %v, %v", r, err)
	}
	r, err = m.Probe(2)
	if err != nil || !r.IsNull() {
		t.Errorf("Probe(2) must be Null, got %v", r)
	}
	r, err = m.Probe(99)
	if err != nil || !r.IsNull() {
		t.Errorf("Probe outside span must be Null, got %v", r)
	}
}

func TestMaterializedScanRanges(t *testing.T) {
	m := MustMaterialized(closeOnly(), entriesFrom([]Pos{1, 3, 5, 7}, 0))
	cases := []struct {
		span Span
		want []Pos
	}{
		{AllSpan, []Pos{1, 3, 5, 7}},
		{NewSpan(3, 5), []Pos{3, 5}},
		{NewSpan(2, 2), nil},
		{NewSpan(6, 100), []Pos{7}},
		{EmptySpan, nil},
	}
	for _, c := range cases {
		got, err := Collect(m.Scan(c.span))
		if err != nil {
			t.Fatalf("Scan(%v): %v", c.span, err)
		}
		var gotPos []Pos
		for _, e := range got {
			gotPos = append(gotPos, e.Pos)
		}
		if len(gotPos) != len(c.want) {
			t.Errorf("Scan(%v) positions = %v, want %v", c.span, gotPos, c.want)
			continue
		}
		for i := range gotPos {
			if gotPos[i] != c.want[i] {
				t.Errorf("Scan(%v) positions = %v, want %v", c.span, gotPos, c.want)
				break
			}
		}
	}
}

func TestMaterializedWithSpan(t *testing.T) {
	m := MustMaterialized(closeOnly(), entriesFrom([]Pos{200, 500}, 0))
	w, err := m.WithSpan(NewSpan(1, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if w.Info().Span != NewSpan(1, 1000) {
		t.Errorf("span override did not take: %v", w.Info().Span)
	}
	if w.Info().Density != 2.0/1000.0 {
		t.Errorf("density with explicit span = %g", w.Info().Density)
	}
	if _, err := m.WithSpan(NewSpan(300, 400)); err == nil {
		t.Error("span not covering entries must be rejected")
	}
}

func TestConstantSequence(t *testing.T) {
	s := closeOnly()
	c, err := NewConstant(s, Record{Float(7)})
	if err != nil {
		t.Fatal(err)
	}
	if c.Info().Span != AllSpan || c.Info().Density != 1 {
		t.Error("constant sequence must have unbounded span and density 1")
	}
	r, err := c.Probe(-12345)
	if err != nil || r[0].AsFloat() != 7 {
		t.Errorf("Probe = %v, %v", r, err)
	}
	got, err := Collect(c.Scan(NewSpan(10, 12)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Pos != 10 || got[2].Pos != 12 {
		t.Errorf("constant scan = %v", got)
	}
	if err := c.Scan(AllSpan).Err(); err == nil {
		t.Error("unbounded constant scan must error")
	}
	if _, err := NewConstant(s, nil); err == nil {
		t.Error("Null constant must be rejected")
	}
	if _, err := NewConstant(s, Record{Int(1)}); err == nil {
		t.Error("non-conforming constant must be rejected")
	}
}

func TestCollectClonesRecords(t *testing.T) {
	m := MustMaterialized(closeOnly(), entriesFrom([]Pos{1}, 0))
	got, err := Collect(m.Scan(AllSpan))
	if err != nil {
		t.Fatal(err)
	}
	got[0].Rec[0] = Float(99)
	r, _ := m.Probe(1)
	if r[0].AsFloat() != 1 {
		t.Error("Collect must clone records")
	}
}

func TestErrCursor(t *testing.T) {
	c := ErrCursor(errForTest)
	if _, _, ok := c.Next(); ok {
		t.Error("error cursor must yield nothing")
	}
	if c.Err() != errForTest {
		t.Error("error cursor must report its error")
	}
	if c.Close() != nil {
		t.Error("Close must succeed")
	}
}

var errForTest = errTest{}

type errTest struct{}

func (errTest) Error() string { return "test error" }

// Property: scanning a random materialized sequence over a random span
// yields exactly the entries whose positions lie in the span, in order.
func TestMaterializedScanProperty(t *testing.T) {
	f := func(seed int64, lo, hi int8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40)
		posSet := make(map[Pos]bool)
		for i := 0; i < n; i++ {
			posSet[Pos(rng.Intn(100))] = true
		}
		var positions []Pos
		for p := range posSet {
			positions = append(positions, p)
		}
		sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
		m := MustMaterialized(closeOnly(), entriesFrom(positions, 0))
		span := Span{Start: Pos(lo), End: Pos(hi)}
		got, err := Collect(m.Scan(span))
		if err != nil {
			return false
		}
		var want []Pos
		for _, p := range positions {
			if span.Contains(p) {
				want = append(want, p)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Pos != want[i] || got[i].Rec[0].AsFloat() != float64(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
