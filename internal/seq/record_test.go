package seq

import "testing"

func TestRecordNullSemantics(t *testing.T) {
	var null Record
	if !null.IsNull() {
		t.Error("nil record must be Null")
	}
	r := Record{Int(1)}
	if r.IsNull() {
		t.Error("non-nil record must not be Null")
	}
	if !null.Equal(nil) {
		t.Error("Null == Null")
	}
	if r.Equal(nil) || null.Equal(r) {
		t.Error("Null != non-Null")
	}
}

func TestRecordEqual(t *testing.T) {
	a := Record{Int(1), Str("x")}
	b := Record{Int(1), Str("x")}
	c := Record{Int(1), Str("y")}
	d := Record{Int(1)}
	if !a.Equal(b) {
		t.Error("identical records must be equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("different records must not be equal")
	}
}

func TestRecordClone(t *testing.T) {
	if Record(nil).Clone() != nil {
		t.Error("cloning Null must give Null")
	}
	a := Record{Int(1)}
	b := a.Clone()
	b[0] = Int(2)
	if a[0].AsInt() != 1 {
		t.Error("clone must not alias the original")
	}
}

func TestRecordConcat(t *testing.T) {
	a := Record{Int(1)}
	b := Record{Str("x")}
	c := a.Concat(b)
	if len(c) != 2 || !c[0].Equal(Int(1)) || !c[1].Equal(Str("x")) {
		t.Errorf("unexpected concat %v", c)
	}
	if a.Concat(nil) != nil || Record(nil).Concat(b) != nil {
		t.Error("composing with Null must give Null (paper §2.1)")
	}
}

func TestRecordConcatDoesNotAliasLeft(t *testing.T) {
	a := make(Record, 1, 4) // spare capacity would let append scribble on a
	a[0] = Int(1)
	c := a.Concat(Record{Int(2)})
	c[0] = Int(9)
	if a[0].AsInt() != 1 {
		t.Error("Concat must copy, not alias, the left record")
	}
}

func TestRecordProject(t *testing.T) {
	r := Record{Int(1), Str("x"), Float(2.5)}
	p := r.Project([]int{2, 0})
	if len(p) != 2 || !p[0].Equal(Float(2.5)) || !p[1].Equal(Int(1)) {
		t.Errorf("unexpected projection %v", p)
	}
	if Record(nil).Project([]int{0}) != nil {
		t.Error("projecting Null must give Null (paper §2.1)")
	}
}

func TestRecordConforms(t *testing.T) {
	s := MustSchema(Field{Name: "a", Type: TInt}, Field{Name: "b", Type: TString})
	if !(Record{Int(1), Str("x")}).Conforms(s) {
		t.Error("conforming record rejected")
	}
	if (Record{Int(1)}).Conforms(s) {
		t.Error("wrong arity accepted")
	}
	if (Record{Str("x"), Str("y")}).Conforms(s) {
		t.Error("wrong type accepted")
	}
	if !Record(nil).Conforms(s) {
		t.Error("Null conforms to every schema")
	}
}

func TestRecordString(t *testing.T) {
	if got := Record(nil).String(); got != "NULL" {
		t.Errorf("Null String() = %q", got)
	}
	if got := (Record{Int(1), Str("x")}).String(); got != `<1, "x">` {
		t.Errorf("String() = %q", got)
	}
}
