package seq

import (
	"strings"
	"testing"
)

var batchSchema = MustSchema(
	Field{Name: "sym", Type: TString},
	Field{Name: "px", Type: TFloat},
	Field{Name: "qty", Type: TInt},
	Field{Name: "buy", Type: TBool},
)

func batchEntry(pos Pos, sym string, px float64, qty int64, buy bool) Entry {
	return Entry{Pos: pos, Rec: Record{Str(sym), Float(px), Int(qty), Bool(buy)}}
}

func TestBitmap(t *testing.T) {
	b := make(Bitmap, bitmapWords(130))
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(130); got != 8 {
		t.Errorf("Count(130) = %d, want 8", got)
	}
	// Count honors the prefix length, including mid-word cutoffs.
	if got := b.Count(64); got != 3 {
		t.Errorf("Count(64) = %d, want 3", got)
	}
	if got := b.Count(65); got != 4 {
		t.Errorf("Count(65) = %d, want 4", got)
	}
	b.Clear(64)
	if b.Get(64) || b.Count(130) != 7 {
		t.Error("Clear(64) did not drop exactly one bit")
	}
}

func TestBitmapNextSet(t *testing.T) {
	b := make(Bitmap, bitmapWords(300))
	for _, i := range []int{3, 64, 200, 299} {
		b.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 3}, {3, 3}, {4, 64}, {64, 64}, {65, 200}, // word-boundary hops
		{201, 299}, {299, 299}, {300, 300},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from, 300); got != c.want {
			t.Errorf("NextSet(%d, 300) = %d, want %d", c.from, got, c.want)
		}
	}
	// The length bound cuts off bits at and past n.
	if got := b.NextSet(201, 250); got != 250 {
		t.Errorf("NextSet(201, 250) = %d, want 250", got)
	}
	empty := make(Bitmap, bitmapWords(128))
	if got := empty.NextSet(0, 128); got != 128 {
		t.Errorf("NextSet over empty bitmap = %d, want 128", got)
	}
}

func TestBatchAppendRunRows(t *testing.T) {
	in := NewIntern()
	b := NewBatchFor(batchSchema, 8)
	rec := Record{Str("ibm"), Float(1.5), Int(7), Bool(true)}
	if err := b.AppendRunRows(10, 3, rec, in); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow(13, Record{Str("dec"), Float(2.5), Int(8), Bool(false)}, in); err != nil {
		t.Fatal(err)
	}
	// A run past the initial capacity forces the extend-in-place helpers
	// through their grow path.
	rec2 := Record{Str("ibm"), Float(9), Int(1), Bool(false)}
	if err := b.AppendRunRows(14, 70, rec2, in); err != nil {
		t.Fatal(err)
	}
	if b.Rows() != 74 {
		t.Fatalf("Rows() = %d, want 74", b.Rows())
	}
	for i := 0; i < 74; i++ {
		wantPos := Pos(10 + i)
		if b.Pos[i] != wantPos || !b.Valid.Get(i) {
			t.Fatalf("row %d: pos %d valid %v, want pos %d valid", i, b.Pos[i], b.Valid.Get(i), wantPos)
		}
		var want Record
		switch {
		case i < 3:
			want = rec
		case i == 3:
			want = Record{Str("dec"), Float(2.5), Int(8), Bool(false)}
		default:
			want = rec2
		}
		if got := b.Row(i, in); !got.Equal(want) {
			t.Fatalf("row %d = %v, want %v", i, got, want)
		}
	}
	// The run's string is interned once, not once per row.
	if hits, misses := in.Stats().StrHits, in.Stats().StrMisses; misses != 2 || hits != 1 {
		t.Errorf("intern stats = %d hits / %d misses, want 1/2", hits, misses)
	}
	// Type mismatches are rejected with the AppendRow error shape.
	if err := b.AppendRunRows(100, 2, Record{Int(1), Float(1), Int(1), Bool(true)}, in); err == nil ||
		!strings.Contains(err.Error(), "type mismatch") {
		t.Errorf("type mismatch error = %v", err)
	}
}

func TestInternRecTableGrow(t *testing.T) {
	// Push well past the initial table size so lookup/insert survive
	// several grow cycles, and duplicates still hit.
	in := NewIntern()
	b := NewBatchFor(batchSchema, 512)
	for i := 0; i < 500; i++ {
		e := batchEntry(Pos(i+1), "sym", float64(i%250), int64(i%250), i%2 == 0)
		if err := b.AppendRow(e.Pos, e.Rec, in); err != nil {
			t.Fatal(err)
		}
	}
	var out []Entry
	out = b.AppendEntries(out, in)
	if len(out) != 500 {
		t.Fatalf("AppendEntries returned %d rows, want 500", len(out))
	}
	seen := map[string]Record{}
	for i, e := range out {
		want := batchEntry(Pos(i+1), "sym", float64(i%250), int64(i%250), i%2 == 0)
		if e.Pos != want.Pos || !e.Rec.Equal(want.Rec) {
			t.Fatalf("entry %d = %v, want %v", i, e, want)
		}
		k := e.Rec.String()
		if prev, ok := seen[k]; ok && &prev[0] != &e.Rec[0] {
			t.Fatalf("entry %d: duplicate record %s not canonicalized", i, k)
		}
		seen[k] = e.Rec
	}
	st := in.Stats()
	if st.RecMisses != 250 || st.RecHits != 250 {
		t.Errorf("rec stats = %d hits / %d misses, want 250/250", st.RecHits, st.RecMisses)
	}
}

func TestVecRoundtrip(t *testing.T) {
	in := NewIntern()
	vals := []Value{Str("a"), Float(1.5), Int(-7), Bool(true), Str("a"), Str("b")}
	types := []Type{TString, TFloat, TInt, TBool, TString, TString}
	for i, val := range vals {
		v := &Vec{T: types[i]}
		if err := v.AppendValue(val, in); err != nil {
			t.Fatal(err)
		}
		if v.Len() != 1 {
			t.Fatalf("len = %d", v.Len())
		}
		if got := v.Value(0, in); !got.Equal(val) {
			t.Errorf("roundtrip %v -> %v", val, got)
		}
		// AppendFrom copies the raw payload.
		w := &Vec{T: types[i]}
		w.AppendFrom(v, 0)
		if got := w.Value(0, in); !got.Equal(val) {
			t.Errorf("AppendFrom %v -> %v", val, got)
		}
	}
	v := &Vec{T: TInt}
	if err := v.AppendValue(Float(1), in); err == nil {
		t.Error("type-mismatched append succeeded")
	} else if !strings.Contains(err.Error(), "type mismatch") {
		t.Errorf("unexpected error %v", err)
	}
	// Repeated strings intern to one handle.
	s := &Vec{T: TString}
	s.AppendValue(Str("x"), in)
	s.AppendValue(Str("x"), in)
	if s.H[0] != s.H[1] {
		t.Error("identical strings got distinct handles")
	}
}

func TestBatchAppendRowAndDecode(t *testing.T) {
	in := NewIntern()
	b := NewBatchFor(batchSchema, 4)
	es := []Entry{
		batchEntry(1, "ibm", 101.5, 10, true),
		batchEntry(3, "apple", 7.25, -2, false),
		batchEntry(7, "ibm", 101.5, 10, true),
	}
	for _, e := range es {
		if err := b.AppendRow(e.Pos, e.Rec, in); err != nil {
			t.Fatal(err)
		}
	}
	if b.Rows() != 3 || b.ValidRows() != 3 {
		t.Fatalf("rows = %d valid = %d", b.Rows(), b.ValidRows())
	}
	for i, e := range es {
		rec := b.Row(i, in)
		for j := range rec {
			if !rec[j].Equal(e.Rec[j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, rec[j], e.Rec[j])
			}
		}
		scratch := make(Record, len(b.Cols))
		got := b.RowInto(i, scratch, in)
		for j := range got {
			if !got[j].Equal(e.Rec[j]) {
				t.Errorf("RowInto row %d col %d: %v != %v", i, j, got[j], e.Rec[j])
			}
		}
	}
	// Out-of-order and malformed appends are rejected.
	if err := b.AppendRow(5, es[0].Rec, in); err == nil {
		t.Error("out-of-order append succeeded")
	}
	b2 := NewBatchFor(batchSchema, 4)
	if err := b2.AppendRow(1, Record{Str("x")}, in); err == nil {
		t.Error("arity-mismatched append succeeded")
	}
	// Cleared validity bits hide rows from Row and AppendEntries.
	b.Valid.Clear(1)
	if b.Row(1, in) != nil {
		t.Error("invalid row decoded non-nil")
	}
	out := b.AppendEntries(nil, in)
	if len(out) != 2 || out[0].Pos != 1 || out[1].Pos != 7 {
		t.Fatalf("AppendEntries after invalidation: %v", out)
	}
	// Rows 0 and 2 are identical records: the intern table dedups them
	// onto one backing array.
	if &out[0].Rec[0] != &out[1].Rec[0] {
		t.Error("identical rows did not share a canonical record")
	}
	st := in.Stats()
	if st.RecHits == 0 || st.StrHits == 0 {
		t.Errorf("no intern hits recorded: %+v", st)
	}
}

func TestBatchReset(t *testing.T) {
	in := NewIntern()
	b := NewBatchFor(batchSchema, 4)
	if err := b.AppendRow(1, batchEntry(1, "a", 1, 1, true).Rec, in); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if b.Rows() != 0 || b.ValidRows() != 0 || !b.Span.IsEmpty() {
		t.Error("Reset left state behind")
	}
	for i := range b.Cols {
		if b.Cols[i].Len() != 0 {
			t.Errorf("column %d not truncated", i)
		}
	}
	// The validity word is actually zeroed, not just logically hidden.
	if err := b.AppendRow(2, batchEntry(2, "b", 2, 2, false).Rec, in); err != nil {
		t.Fatal(err)
	}
	if b.ValidRows() != 1 {
		t.Errorf("valid rows after refill = %d", b.ValidRows())
	}
}

func TestInternStats(t *testing.T) {
	in := NewIntern()
	in.PutStr("a")
	in.PutStr("b")
	in.PutStr("a")
	if in.Strings() != 2 {
		t.Errorf("Strings() = %d", in.Strings())
	}
	if in.Str(in.PutStr("b")) != "b" {
		t.Error("handle does not round-trip")
	}
	st := in.Stats()
	if st.StrMisses != 2 || st.StrHits != 2 {
		t.Errorf("stats %+v, want 2 hits 2 misses", st)
	}
	sum := st.Add(InternStats{StrHits: 1, RecMisses: 5})
	if sum.StrHits != 3 || sum.RecMisses != 5 {
		t.Errorf("Add: %+v", sum)
	}
}

func TestBatchCtxForkAndAbsorb(t *testing.T) {
	root := NewBatchCtx()
	if root.Size != DefaultBatchSize || root.Intern == nil {
		t.Fatal("fresh context misconfigured")
	}
	root.Size = 16
	f := root.Fork()
	if f.Size != 16 {
		t.Error("fork did not inherit batch size")
	}
	if f.Intern == root.Intern {
		t.Fatal("fork shares the parent intern table")
	}
	f.Batches, f.Rows = 3, 100
	f.Intern.PutStr("x")
	f.Intern.PutStr("x")
	root.AbsorbCounters(f)
	if root.Batches != 3 || root.Rows != 100 {
		t.Errorf("absorbed counters: batches=%d rows=%d", root.Batches, root.Rows)
	}
	st := root.Intern.Stats()
	if st.StrHits != 1 || st.StrMisses != 1 {
		t.Errorf("absorbed intern stats %+v", st)
	}
	// Absorbing folds counters only; the fork's strings stay behind.
	if root.Intern.Strings() != 0 {
		t.Error("absorb leaked the fork's interned strings")
	}
}

// drainTiled consumes a batch cursor checking the span-tiling contract
// as it goes, returning the decoded valid entries.
func drainTiled(t *testing.T, cur BatchCursor, want Span, in *Intern) []Entry {
	t.Helper()
	defer cur.Close()
	var out []Entry
	first := true
	var next Pos
	for {
		b, ok := cur.NextBatch()
		if !ok {
			break
		}
		if b.Span.IsEmpty() || !b.Span.Bounded() {
			t.Fatalf("batch span %v empty or unbounded", b.Span)
		}
		if first {
			if b.Span.Start != want.Start {
				t.Fatalf("first batch starts at %d, scan span %v", b.Span.Start, want)
			}
			first = false
		} else if b.Span.Start != next {
			t.Fatalf("batch span %v does not start at %d", b.Span, next)
		}
		next = b.Span.End + 1 //seqvet:ignore spanarith bounded checked above
		out = b.AppendEntries(out, in)
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if !first && next-1 != want.End {
		t.Fatalf("final batch ends at %d, scan span %v", next-1, want)
	}
	return out
}

func TestBatchCursorFromTiling(t *testing.T) {
	es := []Entry{
		batchEntry(1, "a", 1, 1, true),
		batchEntry(2, "b", 2, 2, false),
		batchEntry(5, "a", 5, 5, true),
		batchEntry(6, "b", 6, 6, false),
		batchEntry(9, "c", 9, 9, true),
	}
	m, err := NewMaterialized(batchSchema, es)
	if err != nil {
		t.Fatal(err)
	}
	span := NewSpan(0, 12)
	for _, size := range []int{1, 2, 3, 100} {
		ctx := NewBatchCtx()
		ctx.Size = size
		got := drainTiled(t, BatchCursorFrom(m.Scan(span), span, batchSchema, ctx), span, ctx.Intern)
		if len(got) != len(es) {
			t.Fatalf("size %d: %d entries, want %d", size, len(got), len(es))
		}
		for i := range got {
			if got[i].Pos != es[i].Pos || !got[i].Rec[0].Equal(es[i].Rec[0]) {
				t.Fatalf("size %d entry %d: %v", size, i, got[i])
			}
		}
	}
	// Empty span short-circuits to the empty cursor.
	ctx := NewBatchCtx()
	cur := BatchCursorFrom(m.Scan(EmptySpan), EmptySpan, batchSchema, ctx)
	if _, ok := cur.NextBatch(); ok {
		t.Error("empty-span adapter yielded a batch")
	}
}

func TestMaterializedScanBatches(t *testing.T) {
	es := []Entry{
		batchEntry(1, "a", 1, 1, true),
		batchEntry(2, "b", 2, 2, false),
		batchEntry(5, "a", 5, 5, true),
		batchEntry(6, "b", 6, 6, false),
		batchEntry(9, "c", 9, 9, true),
	}
	m, err := NewMaterialized(batchSchema, es)
	if err != nil {
		t.Fatal(err)
	}
	spans := []Span{
		NewSpan(-3, 20), // narrowed to the materialized span at open
		NewSpan(1, 9),   // exact
		NewSpan(2, 6),   // interior
		NewSpan(3, 4),   // gap: no entries
	}
	for _, span := range spans {
		want, err := Collect(m.Scan(span))
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{1, 2, 3, 100} {
			ctx := NewBatchCtx()
			ctx.Size = size
			eff := span.Intersect(m.Info().Span)
			cur := m.ScanBatches(span, ctx)
			var got []Entry
			if eff.IsEmpty() {
				if _, ok := cur.NextBatch(); ok {
					t.Fatalf("span %v: empty effective span yielded a batch", span)
				}
			} else {
				got = drainTiled(t, cur, eff, ctx.Intern)
			}
			if len(got) != len(want) {
				t.Fatalf("span %v size %d: %d entries, want %d", span, size, len(got), len(want))
			}
			for i := range got {
				if got[i].Pos != want[i].Pos {
					t.Fatalf("span %v size %d entry %d: pos %d want %d", span, size, i, got[i].Pos, want[i].Pos)
				}
				for j := range got[i].Rec {
					if !got[i].Rec[j].Equal(want[i].Rec[j]) {
						t.Fatalf("span %v pos %d col %d mismatch", span, got[i].Pos, j)
					}
				}
			}
		}
	}
}

func TestFromSortedEntries(t *testing.T) {
	good := []Entry{batchEntry(1, "a", 1, 1, true), batchEntry(3, "b", 3, 3, false)}
	m, err := FromSortedEntries(batchSchema, good)
	if err != nil {
		t.Fatal(err)
	}
	if m.Info().Span != NewSpan(1, 3) || m.Count() != 2 {
		t.Errorf("span %v count %d", m.Info().Span, m.Count())
	}
	empty, err := FromSortedEntries(batchSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Info().Span.IsEmpty() {
		t.Error("empty build has non-empty span")
	}
	cases := []struct {
		name    string
		entries []Entry
	}{
		{"descending", []Entry{batchEntry(3, "a", 1, 1, true), batchEntry(1, "b", 1, 1, true)}},
		{"duplicate", []Entry{batchEntry(1, "a", 1, 1, true), batchEntry(1, "b", 1, 1, true)}},
		{"null record", []Entry{{Pos: 1, Rec: nil}}},
		{"min pos", []Entry{{Pos: MinPos, Rec: good[0].Rec}}},
		{"max pos", []Entry{{Pos: MaxPos, Rec: good[0].Rec}}},
	}
	for _, tc := range cases {
		if _, err := FromSortedEntries(batchSchema, tc.entries); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := FromSortedEntries(nil, good); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestErrAndEmptyBatchCursors(t *testing.T) {
	e := EmptyBatchCursor()
	if _, ok := e.NextBatch(); ok || e.Err() != nil || e.Close() != nil {
		t.Error("empty cursor misbehaves")
	}
	werr := ErrBatchCursor(errForTest)
	if _, ok := werr.NextBatch(); ok {
		t.Error("err cursor yielded a batch")
	}
	if werr.Err() != errForTest {
		t.Error("err cursor lost its error")
	}
}
