package seq

import (
	"fmt"
	"sort"
)

// Info carries the logical description and meta-data of a sequence: its
// record schema, valid range (span) and density (paper §3). Density is the
// fraction of positions inside the span that map to non-Null records.
type Info struct {
	Schema  *Schema
	Span    Span
	Density float64
}

// Cursor is a stream-access iterator over the non-Null records of a
// sequence, in increasing positional order ("get the next non-Null
// record", §3.3). Next reports false when the stream is exhausted or an
// error occurred; Err distinguishes the two.
type Cursor interface {
	// Next returns the next non-Null record and its position. The
	// returned record must not be retained across calls unless cloned.
	Next() (Pos, Record, bool)
	// Err returns the error that terminated iteration, if any.
	Err() error
	// Close releases resources. It is safe to call multiple times.
	Close() error
}

// Sequence is the physical interface to a (base or derived) sequence.
// It exposes both access modes of §3.3:
//
//   - Scan is the stream access: a single pass over the non-Null records
//     whose positions lie inside the given span, in increasing order.
//   - Probe is the probed access: the record at one specific position
//     (the Null record is returned as a nil Record).
type Sequence interface {
	Info() Info
	Scan(span Span) Cursor
	Probe(pos Pos) (Record, error)
}

// Entry is a materialized (position, record) pair.
type Entry struct {
	Pos Pos
	Rec Record
}

// Materialized is a simple in-memory sequence backed by a sorted slice of
// entries. It is the reference implementation of Sequence: tests compare
// engine outputs against it, operators use it to materialize intermediate
// results, and the workload generators produce it.
type Materialized struct {
	schema  *Schema
	entries []Entry // sorted by Pos, unique positions, non-nil records
	span    Span
}

// NewMaterialized builds a materialized sequence from entries. Entries may
// arrive unsorted; duplicate positions are rejected, and entries with Null
// records are dropped (Null is implicit). The span defaults to the hull of
// the entry positions; a wider explicit span may be set with WithSpan.
func NewMaterialized(schema *Schema, entries []Entry) (*Materialized, error) {
	if schema == nil {
		return nil, fmt.Errorf("seq: nil schema")
	}
	es := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if e.Rec.IsNull() {
			continue
		}
		if !e.Rec.Conforms(schema) {
			return nil, fmt.Errorf("seq: record %v at position %d does not conform to %v", e.Rec, e.Pos, schema)
		}
		if e.Pos <= MinPos || e.Pos >= MaxPos {
			return nil, fmt.Errorf("seq: position %d out of representable range", e.Pos)
		}
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Pos < es[j].Pos })
	for i := 1; i < len(es); i++ {
		if es[i].Pos == es[i-1].Pos {
			return nil, fmt.Errorf("seq: duplicate position %d", es[i].Pos)
		}
	}
	m := &Materialized{schema: schema, entries: es, span: EmptySpan}
	if len(es) > 0 {
		m.span = Span{Start: es[0].Pos, End: es[len(es)-1].Pos}
	}
	return m, nil
}

// MustMaterialized is like NewMaterialized but panics on error; intended
// for tests and examples.
func MustMaterialized(schema *Schema, entries []Entry) *Materialized {
	m, err := NewMaterialized(schema, entries)
	if err != nil {
		panic(err)
	}
	return m
}

// WithSpan overrides the sequence's valid range. The new span must contain
// all entry positions.
func (m *Materialized) WithSpan(span Span) (*Materialized, error) {
	if len(m.entries) > 0 {
		hull := Span{Start: m.entries[0].Pos, End: m.entries[len(m.entries)-1].Pos}
		if hull.Intersect(span) != hull {
			return nil, fmt.Errorf("seq: span %v does not cover entries %v", span, hull)
		}
	}
	cp := *m
	cp.span = span
	return &cp, nil
}

// Info implements Sequence.
func (m *Materialized) Info() Info {
	d := 0.0
	if n := m.span.Len(); n > 0 && m.span.Bounded() {
		d = float64(len(m.entries)) / float64(n)
	}
	return Info{Schema: m.schema, Span: m.span, Density: d}
}

// Count returns the number of non-Null records.
func (m *Materialized) Count() int { return len(m.entries) }

// Entries returns the underlying sorted entries. The caller must not
// modify the returned slice.
func (m *Materialized) Entries() []Entry { return m.entries }

// Probe implements Sequence: the record at exactly pos, or nil.
func (m *Materialized) Probe(pos Pos) (Record, error) {
	i := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].Pos >= pos })
	if i < len(m.entries) && m.entries[i].Pos == pos {
		return m.entries[i].Rec, nil
	}
	return nil, nil
}

// Scan implements Sequence: stream the entries with positions in span.
func (m *Materialized) Scan(span Span) Cursor {
	span = span.Intersect(m.span)
	if span.IsEmpty() {
		return &sliceCursor{}
	}
	lo := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].Pos >= span.Start })
	hi := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].Pos > span.End })
	return &sliceCursor{entries: m.entries[lo:hi]}
}

type sliceCursor struct {
	entries []Entry
	i       int
}

func (c *sliceCursor) Next() (Pos, Record, bool) {
	if c.i >= len(c.entries) {
		return 0, nil, false
	}
	e := c.entries[c.i]
	c.i++
	return e.Pos, e.Rec, true
}

func (c *sliceCursor) Err() error   { return nil }
func (c *sliceCursor) Close() error { return nil }

// Collect drains a cursor into a slice of entries, cloning records so the
// result is safe to retain. It returns the cursor's error, if any.
func Collect(c Cursor) ([]Entry, error) {
	defer c.Close()
	var out []Entry
	for {
		p, r, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, Entry{Pos: p, Rec: r.Clone()})
	}
	return out, c.Err()
}

// Constant is a sequence in which every position maps to the same record
// (paper §2: constant sequences let the model treat literals uniformly).
// Its span is unbounded and its density is one; it has no access cost.
type Constant struct {
	schema *Schema
	rec    Record
}

// NewConstant builds a constant sequence holding rec at every position.
func NewConstant(schema *Schema, rec Record) (*Constant, error) {
	if rec.IsNull() {
		return nil, fmt.Errorf("seq: constant sequence record must be non-Null")
	}
	if !rec.Conforms(schema) {
		return nil, fmt.Errorf("seq: constant record %v does not conform to %v", rec, schema)
	}
	return &Constant{schema: schema, rec: rec}, nil
}

// Info implements Sequence.
func (c *Constant) Info() Info {
	return Info{Schema: c.schema, Span: AllSpan, Density: 1}
}

// Probe implements Sequence.
func (c *Constant) Probe(Pos) (Record, error) { return c.rec, nil }

// Scan implements Sequence. Scanning a constant sequence requires a
// bounded span; an unbounded scan is an error reported through the cursor.
func (c *Constant) Scan(span Span) Cursor {
	if span.IsEmpty() {
		return &sliceCursor{}
	}
	if !span.Bounded() {
		return &errCursor{err: fmt.Errorf("seq: unbounded scan of constant sequence")}
	}
	return &constCursor{rec: c.rec, pos: span.Start, end: span.End}
}

type constCursor struct {
	rec  Record
	pos  Pos
	end  Pos
	done bool
}

func (c *constCursor) Next() (Pos, Record, bool) {
	if c.done || c.pos > c.end {
		return 0, nil, false
	}
	p := c.pos
	if c.pos == c.end {
		c.done = true
	} else {
		c.pos++
	}
	return p, c.rec, true
}

func (c *constCursor) Err() error   { return nil }
func (c *constCursor) Close() error { return nil }

type errCursor struct{ err error }

func (c *errCursor) Next() (Pos, Record, bool) { return 0, nil, false }
func (c *errCursor) Err() error                { return c.err }
func (c *errCursor) Close() error              { return nil }

// ErrCursor returns a cursor that yields nothing and reports err.
func ErrCursor(err error) Cursor { return &errCursor{err: err} }
