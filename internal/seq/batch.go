package seq

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// DefaultBatchSize is the number of positions a batch-producing cursor
// targets per batch. ~1k rows keeps a batch's column vectors inside the
// L1/L2 caches while amortizing per-batch overheads to noise.
const DefaultBatchSize = 1024

// Bitmap is a row-validity bitmap: bit i is set when row i of a batch is
// a live (non-Null) row. The model's Null semantics are record-level —
// a position either maps to a whole record or to the Null record — so a
// batch carries one validity bitmap for the row, not one per column.
type Bitmap []uint64

// bitmapWords returns the number of words needed for n bits.
func bitmapWords(n int) int { return (n + 63) / 64 }

// Get reports whether bit i is set.
func (b Bitmap) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// setRange sets the n bits starting at lo, word-wise.
func (b Bitmap) setRange(lo, n int) {
	if n <= 0 {
		return
	}
	hi := lo + n - 1 // inclusive
	w0, w1 := lo>>6, hi>>6
	first := ^uint64(0) << (uint(lo) & 63)
	last := ^uint64(0) >> (63 - (uint(hi) & 63))
	if w0 == w1 {
		b[w0] |= first & last
		return
	}
	b[w0] |= first
	for w := w0 + 1; w < w1; w++ {
		b[w] = ^uint64(0)
	}
	b[w1] |= last
}

// NextSet returns the smallest index >= from (and < n) whose bit is
// set, or n when no such bit exists. It scans word-wise, so skipping a
// long run of cleared bits (e.g. the filtered-out rows of a selective
// predicate's output batch) costs one mask test per 64 rows instead of
// one Get call per row.
func (b Bitmap) NextSet(from, n int) int {
	if from >= n {
		return n
	}
	w := from >> 6
	word := b[w] >> (uint(from) & 63)
	if word != 0 {
		if i := from + bits.TrailingZeros64(word); i < n {
			return i
		}
		return n
	}
	for w++; w < bitmapWords(n); w++ {
		if b[w] != 0 {
			if i := w<<6 + bits.TrailingZeros64(b[w]); i < n {
				return i
			}
			return n
		}
	}
	return n
}

// Count returns the number of set bits among the first n.
func (b Bitmap) Count(n int) int {
	full := n >> 6
	c := 0
	for i := 0; i < full; i++ {
		c += bits.OnesCount64(b[i])
	}
	if rem := uint(n) & 63; rem != 0 {
		c += bits.OnesCount64(b[full] & (1<<rem - 1))
	}
	return c
}

// Vec is one column of a batch: a typed value vector. Exactly one of the
// payload slices is in use, selected by T. String columns store intern
// handles (see Intern) instead of string headers, so repeated values
// occupy one table slot however many rows carry them.
type Vec struct {
	T Type
	I []int64   // TInt
	F []float64 // TFloat
	H []uint32  // TString: handles into the run's Intern table
	B []bool    // TBool
}

// Len returns the number of values in the vector.
func (v *Vec) Len() int {
	switch v.T {
	case TInt:
		return len(v.I)
	case TFloat:
		return len(v.F)
	case TString:
		return len(v.H)
	default:
		return len(v.B)
	}
}

// Reset truncates the vector to zero length, keeping capacity.
func (v *Vec) Reset() {
	v.I = v.I[:0]
	v.F = v.F[:0]
	v.H = v.H[:0]
	v.B = v.B[:0]
}

// AppendFrom appends element i of src, which must have the same type.
// Intern handles copy verbatim: both vectors belong to one run context.
func (v *Vec) AppendFrom(src *Vec, i int) {
	switch v.T {
	case TInt:
		v.I = append(v.I, src.I[i])
	case TFloat:
		v.F = append(v.F, src.F[i])
	case TString:
		v.H = append(v.H, src.H[i])
	default:
		v.B = append(v.B, src.B[i])
	}
}

// AppendValue appends one value; the value's type must match v.T.
func (v *Vec) AppendValue(val Value, in *Intern) error {
	if val.T != v.T {
		return fmt.Errorf("seq: batch column type mismatch: %s value in %s column", val.T, v.T)
	}
	switch v.T {
	case TInt:
		v.I = append(v.I, val.i)
	case TFloat:
		v.F = append(v.F, val.f)
	case TString:
		v.H = append(v.H, in.PutStr(val.s))
	default:
		v.B = append(v.B, val.b)
	}
	return nil
}

// Value boxes the i-th element back into a Value.
func (v *Vec) Value(i int, in *Intern) Value {
	switch v.T {
	case TInt:
		return Value{T: TInt, i: v.I[i]}
	case TFloat:
		return Value{T: TFloat, f: v.F[i]}
	case TString:
		return Value{T: TString, s: in.Str(v.H[i])}
	default:
		return Value{T: TBool, b: v.B[i]}
	}
}

// Batch is a columnar slice of a sequence: up to a few thousand
// positions' worth of records decomposed into per-column vectors, the
// unit of work of the vectorized execution path. Rows are stored in
// strictly ascending position order. Span is the contiguous range of
// positions this batch accounts for: consecutive batches of one cursor
// tile their scan's range without gap or overlap (the planlint
// batch/span invariant), so a consumer knows every position in Span not
// listed in Pos — or listed with its validity bit clear — maps to the
// Null record.
//
// A batch returned by a BatchCursor is owned by the caller until its
// next NextBatch or Close call: the caller may mutate it in place
// (selection clears validity bits rather than copying survivors), and
// the producer may recycle it afterwards. Consumers must never retain a
// batch, or slices into one, across NextBatch calls.
type Batch struct {
	Span   Span
	Pos    []Pos
	Valid  Bitmap
	Cols   []Vec
	schema *Schema
	hasStr bool
	idx    []int32 // scratch: valid-row indexes, reused by AppendEntries
}

// NewBatchFor allocates an empty batch shaped for the schema.
func NewBatchFor(schema *Schema, capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchSize
	}
	b := &Batch{
		Span:   EmptySpan,
		Pos:    make([]Pos, 0, capacity),
		Valid:  make(Bitmap, bitmapWords(capacity)),
		Cols:   make([]Vec, schema.NumFields()),
		schema: schema,
	}
	for i := range b.Cols {
		t := schema.Field(i).Type
		b.Cols[i].T = t
		switch t {
		case TInt:
			b.Cols[i].I = make([]int64, 0, capacity)
		case TFloat:
			b.Cols[i].F = make([]float64, 0, capacity)
		case TString:
			b.Cols[i].H = make([]uint32, 0, capacity)
			b.hasStr = true
		default:
			b.Cols[i].B = make([]bool, 0, capacity)
		}
	}
	return b
}

// Schema returns the record type of the batch's rows.
func (b *Batch) Schema() *Schema { return b.schema }

// Rows returns the number of rows (valid or not) in the batch.
func (b *Batch) Rows() int { return len(b.Pos) }

// ValidRows returns the number of rows whose validity bit is set.
func (b *Batch) ValidRows() int { return b.Valid.Count(len(b.Pos)) }

// Reset empties the batch for refilling.
func (b *Batch) Reset() {
	b.Span = EmptySpan
	b.Pos = b.Pos[:0]
	for i := range b.Valid {
		b.Valid[i] = 0
	}
	for i := range b.Cols {
		b.Cols[i].Reset()
	}
}

// AliasRowsOf makes b share src's row identity — span, position vector
// and validity bitmap — without touching b's columns. Projection-style
// operators use it to emit a batch with the same rows but different
// columns; per the ownership contract the alias is valid only until the
// producer of src recycles it.
func (b *Batch) AliasRowsOf(src *Batch) {
	b.Span = src.Span
	b.Pos = src.Pos
	b.Valid = src.Valid
}

// growValid ensures the validity bitmap covers row index i.
func (b *Batch) growValid(i int) {
	for len(b.Valid)*64 <= i {
		b.Valid = append(b.Valid, 0)
	}
}

// AppendRow appends a non-Null record as a valid row. Positions must
// arrive in strictly ascending order; the record must conform to the
// batch schema (checked, so a malformed upstream record surfaces as an
// error exactly as the scalar materialization path reports it).
func (b *Batch) AppendRow(pos Pos, rec Record, in *Intern) error {
	if len(rec) != len(b.Cols) {
		return fmt.Errorf("seq: record arity %d does not conform to %v", len(rec), b.schema)
	}
	if n := len(b.Pos); n > 0 && b.Pos[n-1] >= pos {
		return fmt.Errorf("seq: batch positions out of order: %d after %d", pos, b.Pos[n-1])
	}
	for i := range b.Cols {
		if err := b.Cols[i].AppendValue(rec[i], in); err != nil {
			return err
		}
	}
	i := len(b.Pos)
	b.Pos = append(b.Pos, pos)
	b.growValid(i)
	b.Valid.Set(i)
	return nil
}

// AppendEntryRows bulk-appends a window of (position, record) entries as
// valid rows — the column-major equivalent of calling AppendRow per
// entry, with the same ordering, arity and type checks, but with the
// per-value type dispatch hoisted out of the row loop. This is the fill
// path of the native storage batch cursors.
func (b *Batch) AppendEntryRows(win []Entry, in *Intern) error {
	if len(win) == 0 {
		return nil
	}
	width := len(b.Cols)
	last, have := Pos(0), false
	if n := len(b.Pos); n > 0 {
		last, have = b.Pos[n-1], true
	}
	base := len(b.Pos)
	b.Pos = extend(b.Pos, len(win))
	posSeg := b.Pos[base:]
	for k := range win {
		if have && win[k].Pos <= last {
			b.Pos = b.Pos[:base]
			return fmt.Errorf("seq: batch positions out of order: %d after %d", win[k].Pos, last)
		}
		last, have = win[k].Pos, true
		if len(win[k].Rec) != width {
			b.Pos = b.Pos[:base]
			return fmt.Errorf("seq: record arity %d does not conform to %v", len(win[k].Rec), b.schema)
		}
		posSeg[k] = win[k].Pos
	}
	b.growValid(len(b.Pos) - 1)
	b.Valid.setRange(base, len(win))
	for j := range b.Cols {
		v := &b.Cols[j]
		switch v.T {
		case TInt:
			seg := extendTail(&v.I, len(win))
			for k := range win {
				c := &win[k].Rec[j]
				if c.T != TInt {
					return fmt.Errorf("seq: batch column type mismatch: %s value in %s column", c.T, v.T)
				}
				seg[k] = c.i
			}
		case TFloat:
			seg := extendTail(&v.F, len(win))
			for k := range win {
				c := &win[k].Rec[j]
				if c.T != TFloat {
					return fmt.Errorf("seq: batch column type mismatch: %s value in %s column", c.T, v.T)
				}
				seg[k] = c.f
			}
		case TString:
			seg := extendTail(&v.H, len(win))
			for k := range win {
				c := &win[k].Rec[j]
				if c.T != TString {
					return fmt.Errorf("seq: batch column type mismatch: %s value in %s column", c.T, v.T)
				}
				seg[k] = in.PutStr(c.s)
			}
		default:
			seg := extendTail(&v.B, len(win))
			for k := range win {
				c := &win[k].Rec[j]
				if c.T != TBool {
					return fmt.Errorf("seq: batch column type mismatch: %s value in %s column", c.T, v.T)
				}
				seg[k] = c.b
			}
		}
	}
	return nil
}

// AppendRunRows appends cnt valid rows at the consecutive positions
// pos, pos+1, ..., pos+cnt-1, every one carrying the same record — the
// shape value offsets emit, where the output is piecewise-constant
// between input records. The record's values are type-checked (and a
// string interned) once per run rather than once per row.
func (b *Batch) AppendRunRows(pos Pos, cnt int, rec Record, in *Intern) error {
	if cnt <= 0 {
		return nil
	}
	if len(rec) != len(b.Cols) {
		return fmt.Errorf("seq: record arity %d does not conform to %v", len(rec), b.schema)
	}
	if n := len(b.Pos); n > 0 && b.Pos[n-1] >= pos {
		return fmt.Errorf("seq: batch positions out of order: %d after %d", pos, b.Pos[n-1])
	}
	base := len(b.Pos)
	b.Pos = extend(b.Pos, cnt)
	for k, seg := 0, b.Pos[base:]; k < len(seg); k++ {
		seg[k] = pos + Pos(k)
	}
	b.growValid(len(b.Pos) - 1)
	b.Valid.setRange(base, cnt)
	for j := range b.Cols {
		v := &b.Cols[j]
		c := rec[j]
		if c.T != v.T {
			return fmt.Errorf("seq: batch column type mismatch: %s value in %s column", c.T, v.T)
		}
		switch v.T {
		case TInt:
			seg := extendTail(&v.I, cnt)
			for k := range seg {
				seg[k] = c.i
			}
		case TFloat:
			seg := extendTail(&v.F, cnt)
			for k := range seg {
				seg[k] = c.f
			}
		case TString:
			h := in.PutStr(c.s)
			seg := extendTail(&v.H, cnt)
			for k := range seg {
				seg[k] = h
			}
		default:
			seg := extendTail(&v.B, cnt)
			for k := range seg {
				seg[k] = c.b
			}
		}
	}
	return nil
}

// extend grows s by n elements in place when capacity allows (the
// steady state: batch vectors are allocated at full batch capacity),
// reallocating otherwise, and returns the extended slice.
func extend[T any](s []T, n int) []T {
	l := len(s)
	if cap(s)-l >= n {
		return s[:l+n]
	}
	out := make([]T, l+n, 2*l+n)
	copy(out, s)
	return out
}

// extendTail extends *s by n elements and returns the new tail.
func extendTail[T any](s *[]T, n int) []T {
	l := len(*s)
	*s = extend(*s, n)
	return (*s)[l:]
}

// AppendPos appends a position as a valid row, leaving the columns to
// the caller (who appends one value per column via AppendFrom or
// AppendValue). Returns the new row's index.
func (b *Batch) AppendPos(pos Pos) int {
	i := len(b.Pos)
	b.Pos = append(b.Pos, pos)
	b.growValid(i)
	b.Valid.Set(i)
	return i
}

// Row materializes row i as a freshly allocated Record (nil when the
// row's validity bit is clear). Hot paths use AppendEntries instead.
func (b *Batch) Row(i int, in *Intern) Record {
	if !b.Valid.Get(i) {
		return nil
	}
	out := make(Record, len(b.Cols))
	for j := range b.Cols {
		out[j] = b.Cols[j].Value(i, in)
	}
	return out
}

// RowInto fills a caller-owned scratch record with row i's values and
// returns it, avoiding the per-row allocation of Row. The scratch must
// have the batch's arity; the returned record is only valid until the
// next RowInto call with the same scratch.
func (b *Batch) RowInto(i int, scratch Record, in *Intern) Record {
	for j := range b.Cols {
		scratch[j] = b.Cols[j].Value(i, in)
	}
	return scratch
}

// AppendEntries converts the batch's valid rows to (position, record)
// entries appended onto dst. Records are sliced out of one slab
// allocation per batch; when the schema carries string columns the rows
// are additionally deduplicated through the intern table, so repeated
// records share one backing array across the whole run.
func (b *Batch) AppendEntries(dst []Entry, in *Intern) []Entry {
	n := len(b.Pos)
	valid := b.ValidRows()
	if valid == 0 {
		return dst
	}
	width := len(b.Cols)
	if width == 0 {
		// Zero-column schemas cannot occur (NewSchema requires names),
		// but guard the slab math anyway.
		return dst
	}
	rows := b.idx[:0]
	for i := 0; i < n; i++ {
		if b.Valid.Get(i) {
			rows = append(rows, int32(i))
		}
	}
	b.idx = rows
	if b.hasStr && in != nil {
		// Dedup through the intern table: a row is materialized (into
		// the run arena) only when no identical record was seen before.
		for _, i := range rows {
			dst = append(dst, Entry{Pos: b.Pos[i], Rec: in.internRow(b, int(i))})
		}
		return dst
	}
	slab := make([]Value, valid*width)
	for j := range b.Cols {
		v := &b.Cols[j]
		switch v.T {
		case TInt:
			for k, i := range rows {
				slab[k*width+j] = Value{T: TInt, i: v.I[i]}
			}
		case TFloat:
			for k, i := range rows {
				slab[k*width+j] = Value{T: TFloat, f: v.F[i]}
			}
		case TString:
			for k, i := range rows {
				slab[k*width+j] = Value{T: TString, s: in.Str(v.H[i])}
			}
		default:
			for k, i := range rows {
				slab[k*width+j] = Value{T: TBool, b: v.B[i]}
			}
		}
	}
	for k, i := range rows {
		rec := slab[k*width : (k+1)*width : (k+1)*width]
		dst = append(dst, Entry{Pos: b.Pos[i], Rec: Record(rec)})
	}
	return dst
}

// Intern is a per-run value intern table: strings are mapped to dense
// uint32 handles (so batches carry 4-byte handles instead of 16-byte
// string headers, and equality is integer equality), and materialized
// records with string attributes are deduplicated so repeated rows share
// one backing array. The table is private to one evaluation — a
// parallel run forks one per worker, exactly like operator caches — so
// no synchronization is needed and handles never cross workers.
type Intern struct {
	strIDs map[string]uint32
	strs   []string
	recs   recTable
	key    []byte

	vals     []Value // current arena chunk for materialized records
	valsUsed int

	strHits, strMisses int64
	recHits, recMisses int64
}

// takeValues carves an n-Value slice out of the run-level record arena,
// backing the canonical records of the intern table: those live as long
// as the run either way, and carving them from doubling chunks replaces
// one allocation per distinct record with a handful per run.
func (in *Intern) takeValues(n int) []Value {
	if in == nil {
		return make([]Value, n)
	}
	if len(in.vals)-in.valsUsed < n {
		size := 2 * len(in.vals)
		const minChunk = 256
		if size < minChunk {
			size = minChunk
		}
		if size < n {
			size = n
		}
		in.vals = make([]Value, size)
		in.valsUsed = 0
	}
	s := in.vals[in.valsUsed : in.valsUsed+n : in.valsUsed+n]
	in.valsUsed += n
	return s
}

// NewIntern returns an empty intern table.
func NewIntern() *Intern {
	return &Intern{strIDs: make(map[string]uint32)}
}

// recTable is an open-addressing hash table from record keys (byte
// strings) to canonical records. Keys live in one append-only arena, so
// an insert costs no allocation beyond the amortized arena and slot
// growth — unlike a map[string]Record, whose every insert copies its key
// into a fresh string allocation.
type recTable struct {
	slots []recSlot
	n     int
	arena []byte
}

type recSlot struct {
	hash uint64
	off  uint32
	len  uint32
	rec  Record // nil marks an empty slot
}

func recHash(key []byte) uint64 {
	h := uint64(14695981039346656037) // FNV-1a
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// lookup returns the canonical record for key, or nil.
func (t *recTable) lookup(key []byte, hash uint64) Record {
	if len(t.slots) == 0 {
		return nil
	}
	mask := uint64(len(t.slots) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.rec == nil {
			return nil
		}
		if s.hash == hash && bytes.Equal(t.arena[s.off:s.off+s.len], key) {
			return s.rec
		}
	}
}

// insert adds key → rec; the key must not already be present.
func (t *recTable) insert(key []byte, hash uint64, rec Record) {
	if 4*(t.n+1) > 3*len(t.slots) {
		t.grow()
	}
	off := uint32(len(t.arena))
	t.arena = append(t.arena, key...)
	t.place(recSlot{hash: hash, off: off, len: uint32(len(key)), rec: rec})
	t.n++
}

func (t *recTable) place(s recSlot) {
	mask := uint64(len(t.slots) - 1)
	for i := s.hash & mask; ; i = (i + 1) & mask {
		if t.slots[i].rec == nil {
			t.slots[i] = s
			return
		}
	}
}

func (t *recTable) grow() {
	old := t.slots
	size := 2 * len(old)
	if size == 0 {
		size = 64
	}
	t.slots = make([]recSlot, size)
	for i := range old {
		if old[i].rec != nil {
			t.place(old[i])
		}
	}
}

// PutStr interns a string, returning its handle.
func (in *Intern) PutStr(s string) uint32 {
	if id, ok := in.strIDs[s]; ok {
		in.strHits++
		return id
	}
	in.strMisses++
	id := uint32(len(in.strs))
	in.strs = append(in.strs, s)
	in.strIDs[s] = id
	return id
}

// Str resolves a handle back to its string.
func (in *Intern) Str(id uint32) string { return in.strs[id] }

// Strings returns the number of distinct interned strings.
func (in *Intern) Strings() int { return len(in.strs) }

// internRow deduplicates one batch row: if an identical record was seen
// before, the canonical copy is returned; otherwise the row is boxed
// into the run arena and becomes the canonical copy. The lookup key is
// built from the columns' raw payloads — string columns contribute
// their handles, which are canonical within this table — so no string
// hashing happens per row, and no record is materialized for a hit.
func (in *Intern) internRow(b *Batch, row int) Record {
	key := in.key[:0]
	var buf [8]byte
	for j := range b.Cols {
		v := &b.Cols[j]
		key = append(key, byte(v.T))
		switch v.T {
		case TInt:
			binary.LittleEndian.PutUint64(buf[:], uint64(v.I[row]))
			key = append(key, buf[:]...)
		case TFloat:
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F[row]))
			key = append(key, buf[:]...)
		case TString:
			binary.LittleEndian.PutUint32(buf[:4], v.H[row])
			key = append(key, buf[:4]...)
		default:
			if v.B[row] {
				key = append(key, 1)
			} else {
				key = append(key, 0)
			}
		}
	}
	in.key = key
	h := recHash(key)
	if r := in.recs.lookup(key, h); r != nil {
		in.recHits++
		return r
	}
	in.recMisses++
	fresh := Record(in.takeValues(len(b.Cols)))
	for j := range b.Cols {
		fresh[j] = b.Cols[j].Value(row, in)
	}
	in.recs.insert(key, h, fresh)
	return fresh
}

// Stats reports the intern table's accumulated hit/miss counters.
func (in *Intern) Stats() InternStats {
	return InternStats{
		StrHits: in.strHits, StrMisses: in.strMisses,
		RecHits: in.recHits, RecMisses: in.recMisses,
	}
}

// InternStats are the hit/miss counters of an Intern table.
type InternStats struct {
	StrHits, StrMisses int64
	RecHits, RecMisses int64
}

// Add returns the element-wise sum.
func (s InternStats) Add(o InternStats) InternStats {
	return InternStats{
		StrHits: s.StrHits + o.StrHits, StrMisses: s.StrMisses + o.StrMisses,
		RecHits: s.RecHits + o.RecHits, RecMisses: s.RecMisses + o.RecMisses,
	}
}

// BatchCtx is the per-run state of a batch-mode evaluation: the target
// batch size, the run's intern table, and the run-level batch counters.
// A parallel run forks one per worker (fresh intern table, private
// counters) and folds the counters back when the worker completes.
type BatchCtx struct {
	// Size is the target rows per batch.
	Size int
	// Intern is the run's value intern table.
	Intern *Intern
	// Batches and Rows count the batches and valid rows the run's
	// root collector consumed.
	Batches int64
	Rows    int64
}

// NewBatchCtx returns a fresh context with the default batch size.
func NewBatchCtx() *BatchCtx {
	return &BatchCtx{Size: DefaultBatchSize, Intern: NewIntern()}
}

// Fork returns a worker-private context: same batch size, fresh intern
// table, zero counters. Handles produced under the fork are meaningful
// only against the fork's table.
func (c *BatchCtx) Fork() *BatchCtx {
	return &BatchCtx{Size: c.Size, Intern: NewIntern()}
}

// AbsorbCounters folds a completed fork's counters (batch tallies and
// intern hit/miss totals) into c, leaving the fork's table behind.
func (c *BatchCtx) AbsorbCounters(o *BatchCtx) {
	c.Batches += o.Batches
	c.Rows += o.Rows
	c.Intern.strHits += o.Intern.strHits
	c.Intern.strMisses += o.Intern.strMisses
	c.Intern.recHits += o.Intern.recHits
	c.Intern.recMisses += o.Intern.recMisses
}

// BatchCursor is the vectorized counterpart of Cursor: a stream of
// columnar batches in ascending position order. See Batch for the
// ownership and span-tiling contract.
type BatchCursor interface {
	// NextBatch returns the next batch, or false when the stream is
	// exhausted or failed (Err distinguishes the two).
	NextBatch() (*Batch, bool)
	// Err returns the error that terminated iteration, if any.
	Err() error
	// Close releases resources. Safe to call multiple times.
	Close() error
}

// BatchScanner is implemented by sequences that can serve scans
// natively in batch form. Sequences without it are bridged through
// BatchCursorFrom.
type BatchScanner interface {
	ScanBatches(span Span, ctx *BatchCtx) BatchCursor
}

// emptyBatchCursor yields nothing.
type emptyBatchCursor struct{}

func (emptyBatchCursor) NextBatch() (*Batch, bool) { return nil, false }
func (emptyBatchCursor) Err() error                { return nil }
func (emptyBatchCursor) Close() error              { return nil }

// EmptyBatchCursor returns a cursor yielding no batches.
func EmptyBatchCursor() BatchCursor { return emptyBatchCursor{} }

// errBatchCursor yields nothing and reports err.
type errBatchCursor struct{ err error }

func (c errBatchCursor) NextBatch() (*Batch, bool) { return nil, false }
func (c errBatchCursor) Err() error                { return c.err }
func (c errBatchCursor) Close() error              { return nil }

// ErrBatchCursor returns a cursor that yields nothing and reports err.
func ErrBatchCursor(err error) BatchCursor { return errBatchCursor{err: err} }

// BatchCursorFrom bridges a record-at-a-time cursor into the batch
// protocol: rows are packed into batches of ctx.Size, and the emitted
// batch spans tile the given scan span exactly (the final batch absorbs
// the tail of the span). This is the adapter that keeps every plan
// runnable while operators are converted one by one.
func BatchCursorFrom(cur Cursor, span Span, schema *Schema, ctx *BatchCtx) BatchCursor {
	if span.IsEmpty() {
		cur.Close()
		return emptyBatchCursor{}
	}
	return &adapterBatchCursor{
		in: cur, schema: schema, ctx: ctx,
		next: span.Start, end: span.End,
	}
}

type adapterBatchCursor struct {
	in     Cursor
	schema *Schema
	ctx    *BatchCtx
	batch  *Batch
	next   Pos // start of the next batch's span
	end    Pos // end of the scan span (tail absorbed by the final batch)
	err    error
	done   bool
}

func (c *adapterBatchCursor) NextBatch() (*Batch, bool) {
	if c.done || c.err != nil {
		return nil, false
	}
	if c.batch == nil {
		c.batch = NewBatchFor(c.schema, c.ctx.Size)
	}
	b := c.batch
	b.Reset()
	b.Span = Span{Start: c.next, End: c.end}
	for b.Rows() < c.ctx.Size {
		pos, rec, ok := c.in.Next()
		if !ok {
			if err := c.in.Err(); err != nil {
				c.err = err
				return nil, false
			}
			// Input exhausted: this final batch covers the rest of the
			// scan span.
			c.done = true
			return b, true
		}
		if err := b.AppendRow(pos, rec, c.ctx.Intern); err != nil {
			c.err = err
			return nil, false
		}
	}
	// Full batch: its span ends at its last row so the next batch can
	// start right after it.
	b.Span.End = b.Pos[b.Rows()-1]
	c.next = b.Span.End + 1 //seqvet:ignore spanarith row positions lie inside the bounded scan span
	if c.next > c.end {
		c.done = true
	}
	return b, true
}

func (c *adapterBatchCursor) Err() error   { return c.err }
func (c *adapterBatchCursor) Close() error { return c.in.Close() }

// ScanBatches implements BatchScanner natively: entry windows are
// decomposed straight into column vectors, one tight loop per column.
func (m *Materialized) ScanBatches(span Span, ctx *BatchCtx) BatchCursor {
	eff := span.Intersect(m.span)
	if eff.IsEmpty() {
		return emptyBatchCursor{}
	}
	lo := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].Pos >= eff.Start })
	hi := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].Pos > eff.End })
	return &matBatchCursor{entries: m.entries[lo:hi], schema: m.schema, ctx: ctx, next: eff.Start, end: eff.End}
}

type matBatchCursor struct {
	entries []Entry
	schema  *Schema
	ctx     *BatchCtx
	batch   *Batch
	i       int
	next    Pos
	end     Pos
	err     error
	done    bool
}

func (c *matBatchCursor) NextBatch() (*Batch, bool) {
	if c.done || c.err != nil {
		return nil, false
	}
	if c.batch == nil {
		c.batch = NewBatchFor(c.schema, c.ctx.Size)
	}
	b := c.batch
	b.Reset()
	n := len(c.entries) - c.i
	if n > c.ctx.Size {
		n = c.ctx.Size
	}
	win := c.entries[c.i : c.i+n]
	b.Span = Span{Start: c.next, End: c.end}
	if err := b.AppendEntryRows(win, c.ctx.Intern); err != nil {
		c.err = err
		return nil, false
	}
	c.i += n
	if c.i >= len(c.entries) {
		c.done = true
		return b, true
	}
	b.Span.End = b.Pos[n-1]
	c.next = b.Span.End + 1 //seqvet:ignore spanarith row positions lie inside the bounded scan span
	return b, true
}

func (c *matBatchCursor) Err() error   { return c.err }
func (c *matBatchCursor) Close() error { return nil }

// FromSortedEntries builds a Materialized from entries already in
// strictly ascending position order with non-Null records — what the
// batch collector produces. Order and nullness are verified in one
// cheap pass (a violation indicates an operator bug and is reported as
// an error); per-record schema conformance is not re-checked, because
// batch columns are typed at construction.
func FromSortedEntries(schema *Schema, entries []Entry) (*Materialized, error) {
	if schema == nil {
		return nil, fmt.Errorf("seq: nil schema")
	}
	for i := range entries {
		if entries[i].Rec.IsNull() {
			return nil, fmt.Errorf("seq: Null record at position %d in sorted entries", entries[i].Pos)
		}
		if i > 0 && entries[i].Pos <= entries[i-1].Pos {
			return nil, fmt.Errorf("seq: entries not strictly ascending: %d after %d", entries[i].Pos, entries[i-1].Pos)
		}
		if entries[i].Pos <= MinPos || entries[i].Pos >= MaxPos {
			return nil, fmt.Errorf("seq: position %d out of representable range", entries[i].Pos)
		}
	}
	m := &Materialized{schema: schema, entries: entries, span: EmptySpan}
	if len(entries) > 0 {
		m.span = Span{Start: entries[0].Pos, End: entries[len(entries)-1].Pos}
	}
	return m, nil
}
