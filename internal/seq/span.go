package seq

import (
	"fmt"
	"math"
)

// Pos is a sequence position. The model defines positions over the
// integers; implementations bound them by the sentinels below so that
// offset arithmetic can never overflow.
type Pos = int64

// Position sentinels. MinPos/MaxPos stand in for -infinity/+infinity when
// a span is unbounded on one side (e.g. the span of a constant sequence,
// or of a value-offset output). They are kept far from the int64 limits so
// that adding bounded offsets stays representable.
const (
	MinPos Pos = math.MinInt64 / 4
	MaxPos Pos = math.MaxInt64 / 4
)

// ClampPos pins p into [MinPos, MaxPos].
func ClampPos(p Pos) Pos {
	if p < MinPos {
		return MinPos
	}
	if p > MaxPos {
		return MaxPos
	}
	return p
}

// Span is an inclusive range of positions [Start, End]; it is the "valid
// range" meta-datum of §3. A span with Start > End is empty. Spans with
// Start == MinPos or End == MaxPos are unbounded on that side.
type Span struct {
	Start, End Pos
}

// EmptySpan is a canonical empty span.
var EmptySpan = Span{Start: 1, End: 0}

// AllSpan is the unbounded span covering every representable position.
var AllSpan = Span{Start: MinPos, End: MaxPos}

// NewSpan returns the inclusive span [start, end].
func NewSpan(start, end Pos) Span { return Span{Start: start, End: end} }

// IsEmpty reports whether the span contains no positions.
func (s Span) IsEmpty() bool { return s.Start > s.End }

// Contains reports whether position p lies inside the span.
func (s Span) Contains(p Pos) bool { return p >= s.Start && p <= s.End }

// Len returns the number of positions in the span (0 for empty spans).
// The length of an unbounded span saturates at MaxPos.
func (s Span) Len() int64 {
	if s.IsEmpty() {
		return 0
	}
	n := s.End - s.Start + 1
	if n <= 0 || s.Start <= MinPos || s.End >= MaxPos { // overflow or unbounded
		return MaxPos
	}
	return n
}

// Bounded reports whether both endpoints are finite.
func (s Span) Bounded() bool {
	return !s.IsEmpty() && s.Start > MinPos && s.End < MaxPos
}

// Intersect returns the largest span contained in both s and o.
func (s Span) Intersect(o Span) Span {
	if s.IsEmpty() || o.IsEmpty() {
		return EmptySpan
	}
	r := Span{Start: max64(s.Start, o.Start), End: min64(s.End, o.End)}
	if r.IsEmpty() {
		return EmptySpan
	}
	return r
}

// Union returns the smallest span containing both s and o (the convex
// hull; any gap between them is included).
func (s Span) Union(o Span) Span {
	if s.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return s
	}
	return Span{Start: min64(s.Start, o.Start), End: max64(s.End, o.End)}
}

// Shift translates the span by delta positions, clamping at the
// sentinels. Unbounded endpoints remain unbounded.
func (s Span) Shift(delta Pos) Span {
	if s.IsEmpty() {
		return EmptySpan
	}
	r := s
	if r.Start > MinPos {
		r.Start = ClampPos(r.Start + delta)
	}
	if r.End < MaxPos {
		r.End = ClampPos(r.End + delta)
	}
	return r
}

// Grow widens the span by lo positions on the left and hi on the right
// (negative arguments shrink). Unbounded endpoints remain unbounded.
func (s Span) Grow(lo, hi Pos) Span {
	if s.IsEmpty() {
		return EmptySpan
	}
	r := s
	if r.Start > MinPos {
		r.Start = ClampPos(r.Start - lo)
	}
	if r.End < MaxPos {
		r.End = ClampPos(r.End + hi)
	}
	if r.IsEmpty() {
		return EmptySpan
	}
	return r
}

// EffectivelyUnbounded reports whether a position is in the sentinel
// region: not a real data position but the result of unbounded-span
// arithmetic. Real positions are minuscule compared to the sentinels.
func EffectivelyUnbounded(p Pos) bool {
	return p <= MinPos/2 || p >= MaxPos/2
}

// ClampUnboundedTo replaces the span's effectively unbounded sides by
// the corresponding side of u, leaving finite sides untouched. It is how
// access spans are bounded: a finite side is an exact requirement that
// must be preserved, while an unbounded side means "as far as data can
// matter" — which is what u describes.
func (s Span) ClampUnboundedTo(u Span) Span {
	if s.IsEmpty() {
		return EmptySpan
	}
	r := s
	if EffectivelyUnbounded(r.Start) {
		r.Start = u.Start
	}
	if EffectivelyUnbounded(r.End) {
		r.End = u.End
	}
	if r.IsEmpty() {
		return EmptySpan
	}
	return r
}

// String renders the span; unbounded endpoints print as -inf/+inf.
func (s Span) String() string {
	if s.IsEmpty() {
		return "[empty]"
	}
	lo, hi := "-inf", "+inf"
	if s.Start > MinPos {
		lo = fmt.Sprintf("%d", s.Start)
	}
	if s.End < MaxPos {
		hi = fmt.Sprintf("%d", s.End)
	}
	return "[" + lo + ", " + hi + "]"
}

func min64(a, b Pos) Pos {
	if a < b {
		return a
	}
	return b
}

func max64(a, b Pos) Pos {
	if a > b {
		return a
	}
	return b
}
