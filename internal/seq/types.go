// Package seq defines the core sequence data model of the SIGMOD 1994
// "Sequence Query Processing" paper: atomic value types, record schemas,
// records with explicit Null semantics, integer positions with spans, and
// the Sequence abstraction with its two access modes (stream and probed).
//
// A sequence is modeled as a function from integer positions to records,
// where positions that carry no data map to the distinguished Null record
// (represented in Go as a nil Record). Implementations never materialize
// Null records; they are a modeling device only (paper, footnote 2).
package seq

import (
	"fmt"
	"math"
	"strconv"
)

// Type identifies one of the indivisible atomic types that record
// attributes may take (paper §2: "indivisible atomic types of fixed size").
type Type uint8

// The atomic types supported by the model.
const (
	TInvalid Type = iota
	TInt          // 64-bit signed integer
	TFloat        // 64-bit IEEE floating point
	TString       // immutable byte string
	TBool         // boolean
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	case TBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Numeric reports whether the type participates in arithmetic and in the
// numeric aggregate functions (Sum, Avg, Min, Max).
func (t Type) Numeric() bool { return t == TInt || t == TFloat }

// Value is a single atomic value: a tagged union over the atomic types.
// The zero Value has type TInvalid and is not a legal attribute value;
// record-level absence is expressed by the Null record, not by values.
type Value struct {
	T Type
	i int64
	f float64
	s string
	b bool
}

// Int returns an integer value.
func Int(v int64) Value { return Value{T: TInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{T: TFloat, f: v} }

// Str returns a string value.
func Str(v string) Value { return Value{T: TString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{T: TBool, b: v} }

// AsInt returns the integer content; it panics if the value is not TInt.
func (v Value) AsInt() int64 {
	if v.T != TInt {
		panic("seq: AsInt on " + v.T.String())
	}
	return v.i
}

// AsFloat returns the numeric content widened to float64; it panics if the
// value is not numeric.
func (v Value) AsFloat() float64 {
	switch v.T {
	case TFloat:
		return v.f
	case TInt:
		return float64(v.i)
	default:
		panic("seq: AsFloat on " + v.T.String())
	}
}

// AsStr returns the string content; it panics if the value is not TString.
func (v Value) AsStr() string {
	if v.T != TString {
		panic("seq: AsStr on " + v.T.String())
	}
	return v.s
}

// AsBool returns the boolean content; it panics if the value is not TBool.
func (v Value) AsBool() bool {
	if v.T != TBool {
		panic("seq: AsBool on " + v.T.String())
	}
	return v.b
}

// String renders the value for display and debugging.
func (v Value) String() string {
	switch v.T {
	case TInt:
		return strconv.FormatInt(v.i, 10)
	case TFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TString:
		return strconv.Quote(v.s)
	case TBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// Equal reports whether two values are identical in type and content.
// Unlike Compare, Equal does not coerce between numeric types.
func (v Value) Equal(o Value) bool {
	if v.T != o.T {
		return false
	}
	switch v.T {
	case TInt:
		return v.i == o.i
	case TFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case TString:
		return v.s == o.s
	case TBool:
		return v.b == o.b
	default:
		return true
	}
}

// Compare orders two values, coercing between TInt and TFloat. It returns
// a negative number, zero, or a positive number as v is less than, equal
// to, or greater than o. Comparing incomparable types returns an error.
func (v Value) Compare(o Value) (int, error) {
	switch {
	case v.T == TInt && o.T == TInt:
		switch {
		case v.i < o.i:
			return -1, nil
		case v.i > o.i:
			return 1, nil
		default:
			return 0, nil
		}
	case v.T.Numeric() && o.T.Numeric():
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	case v.T == TString && o.T == TString:
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		default:
			return 0, nil
		}
	case v.T == TBool && o.T == TBool:
		switch {
		case !v.b && o.b:
			return -1, nil
		case v.b && !o.b:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("seq: cannot compare %s with %s", v.T, o.T)
	}
}
