package seq

import "testing"

func stockSchema() *Schema {
	return MustSchema(
		Field{Name: "open", Type: TFloat},
		Field{Name: "close", Type: TFloat},
		Field{Name: "volume", Type: TInt},
	)
}

func TestNewSchemaRejectsBadFields(t *testing.T) {
	if _, err := NewSchema(Field{Name: "", Type: TInt}); err == nil {
		t.Error("empty name must be rejected")
	}
	if _, err := NewSchema(Field{Name: "a", Type: TInvalid}); err == nil {
		t.Error("invalid type must be rejected")
	}
	if _, err := NewSchema(Field{Name: "a", Type: TInt}, Field{Name: "a", Type: TInt}); err == nil {
		t.Error("duplicate names must be rejected")
	}
}

func TestSchemaIndex(t *testing.T) {
	s := stockSchema()
	if s.Index("close") != 1 {
		t.Errorf("Index(close) = %d, want 1", s.Index("close"))
	}
	if s.Index("nope") != -1 {
		t.Error("missing field must return -1")
	}
}

func TestSchemaIndexQualifiedSuffix(t *testing.T) {
	s := MustSchema(
		Field{Name: "ibm.close", Type: TFloat},
		Field{Name: "hp.close", Type: TFloat},
		Field{Name: "hp.volume", Type: TInt},
	)
	if got := s.Index("volume"); got != 2 {
		t.Errorf("unqualified unique suffix: got %d, want 2", got)
	}
	if got := s.Index("close"); got != -1 {
		t.Errorf("ambiguous unqualified suffix must return -1, got %d", got)
	}
	if got := s.Index("hp.close"); got != 1 {
		t.Errorf("qualified exact: got %d, want 1", got)
	}
	if got := s.Index("dec.close"); got != -1 {
		t.Errorf("missing qualified name must return -1, got %d", got)
	}
}

func TestSchemaConcatNoCollision(t *testing.T) {
	a := MustSchema(Field{Name: "x", Type: TInt})
	b := MustSchema(Field{Name: "y", Type: TFloat})
	c, err := a.Concat(b, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumFields() != 2 || c.Field(0).Name != "x" || c.Field(1).Name != "y" {
		t.Errorf("unexpected concat schema %v", c)
	}
}

func TestSchemaConcatCollisionQualifies(t *testing.T) {
	a := MustSchema(Field{Name: "close", Type: TFloat}, Field{Name: "x", Type: TInt})
	b := MustSchema(Field{Name: "close", Type: TFloat})
	c, err := a.Concat(b, "ibm", "hp")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ibm.close", "x", "hp.close"}
	for i, name := range want {
		if c.Field(i).Name != name {
			t.Errorf("field %d = %q, want %q", i, c.Field(i).Name, name)
		}
	}
}

func TestSchemaConcatDefaultQualifiers(t *testing.T) {
	a := MustSchema(Field{Name: "v", Type: TInt})
	b := MustSchema(Field{Name: "v", Type: TInt})
	c, err := a.Concat(b, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Field(0).Name != "l.v" || c.Field(1).Name != "r.v" {
		t.Errorf("default qualifiers wrong: %v", c)
	}
}

func TestSchemaProject(t *testing.T) {
	s := stockSchema()
	p, err := s.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Field(0).Name != "volume" || p.Field(1).Name != "open" {
		t.Errorf("unexpected projection %v", p)
	}
	if _, err := s.Project([]int{5}); err == nil {
		t.Error("out-of-range projection must fail")
	}
}

func TestSchemaRename(t *testing.T) {
	s := stockSchema()
	r, err := s.Rename(1, "last")
	if err != nil {
		t.Fatal(err)
	}
	if r.Index("last") != 1 || r.Index("close") != -1 {
		t.Errorf("rename did not take: %v", r)
	}
	if _, err := s.Rename(9, "x"); err == nil {
		t.Error("out-of-range rename must fail")
	}
}

func TestSchemaEqual(t *testing.T) {
	a, b := stockSchema(), stockSchema()
	if !a.Equal(b) {
		t.Error("identical schemas must be equal")
	}
	c := MustSchema(Field{Name: "open", Type: TFloat})
	if a.Equal(c) {
		t.Error("different arities must not be equal")
	}
	var nilSchema *Schema
	if a.Equal(nilSchema) || nilSchema.Equal(a) {
		t.Error("nil schema comparisons must be false")
	}
	if !nilSchema.Equal(nilSchema) {
		t.Error("nil == nil (same pointer) must be true")
	}
}

func TestSchemaString(t *testing.T) {
	got := stockSchema().String()
	want := "<open float, close float, volume int>"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
