package seq

import (
	"testing"
	"testing/quick"
)

func TestSpanBasics(t *testing.T) {
	s := NewSpan(200, 500)
	if s.IsEmpty() {
		t.Error("non-empty span reported empty")
	}
	if s.Len() != 301 {
		t.Errorf("Len = %d, want 301", s.Len())
	}
	if !s.Contains(200) || !s.Contains(500) || s.Contains(199) || s.Contains(501) {
		t.Error("Contains boundaries wrong")
	}
	if !EmptySpan.IsEmpty() || EmptySpan.Len() != 0 {
		t.Error("EmptySpan must be empty with zero length")
	}
	if !s.Bounded() || AllSpan.Bounded() {
		t.Error("boundedness wrong")
	}
}

func TestSpanIntersect(t *testing.T) {
	// Table 1 / Figure 3: DEC [1,350] ∩ IBM [200,500] ∩ HP [1,750] = [200,350].
	dec, ibm, hp := NewSpan(1, 350), NewSpan(200, 500), NewSpan(1, 750)
	got := dec.Intersect(ibm).Intersect(hp)
	if got != NewSpan(200, 350) {
		t.Errorf("intersection = %v, want [200, 350]", got)
	}
	if !NewSpan(1, 2).Intersect(NewSpan(5, 9)).IsEmpty() {
		t.Error("disjoint intersection must be empty")
	}
	if !EmptySpan.Intersect(ibm).IsEmpty() || !ibm.Intersect(EmptySpan).IsEmpty() {
		t.Error("intersection with empty must be empty")
	}
}

func TestSpanUnion(t *testing.T) {
	if got := NewSpan(1, 5).Union(NewSpan(10, 20)); got != NewSpan(1, 20) {
		t.Errorf("union hull = %v, want [1, 20]", got)
	}
	s := NewSpan(3, 7)
	if EmptySpan.Union(s) != s || s.Union(EmptySpan) != s {
		t.Error("union with empty must be identity")
	}
}

func TestSpanShift(t *testing.T) {
	if got := NewSpan(10, 20).Shift(-5); got != NewSpan(5, 15) {
		t.Errorf("shift = %v, want [5, 15]", got)
	}
	// Unbounded endpoints stay unbounded.
	s := Span{Start: MinPos, End: 100}
	if got := s.Shift(10); got.Start != MinPos || got.End != 110 {
		t.Errorf("unbounded shift = %v", got)
	}
	if !EmptySpan.Shift(3).IsEmpty() {
		t.Error("shifting empty must stay empty")
	}
	// Clamping at sentinels.
	if got := NewSpan(MaxPos-1, MaxPos-1).Shift(100); got.End != MaxPos {
		t.Errorf("shift must clamp at MaxPos, got %v", got)
	}
}

func TestSpanGrow(t *testing.T) {
	if got := NewSpan(10, 20).Grow(2, 3); got != NewSpan(8, 23) {
		t.Errorf("grow = %v, want [8, 23]", got)
	}
	if got := NewSpan(10, 20).Grow(-4, -4); got != NewSpan(14, 16) {
		t.Errorf("negative grow = %v, want [14, 16]", got)
	}
	if !NewSpan(10, 12).Grow(-5, -5).IsEmpty() {
		t.Error("over-shrunk span must be empty")
	}
}

func TestSpanString(t *testing.T) {
	if got := NewSpan(1, 2).String(); got != "[1, 2]" {
		t.Errorf("String() = %q", got)
	}
	if got := AllSpan.String(); got != "[-inf, +inf]" {
		t.Errorf("String() = %q", got)
	}
	if got := EmptySpan.String(); got != "[empty]" {
		t.Errorf("String() = %q", got)
	}
}

func TestSpanLenUnboundedSaturates(t *testing.T) {
	if AllSpan.Len() != MaxPos {
		t.Error("unbounded span length must saturate")
	}
	if (Span{Start: 0, End: MaxPos}).Len() != MaxPos {
		t.Error("half-unbounded span length must saturate")
	}
}

func TestClampPos(t *testing.T) {
	if ClampPos(MinPos-1) != MinPos || ClampPos(MaxPos+1) != MaxPos || ClampPos(42) != 42 {
		t.Error("ClampPos wrong")
	}
}

// Intersection is idempotent, commutative and contained in both operands.
func TestSpanIntersectProperties(t *testing.T) {
	gen := func(a, b int16) Span { return Span{Start: Pos(a), End: Pos(b)} }
	f := func(a1, a2, b1, b2 int16) bool {
		s, o := gen(a1, a2), gen(b1, b2)
		r := s.Intersect(o)
		if r != o.Intersect(s) {
			return false
		}
		if r != r.Intersect(s) || r != r.Intersect(o) {
			return false
		}
		if !r.IsEmpty() && (!s.Contains(r.Start) || !o.Contains(r.Start) || !s.Contains(r.End) || !o.Contains(r.End)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Shifting by d then by -d is the identity on bounded spans.
func TestSpanShiftRoundTrip(t *testing.T) {
	f := func(a, b int16, d int16) bool {
		s := Span{Start: Pos(a), End: Pos(b)}
		r := s.Shift(Pos(d)).Shift(-Pos(d))
		if s.IsEmpty() {
			return r.IsEmpty()
		}
		return r == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
