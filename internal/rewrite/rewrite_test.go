package rewrite

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
	"repro/internal/testgen"
)

var closeSchema = seq.MustSchema(seq.Field{Name: "close", Type: seq.TFloat})

func mkBase(t *testing.T, name string, pairs map[seq.Pos]float64) *algebra.Node {
	t.Helper()
	es := make([]seq.Entry, 0, len(pairs))
	for p, v := range pairs {
		es = append(es, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(v)}})
	}
	return algebra.Base(name, seq.MustMaterialized(closeSchema, es))
}

func gtPred(t *testing.T, schema *seq.Schema, col string, v float64) expr.Expr {
	t.Helper()
	c, err := expr.NewCol(schema, col)
	if err != nil {
		t.Fatal(err)
	}
	e, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(v)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// assertEquivalent rewrites the query and checks the result agrees with
// the reference interpreter on the original.
func assertEquivalent(t *testing.T, orig *algebra.Node) *algebra.Node {
	t.Helper()
	rewritten, _, err := Rewrite(orig, DefaultRules())
	if err != nil {
		t.Fatalf("rewrite: %v\n%s", err, orig)
	}
	span := seq.NewSpan(-10, 45)
	want, err := algebra.EvalRange(orig, span)
	if err != nil {
		t.Fatalf("eval original: %v", err)
	}
	got, err := algebra.EvalRange(rewritten, span)
	if err != nil {
		t.Fatalf("eval rewritten: %v\noriginal:\n%s\nrewritten:\n%s", err, orig, rewritten)
	}
	if !testgen.EntriesEqual(got, want) {
		t.Fatalf("rewrite changed semantics\noriginal:\n%s\nrewritten:\n%s\nwant %v\ngot %v",
			orig, rewritten, want, got)
	}
	return rewritten
}

func TestMergeSelects(t *testing.T) {
	b := mkBase(t, "s", map[seq.Pos]float64{1: 5, 2: 9, 3: 12})
	s1, _ := algebra.Select(b, gtPred(t, b.Schema, "close", 4))
	s2, _ := algebra.Select(s1, gtPred(t, b.Schema, "close", 10))
	out := assertEquivalent(t, s2)
	if out.Kind != algebra.KindSelect || out.Inputs[0].Kind != algebra.KindBase {
		t.Errorf("selects not merged:\n%s", out)
	}
}

func TestPushSelectThroughProject(t *testing.T) {
	b := mkBase(t, "s", map[seq.Pos]float64{1: 5, 2: 9})
	c, _ := expr.NewCol(b.Schema, "close")
	dbl, _ := expr.NewBin(expr.OpMul, c, expr.Literal(seq.Float(2)))
	p, _ := algebra.Project(b, []algebra.ProjItem{{Expr: dbl, Name: "twice"}})
	s, _ := algebra.Select(p, gtPred(t, p.Schema, "twice", 15))
	out := assertEquivalent(t, s)
	// Canonical form: project over select.
	if out.Kind != algebra.KindProject || out.Inputs[0].Kind != algebra.KindSelect {
		t.Errorf("select not pushed through project:\n%s", out)
	}
}

func TestPushSelectThroughOffsetAndFuse(t *testing.T) {
	b := mkBase(t, "s", map[seq.Pos]float64{1: 5, 2: 9, 7: 3})
	o1, _ := algebra.PosOffset(b, 2)
	o2, _ := algebra.PosOffset(o1, 3)
	s, _ := algebra.Select(o2, gtPred(t, b.Schema, "close", 4))
	out := assertEquivalent(t, s)
	// offset(+5) over select over base.
	if out.Kind != algebra.KindPosOffset || out.Offset != 5 {
		t.Errorf("offsets not fused:\n%s", out)
	}
	if out.Inputs[0].Kind != algebra.KindSelect || out.Inputs[0].Inputs[0].Kind != algebra.KindBase {
		t.Errorf("select not pushed below offset:\n%s", out)
	}
}

func TestDropZeroOffset(t *testing.T) {
	b := mkBase(t, "s", map[seq.Pos]float64{1: 1})
	o, _ := algebra.PosOffset(b, 0)
	out := assertEquivalent(t, o)
	if out.Kind != algebra.KindBase {
		t.Errorf("zero offset not dropped:\n%s", out)
	}
}

func TestPushSelectThroughCompose(t *testing.T) {
	l := mkBase(t, "ibm", map[seq.Pos]float64{1: 10, 2: 20, 3: 30})
	r := mkBase(t, "hp", map[seq.Pos]float64{1: 15, 2: 15, 3: 35})
	cmp, _ := algebra.Compose(l, r, nil, "ibm", "hp")
	// (ibm.close > 12) and (ibm.close > hp.close): the first factor is
	// one-sided, the second must stay at the compose.
	ic, _ := expr.NewCol(cmp.Schema, "ibm.close")
	hc, _ := expr.NewCol(cmp.Schema, "hp.close")
	oneSided, _ := expr.NewBin(expr.OpGt, ic, expr.Literal(seq.Float(12)))
	twoSided, _ := expr.NewBin(expr.OpGt, ic, hc)
	both, _ := expr.NewBin(expr.OpAnd, oneSided, twoSided)
	s, _ := algebra.Select(cmp, both)
	out := assertEquivalent(t, s)
	if out.Kind != algebra.KindCompose {
		t.Fatalf("select not absorbed:\n%s", out)
	}
	if out.Pred == nil || strings.Contains(out.Pred.String(), "12") {
		t.Errorf("one-sided factor should have left the join predicate: %v", out.Pred)
	}
	if out.Inputs[0].Kind != algebra.KindSelect {
		t.Errorf("one-sided factor not pushed into left input:\n%s", out)
	}
}

func TestPushComposePredRightSide(t *testing.T) {
	l := mkBase(t, "a", map[seq.Pos]float64{1: 1, 2: 2})
	r := mkBase(t, "b", map[seq.Pos]float64{1: 5, 2: 0})
	schema, _ := algebra.ComposeSchema(l, r, "a", "b")
	bc, _ := expr.NewCol(schema, "b.close")
	pred, _ := expr.NewBin(expr.OpGt, bc, expr.Literal(seq.Float(1)))
	cmp, _ := algebra.Compose(l, r, pred, "a", "b")
	out := assertEquivalent(t, cmp)
	if out.Pred != nil {
		t.Errorf("one-sided join predicate should be fully pushed: %v", out.Pred)
	}
	if out.Inputs[1].Kind != algebra.KindSelect {
		t.Errorf("predicate not pushed into right input:\n%s", out)
	}
}

func TestMergeProjects(t *testing.T) {
	b := mkBase(t, "s", map[seq.Pos]float64{1: 5})
	c, _ := expr.NewCol(b.Schema, "close")
	dbl, _ := expr.NewBin(expr.OpMul, c, expr.Literal(seq.Float(2)))
	p1, _ := algebra.Project(b, []algebra.ProjItem{{Expr: dbl, Name: "twice"}})
	tc, _ := expr.NewCol(p1.Schema, "twice")
	add, _ := expr.NewBin(expr.OpAdd, tc, expr.Literal(seq.Float(1)))
	p2, _ := algebra.Project(p1, []algebra.ProjItem{{Expr: add, Name: "plus"}})
	out := assertEquivalent(t, p2)
	if out.Kind != algebra.KindProject || out.Inputs[0].Kind != algebra.KindBase {
		t.Errorf("projects not merged:\n%s", out)
	}
}

func TestPushProjectThroughCompose(t *testing.T) {
	two := seq.MustSchema(
		seq.Field{Name: "x", Type: seq.TFloat},
		seq.Field{Name: "y", Type: seq.TFloat},
	)
	mk := func(name string) *algebra.Node {
		return algebra.Base(name, seq.MustMaterialized(two, []seq.Entry{
			{Pos: 1, Rec: seq.Record{seq.Float(1), seq.Float(2)}},
			{Pos: 2, Rec: seq.Record{seq.Float(3), seq.Float(4)}},
		}))
	}
	l, r := mk("l"), mk("r")
	cmp, _ := algebra.Compose(l, r, nil, "l", "r")
	// Keep only l.x: the r side should shrink to a witness column.
	p, _ := algebra.ProjectCols(cmp, "l.x")
	out := assertEquivalent(t, p)
	var sawInnerProject bool
	var walk func(n *algebra.Node)
	walk = func(n *algebra.Node) {
		if n.Kind == algebra.KindProject && n.Inputs[0].Kind == algebra.KindBase {
			sawInnerProject = true
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(out)
	if !sawInnerProject {
		t.Errorf("projection not pushed to the base inputs:\n%s", out)
	}
}

func TestDropTrivialProject(t *testing.T) {
	b := mkBase(t, "s", map[seq.Pos]float64{1: 1})
	p, _ := algebra.ProjectCols(b, "close")
	out := assertEquivalent(t, p)
	if out.Kind != algebra.KindBase {
		t.Errorf("trivial project not dropped:\n%s", out)
	}
}

func TestPushOffsetThroughComposeAggVOffset(t *testing.T) {
	l := mkBase(t, "a", map[seq.Pos]float64{1: 1, 2: 2, 5: 5})
	r := mkBase(t, "b", map[seq.Pos]float64{1: 9, 2: 8, 5: 7})
	cmp, _ := algebra.Compose(l, r, nil, "a", "b")
	o, _ := algebra.PosOffset(cmp, -2)
	out := assertEquivalent(t, o)
	if out.Kind != algebra.KindCompose {
		t.Errorf("offset not pushed through compose:\n%s", out)
	}

	ag, _ := algebra.AggCol(l, algebra.AggSum, "close", algebra.Trailing(3), "s")
	o2, _ := algebra.PosOffset(ag, 1)
	out = assertEquivalent(t, o2)
	if out.Kind != algebra.KindAgg {
		t.Errorf("offset not pushed through agg:\n%s", out)
	}

	vo, _ := algebra.Previous(l)
	o3, _ := algebra.PosOffset(vo, 2)
	out = assertEquivalent(t, o3)
	if out.Kind != algebra.KindValueOffset {
		t.Errorf("offset not pushed through voffset:\n%s", out)
	}
}

func TestSelectNotPushedThroughNonUnitScope(t *testing.T) {
	// §3.1: a selection cannot be pushed through an aggregate or value
	// offset. The rewriter must leave these in place.
	b := mkBase(t, "s", map[seq.Pos]float64{1: 1, 2: 2, 3: 3})
	ag, _ := algebra.AggCol(b, algebra.AggSum, "close", algebra.Trailing(2), "s2")
	sel, _ := algebra.Select(ag, gtPred(t, ag.Schema, "s2", 2))
	out := assertEquivalent(t, sel)
	if out.Kind != algebra.KindSelect || out.Inputs[0].Kind != algebra.KindAgg {
		t.Errorf("select over agg must not move:\n%s", out)
	}
	prev, _ := algebra.Previous(b)
	sel2, _ := algebra.Select(prev, gtPred(t, prev.Schema, "close", 1))
	out = assertEquivalent(t, sel2)
	if out.Kind != algebra.KindSelect || out.Inputs[0].Kind != algebra.KindValueOffset {
		t.Errorf("select over voffset must not move:\n%s", out)
	}
}

func TestRulesExcept(t *testing.T) {
	all := DefaultRules()
	noSel := RulesExcept("selects")
	if len(noSel) >= len(all) {
		t.Error("RulesExcept must drop rules")
	}
	for _, r := range noSel {
		if r.Group == "selects" {
			t.Errorf("rule %s should be excluded", r.Name)
		}
	}
	// Rewriting with selects disabled leaves the select stack alone.
	b := mkBase(t, "s", map[seq.Pos]float64{1: 5})
	s1, _ := algebra.Select(b, gtPred(t, b.Schema, "close", 1))
	s2, _ := algebra.Select(s1, gtPred(t, b.Schema, "close", 2))
	out, fired, err := Rewrite(s2, noSel)
	if err != nil {
		t.Fatal(err)
	}
	if fired != 0 || out.Inputs[0].Kind != algebra.KindSelect {
		t.Errorf("selects rewritten despite ablation (fired=%d):\n%s", fired, out)
	}
}

// The big one: random queries, rewritten, must agree with the reference
// interpreter on the original query.
func TestRewriteEquivalenceRandom(t *testing.T) {
	cfg := testgen.DefaultConfig()
	span := seq.NewSpan(-10, 45)
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q, err := testgen.RandomQuery(rng, cfg)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		if algebra.Divergent(q) {
			continue // rejected up front by evaluator and optimizer alike
		}
		rewritten, _, err := Rewrite(q, DefaultRules())
		if err != nil {
			t.Fatalf("seed %d: rewrite: %v\n%s", seed, err, q)
		}
		want, err := algebra.EvalRange(q, span)
		if err != nil {
			t.Fatalf("seed %d: eval original: %v\n%s", seed, err, q)
		}
		got, err := algebra.EvalRange(rewritten, span)
		if err != nil {
			t.Fatalf("seed %d: eval rewritten: %v\n%s", seed, err, rewritten)
		}
		if !testgen.EntriesEqual(got, want) {
			t.Fatalf("seed %d: semantics changed\noriginal:\n%s\nrewritten:\n%s",
				seed, q, rewritten)
		}
	}
}

func TestExtractJoinBlockSimple(t *testing.T) {
	a := mkBase(t, "a", map[seq.Pos]float64{1: 1})
	b := mkBase(t, "b", map[seq.Pos]float64{1: 2})
	c := mkBase(t, "c", map[seq.Pos]float64{1: 3})
	ab, _ := algebra.Compose(a, b, nil, "a", "b")
	pred := gtPred(t, ab.Schema, "a.close", 0)
	abp, _ := algebra.Compose(a, b, pred, "a", "b")
	abc, _ := algebra.Compose(abp, c, nil, "", "c")
	blk, ok, err := ExtractJoinBlock(abc)
	if err != nil || !ok {
		t.Fatalf("extract: %v, %v", ok, err)
	}
	if blk.NumSources() != 3 {
		t.Fatalf("sources = %d, want 3", blk.NumSources())
	}
	if len(blk.Preds) != 1 {
		t.Fatalf("preds = %d, want 1", len(blk.Preds))
	}
	if blk.Preds[0].Mask != SourceMask(0) {
		t.Errorf("pred mask = %b, want source 0 only", blk.Preds[0].Mask)
	}
	if blk.SourceStart[0] != 0 || blk.SourceStart[1] != 1 || blk.SourceStart[2] != 2 {
		t.Errorf("source starts = %v", blk.SourceStart)
	}
	if blk.Virtual.NumFields() != 3 {
		t.Errorf("virtual schema = %v", blk.Virtual)
	}
}

func TestExtractJoinBlockPostChainAndMasks(t *testing.T) {
	a := mkBase(t, "a", map[seq.Pos]float64{1: 1})
	b := mkBase(t, "b", map[seq.Pos]float64{1: 2})
	schema, _ := algebra.ComposeSchema(a, b, "a", "b")
	ac, _ := expr.NewCol(schema, "a.close")
	bc, _ := expr.NewCol(schema, "b.close")
	pred, _ := expr.NewBin(expr.OpLt, ac, bc)
	ab, _ := algebra.Compose(a, b, pred, "a", "b")
	proj, _ := algebra.ProjectCols(ab, "a.close")
	blk, ok, err := ExtractJoinBlock(proj)
	if err != nil || !ok {
		t.Fatalf("extract: %v, %v", ok, err)
	}
	if len(blk.Post) != 1 || blk.Post[0].Kind != algebra.KindProject {
		t.Errorf("post chain = %v", blk.Post)
	}
	if len(blk.Preds) != 1 || blk.Preds[0].Mask != (SourceMask(0)|SourceMask(1)) {
		t.Errorf("pred mask = %b", blk.Preds[0].Mask)
	}
	// A pure unary chain has no join block.
	sel, _ := algebra.Select(a, gtPred(t, a.Schema, "close", 0))
	if _, ok, _ := ExtractJoinBlock(sel); ok {
		t.Error("unary chain must not form a join block")
	}
	// Sources behind unary chains stay opaque.
	selA, _ := algebra.Select(a, gtPred(t, a.Schema, "close", 0))
	mix, _ := algebra.Compose(selA, b, nil, "a", "b")
	blk, ok, err = ExtractJoinBlock(mix)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if blk.Sources[0].Kind != algebra.KindSelect {
		t.Errorf("chain source = %v", blk.Sources[0].Kind)
	}
	// Virtual-schema name collisions are disambiguated.
	same, _ := algebra.Compose(a, a, nil, "x", "y")
	blk, ok, err = ExtractJoinBlock(same)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if blk.Virtual.Field(0).Name == blk.Virtual.Field(1).Name {
		t.Error("virtual schema names must be unique")
	}
}

func TestExtractJoinBlockNestedBelowAgg(t *testing.T) {
	// compose(agg(compose(a, b)), c): the inner block ends at the agg.
	a := mkBase(t, "a", map[seq.Pos]float64{1: 1})
	b := mkBase(t, "b", map[seq.Pos]float64{1: 2})
	c := mkBase(t, "c", map[seq.Pos]float64{1: 3})
	inner, _ := algebra.Compose(a, b, nil, "a", "b")
	ag, _ := algebra.AggCol(inner, algebra.AggSum, "a.close", algebra.Trailing(2), "s")
	outer, _ := algebra.Compose(ag, c, nil, "s", "c")
	blk, ok, err := ExtractJoinBlock(outer)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if blk.NumSources() != 2 {
		t.Fatalf("sources = %d, want 2 (agg output is one source)", blk.NumSources())
	}
	if blk.Sources[0].Kind != algebra.KindAgg {
		t.Errorf("first source = %v, want agg", blk.Sources[0].Kind)
	}
}

func TestConstantFolding(t *testing.T) {
	b := mkBase(t, "s", map[seq.Pos]float64{1: 5, 2: 9})
	// close > 2 + 3 folds to close > 5.
	c, _ := expr.NewCol(b.Schema, "close")
	sum, _ := expr.NewBin(expr.OpAdd, expr.Literal(seq.Float(2)), expr.Literal(seq.Float(3)))
	pred, _ := expr.NewBin(expr.OpGt, c, sum)
	sel, _ := algebra.Select(b, pred)
	out := assertEquivalent(t, sel)
	if !strings.Contains(out.Pred.String(), "5") || strings.Contains(out.Pred.String(), "+") {
		t.Errorf("literal arithmetic not folded: %v", out.Pred)
	}
	// A tautological selection disappears.
	tauto, _ := expr.NewBin(expr.OpLt, expr.Literal(seq.Float(1)), expr.Literal(seq.Float(2)))
	sel2, _ := algebra.Select(b, tauto)
	out = assertEquivalent(t, sel2)
	if out.Kind != algebra.KindBase {
		t.Errorf("sigma(true) not removed:\n%s", out)
	}
	// true AND p simplifies to p; false OR p to p.
	tr := expr.Literal(seq.Bool(true))
	gt, _ := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(6)))
	and, _ := expr.NewBin(expr.OpAnd, tr, gt)
	sel3, _ := algebra.Select(b, and)
	out = assertEquivalent(t, sel3)
	if strings.Contains(out.Pred.String(), "and") {
		t.Errorf("true AND p not simplified: %v", out.Pred)
	}
	// An always-true join predicate is dropped.
	r := mkBase(t, "r", map[seq.Pos]float64{1: 1, 2: 2})
	cmp, _ := algebra.Compose(b, r, tauto, "a", "b")
	out = assertEquivalent(t, cmp)
	if out.Pred != nil {
		t.Errorf("tautological join predicate kept: %v", out.Pred)
	}
	// Division by zero in a literal expression is left to run time.
	div, _ := expr.NewBin(expr.OpDiv, expr.Literal(seq.Int(1)), expr.Literal(seq.Int(0)))
	eq, _ := expr.NewBin(expr.OpEq, div, expr.Literal(seq.Int(1)))
	sel4, err := algebra.Select(b, eq)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Rewrite(sel4, DefaultRules()); err != nil {
		t.Fatalf("folding must not fail on 1/0: %v", err)
	}
	// not/neg folding.
	notTr, _ := expr.NewNot(tr)
	sel5, _ := algebra.Select(b, notTr)
	rw, _, err := Rewrite(sel5, DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rw.Pred.String(), "false") {
		t.Errorf("not true not folded: %v", rw.Pred)
	}
	neg, _ := expr.NewNeg(expr.Literal(seq.Float(3)))
	lt, _ := expr.NewBin(expr.OpLt, c, neg)
	sel6, _ := algebra.Select(b, lt)
	out = assertEquivalent(t, sel6)
	if strings.Contains(out.Pred.String(), "--") {
		t.Errorf("neg literal not folded: %v", out.Pred)
	}
}
