package rewrite

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
)

// Rule is one equivalence transformation, matched at the root of a
// subtree. Apply returns the transformed node and whether it fired.
type Rule struct {
	Name  string
	Group string // "selects", "projects" or "offsets", for ablation
	Apply func(n *algebra.Node) (*algebra.Node, bool, error)
}

// DefaultRules returns the full §3.1 rule set in application order.
func DefaultRules() []Rule {
	return []Rule{
		{"fold-constants", "fold", foldPredicates},
		{"merge-selects", "selects", mergeSelects},
		{"push-select-through-project", "selects", pushSelectThroughProject},
		{"push-select-through-offset", "selects", pushSelectThroughOffset},
		{"push-select-through-compose", "selects", pushSelectThroughCompose},
		{"push-compose-pred", "selects", pushComposePred},
		{"merge-projects", "projects", mergeProjects},
		{"push-project-through-offset", "projects", pushProjectThroughOffset},
		{"push-project-through-compose", "projects", pushProjectThroughCompose},
		{"drop-trivial-project", "projects", dropTrivialProject},
		{"fuse-offsets", "offsets", fuseOffsets},
		{"drop-zero-offset", "offsets", dropZeroOffset},
		{"push-offset-through-compose", "offsets", pushOffsetThroughCompose},
		{"push-offset-through-agg", "offsets", pushOffsetThroughAgg},
		{"push-offset-through-voffset", "offsets", pushOffsetThroughVOffset},
	}
}

// RulesExcept returns the default rules minus the named groups — the
// ablation knob of experiment E8.
func RulesExcept(groups ...string) []Rule {
	skip := make(map[string]bool, len(groups))
	for _, g := range groups {
		skip[g] = true
	}
	var out []Rule
	for _, r := range DefaultRules() {
		if !skip[r.Group] {
			out = append(out, r)
		}
	}
	return out
}

// Hook observes one successful rule application: the rule's name, the
// subtree it matched, and the subtree it produced. A non-nil error
// aborts the rewrite. Hooks exist for verification (the optimizer's
// debug mode installs planlint's per-rule invariant check) and must not
// mutate either tree.
type Hook func(rule string, before, after *algebra.Node) error

// Rewrite applies the rules bottom-up to a fixpoint and returns the
// transformed tree along with the number of rule firings.
func Rewrite(root *algebra.Node, rules []Rule) (*algebra.Node, int, error) {
	return RewriteWithHook(root, rules, nil)
}

// RewriteWithHook is Rewrite with a per-rule-firing observer. A nil hook
// is equivalent to Rewrite.
func RewriteWithHook(root *algebra.Node, rules []Rule, hook Hook) (*algebra.Node, int, error) {
	total := 0
	for pass := 0; pass < 64; pass++ {
		n, fired, err := rewritePass(root, rules, hook)
		if err != nil {
			return nil, total, err
		}
		total += fired
		root = n
		if fired == 0 {
			return root, total, nil
		}
	}
	return nil, total, fmt.Errorf("rewrite: no fixpoint after 64 passes (rule cycle?)")
}

func rewritePass(n *algebra.Node, rules []Rule, hook Hook) (*algebra.Node, int, error) {
	fired := 0
	// Children first.
	if len(n.Inputs) > 0 {
		newInputs := make([]*algebra.Node, len(n.Inputs))
		changed := false
		for i, in := range n.Inputs {
			ni, f, err := rewritePass(in, rules, hook)
			if err != nil {
				return nil, fired, err
			}
			fired += f
			newInputs[i] = ni
			if ni != in {
				changed = true
			}
		}
		if changed {
			var err error
			n, err = rebuild(n, newInputs)
			if err != nil {
				return nil, fired, err
			}
		}
	}
	// Then rules at this node, until none fires.
	for budget := 0; budget < 32; budget++ {
		applied := false
		for _, r := range rules {
			nn, ok, err := r.Apply(n)
			if err != nil {
				return nil, fired, fmt.Errorf("rewrite: rule %s: %w", r.Name, err)
			}
			if ok {
				if hook != nil {
					if herr := hook(r.Name, n, nn); herr != nil {
						return nil, fired, fmt.Errorf("rewrite: rule %s: %w", r.Name, herr)
					}
				}
				n = nn
				fired++
				applied = true
				break
			}
		}
		if !applied {
			return n, fired, nil
		}
	}
	return nil, fired, fmt.Errorf("rewrite: rule loop at %s", n.Kind)
}

// rebuild reconstructs a node over new inputs, revalidating through the
// algebra constructors.
func rebuild(n *algebra.Node, inputs []*algebra.Node) (*algebra.Node, error) {
	switch n.Kind {
	case algebra.KindBase, algebra.KindConst:
		return n, nil // leaves have no inputs to rebuild over
	case algebra.KindSelect:
		return algebra.Select(inputs[0], n.Pred)
	case algebra.KindProject:
		return algebra.Project(inputs[0], cloneItems(n.Items))
	case algebra.KindPosOffset:
		return algebra.PosOffset(inputs[0], n.Offset)
	case algebra.KindValueOffset:
		return algebra.ValueOffset(inputs[0], n.Offset)
	case algebra.KindAgg:
		return algebra.Agg(inputs[0], *n.Agg)
	case algebra.KindCompose:
		return algebra.Compose(inputs[0], inputs[1], n.Pred, n.LeftQual, n.RightQual)
	case algebra.KindCollapse:
		return algebra.Collapse(inputs[0], n.Factor, *n.Agg)
	case algebra.KindExpand:
		return algebra.Expand(inputs[0], n.Factor)
	default:
		return n, nil
	}
}

func cloneItems(items []algebra.ProjItem) []algebra.ProjItem {
	return append([]algebra.ProjItem(nil), items...)
}

// --- Selection rules -------------------------------------------------

// mergeSelects: σp(σq(S)) = σ(q∧p)(S).
func mergeSelects(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindSelect || n.Inputs[0].Kind != algebra.KindSelect {
		return n, false, nil
	}
	child := n.Inputs[0]
	pred, err := expr.And(child.Pred, n.Pred)
	if err != nil {
		return nil, false, err
	}
	out, err := algebra.Select(child.Inputs[0], pred)
	return out, err == nil, err
}

// pushSelectThroughProject: σp(π(S)) = π(σ(p∘π)(S)). Always legal
// because the substituted predicate reads exactly the attributes the
// projection computes from.
func pushSelectThroughProject(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindSelect || n.Inputs[0].Kind != algebra.KindProject {
		return n, false, nil
	}
	child := n.Inputs[0]
	pred, err := subst(n.Pred, child.Items)
	if err != nil {
		return nil, false, err
	}
	sel, err := algebra.Select(child.Inputs[0], pred)
	if err != nil {
		return nil, false, err
	}
	out, err := algebra.Project(sel, cloneItems(child.Items))
	return out, err == nil, err
}

// pushSelectThroughOffset: σp(offset(S, l)) = offset(σp(S), l). Legal
// because offsets have unit relative scope (§3.1).
func pushSelectThroughOffset(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindSelect || n.Inputs[0].Kind != algebra.KindPosOffset {
		return n, false, nil
	}
	child := n.Inputs[0]
	sel, err := algebra.Select(child.Inputs[0], n.Pred)
	if err != nil {
		return nil, false, err
	}
	out, err := algebra.PosOffset(sel, child.Offset)
	return out, err == nil, err
}

// pushSelectThroughCompose pushes one-sided conjuncts of a selection
// above a compose into the corresponding input; multi-sided conjuncts
// merge into the compose's join predicate.
func pushSelectThroughCompose(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindSelect || n.Inputs[0].Kind != algebra.KindCompose {
		return n, false, nil
	}
	child := n.Inputs[0]
	newL, newR, rest, pushed, err := distributeFactors(child, splitConjuncts(n.Pred))
	if err != nil {
		return nil, false, err
	}
	if !pushed {
		// Nothing one-sided: merge the selection into the join predicate
		// so the block optimizer sees a single predicate set.
		pred, err := expr.And(child.Pred, n.Pred)
		if err != nil {
			return nil, false, err
		}
		out, err := algebra.Compose(child.Inputs[0], child.Inputs[1], pred, child.LeftQual, child.RightQual)
		return out, err == nil, err
	}
	restPred, err := conjoin(rest)
	if err != nil {
		return nil, false, err
	}
	pred, err := expr.And(child.Pred, restPred)
	if err != nil {
		return nil, false, err
	}
	out, err := algebra.Compose(newL, newR, pred, child.LeftQual, child.RightQual)
	return out, err == nil, err
}

// pushComposePred pushes one-sided conjuncts of a compose's own join
// predicate into the inputs.
func pushComposePred(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindCompose || n.Pred == nil {
		return n, false, nil
	}
	newL, newR, rest, pushed, err := distributeFactors(n, splitConjuncts(n.Pred))
	if err != nil {
		return nil, false, err
	}
	if !pushed {
		return n, false, nil
	}
	restPred, err := conjoin(rest)
	if err != nil {
		return nil, false, err
	}
	out, err := algebra.Compose(newL, newR, restPred, n.LeftQual, n.RightQual)
	return out, err == nil, err
}

// distributeFactors sorts predicate factors over a compose node into
// selections on the left input, the right input, or a remainder. It
// returns the (possibly wrapped) inputs and whether anything moved.
func distributeFactors(compose *algebra.Node, factors []expr.Expr) (l, r *algebra.Node, rest []expr.Expr, pushed bool, err error) {
	l, r = compose.Inputs[0], compose.Inputs[1]
	leftN := l.Schema.NumFields()
	total := compose.Schema.NumFields()
	var leftF, rightF []expr.Expr
	for _, f := range factors {
		switch {
		case colsWithin(f, 0, leftN):
			leftF = append(leftF, f)
		case colsWithin(f, leftN, total):
			shifted, serr := shiftCols(f, -leftN)
			if serr != nil {
				return nil, nil, nil, false, serr
			}
			rightF = append(rightF, shifted)
		default:
			rest = append(rest, f)
		}
	}
	if len(leftF) > 0 {
		pred, cerr := conjoin(leftF)
		if cerr != nil {
			return nil, nil, nil, false, cerr
		}
		l, err = algebra.Select(l, pred)
		if err != nil {
			return nil, nil, nil, false, err
		}
		pushed = true
	}
	if len(rightF) > 0 {
		pred, cerr := conjoin(rightF)
		if cerr != nil {
			return nil, nil, nil, false, cerr
		}
		r, err = algebra.Select(r, pred)
		if err != nil {
			return nil, nil, nil, false, err
		}
		pushed = true
	}
	return l, r, rest, pushed, nil
}

// --- Projection rules ------------------------------------------------

// mergeProjects: π2(π1(S)) = (π2∘π1)(S).
func mergeProjects(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindProject || n.Inputs[0].Kind != algebra.KindProject {
		return n, false, nil
	}
	child := n.Inputs[0]
	items := make([]algebra.ProjItem, len(n.Items))
	for i, it := range n.Items {
		e, err := subst(it.Expr, child.Items)
		if err != nil {
			return nil, false, err
		}
		items[i] = algebra.ProjItem{Expr: e, Name: it.Name}
	}
	out, err := algebra.Project(child.Inputs[0], items)
	return out, err == nil, err
}

// pushProjectThroughOffset: π(offset(S, l)) = offset(π(S), l).
func pushProjectThroughOffset(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindProject || n.Inputs[0].Kind != algebra.KindPosOffset {
		return n, false, nil
	}
	child := n.Inputs[0]
	proj, err := algebra.Project(child.Inputs[0], cloneItems(n.Items))
	if err != nil {
		return nil, false, err
	}
	out, err := algebra.PosOffset(proj, child.Offset)
	return out, err == nil, err
}

// pushProjectThroughCompose narrows the inputs of a compose to the
// attributes that participate in the projection or the join predicate
// (§3.1: "a projection can be pushed through ... iff all the attributes
// that participate in O are among the projected attributes" — we keep
// the join attributes below, so the condition always holds).
func pushProjectThroughCompose(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindProject || n.Inputs[0].Kind != algebra.KindCompose {
		return n, false, nil
	}
	child := n.Inputs[0]
	l, r := child.Inputs[0], child.Inputs[1]
	leftN := l.Schema.NumFields()

	needed := make(map[int]bool)
	for _, it := range n.Items {
		for _, c := range expr.Columns(it.Expr) {
			needed[c] = true
		}
	}
	if child.Pred != nil {
		for _, c := range expr.Columns(child.Pred) {
			needed[c] = true
		}
	}
	var neededL, neededR []int
	for c := 0; c < child.Schema.NumFields(); c++ {
		if !needed[c] {
			continue
		}
		if c < leftN {
			neededL = append(neededL, c)
		} else {
			neededR = append(neededR, c-leftN)
		}
	}
	// A side contributing no attributes still matters for the compose's
	// Null pattern: keep one attribute as an existence witness.
	keptL := neededL
	if len(keptL) == 0 {
		keptL = []int{0}
	}
	keptR := neededR
	if len(keptR) == 0 {
		keptR = []int{0}
	}
	// Fire only on a strict reduction of some side, or the rule loops.
	if len(keptL) == leftN && len(keptR) == r.Schema.NumFields() {
		return n, false, nil
	}
	projSide := func(side *algebra.Node, cols []int) (*algebra.Node, error) {
		if len(cols) == side.Schema.NumFields() {
			return side, nil
		}
		items := make([]algebra.ProjItem, len(cols))
		for k, c := range cols {
			col, err := expr.ColAt(side.Schema, c)
			if err != nil {
				return nil, err
			}
			items[k] = algebra.ProjItem{Expr: col, Name: side.Schema.Field(c).Name}
		}
		return algebra.Project(side, items)
	}
	newL, err := projSide(l, keptL)
	if err != nil {
		return nil, false, err
	}
	newR, err := projSide(r, keptR)
	if err != nil {
		return nil, false, err
	}
	// Old composed index -> new composed index.
	mapping := make(map[int]int)
	for k, c := range keptL {
		mapping[c] = k
	}
	for k, c := range keptR {
		mapping[leftN+c] = len(keptL) + k
	}
	var newPred expr.Expr
	if child.Pred != nil {
		newPred, err = expr.Remap(child.Pred, mapping)
		if err != nil {
			return nil, false, err
		}
	}
	newCompose, err := algebra.Compose(newL, newR, newPred, child.LeftQual, child.RightQual)
	if err != nil {
		return nil, false, err
	}
	items := make([]algebra.ProjItem, len(n.Items))
	for i, it := range n.Items {
		e, err := expr.Remap(it.Expr, mapping)
		if err != nil {
			return nil, false, err
		}
		items[i] = algebra.ProjItem{Expr: e, Name: it.Name}
	}
	out, err := algebra.Project(newCompose, items)
	return out, err == nil, err
}

// dropTrivialProject removes identity projections.
func dropTrivialProject(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindProject {
		return n, false, nil
	}
	child := n.Inputs[0]
	if len(n.Items) != child.Schema.NumFields() {
		return n, false, nil
	}
	for i, it := range n.Items {
		c, ok := it.Expr.(*expr.Col)
		if !ok || c.Index != i || it.Name != child.Schema.Field(i).Name {
			return n, false, nil
		}
	}
	return child, true, nil
}

// --- Offset rules ----------------------------------------------------

// fuseOffsets: offset(offset(S, l1), l2) = offset(S, l1+l2).
func fuseOffsets(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindPosOffset || n.Inputs[0].Kind != algebra.KindPosOffset {
		return n, false, nil
	}
	child := n.Inputs[0]
	out, err := algebra.PosOffset(child.Inputs[0], n.Offset+child.Offset)
	return out, err == nil, err
}

// dropZeroOffset: offset(S, 0) = S.
func dropZeroOffset(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindPosOffset || n.Offset != 0 {
		return n, false, nil
	}
	return n.Inputs[0], true, nil
}

// pushOffsetThroughCompose: offset(compose(L, R), l) =
// compose(offset(L, l), offset(R, l)) — offsets push through any
// operator of relative scope on all its inputs (§3.1).
func pushOffsetThroughCompose(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindPosOffset || n.Inputs[0].Kind != algebra.KindCompose {
		return n, false, nil
	}
	child := n.Inputs[0]
	l, err := algebra.PosOffset(child.Inputs[0], n.Offset)
	if err != nil {
		return nil, false, err
	}
	r, err := algebra.PosOffset(child.Inputs[1], n.Offset)
	if err != nil {
		return nil, false, err
	}
	out, err := algebra.Compose(l, r, child.Pred, child.LeftQual, child.RightQual)
	return out, err == nil, err
}

// pushOffsetThroughAgg: offset(agg(S, w), l) = agg(offset(S, l), w) —
// aggregates have relative scope.
func pushOffsetThroughAgg(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindPosOffset || n.Inputs[0].Kind != algebra.KindAgg {
		return n, false, nil
	}
	child := n.Inputs[0]
	in, err := algebra.PosOffset(child.Inputs[0], n.Offset)
	if err != nil {
		return nil, false, err
	}
	out, err := algebra.Agg(in, *child.Agg)
	return out, err == nil, err
}

// pushOffsetThroughVOffset: offset(voffset(S, k), l) =
// voffset(offset(S, l), k). Value offsets are not relative-scope, but
// they are shift-equivariant — translating the whole input translates
// the positions of its non-Null records uniformly, so "the k-th non-Null
// neighbor of i+l in S" is "the k-th non-Null neighbor of i in
// offset(S, l)". This slightly extends the paper's push-through rule;
// the equivalence is property-tested against the reference interpreter.
func pushOffsetThroughVOffset(n *algebra.Node) (*algebra.Node, bool, error) {
	if n.Kind != algebra.KindPosOffset || n.Inputs[0].Kind != algebra.KindValueOffset {
		return n, false, nil
	}
	child := n.Inputs[0]
	in, err := algebra.PosOffset(child.Inputs[0], n.Offset)
	if err != nil {
		return nil, false, err
	}
	out, err := algebra.ValueOffset(in, child.Offset)
	return out, err == nil, err
}
