package rewrite_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/planlint"
	"repro/internal/rewrite"
	"repro/internal/seq"
	"repro/internal/testgen"
)

func auditBase(t *testing.T, name string) *algebra.Node {
	t.Helper()
	schema, err := seq.NewSchema(
		seq.Field{Name: "v", Type: seq.TInt},
		seq.Field{Name: "w", Type: seq.TInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	var entries []seq.Entry
	for p := seq.Pos(0); p <= 24; p += 2 {
		entries = append(entries, seq.Entry{Pos: p, Rec: seq.Record{seq.Int(int64(p)), seq.Int(-int64(p))}})
	}
	return algebra.Base(name, seq.MustMaterialized(schema, entries))
}

func vGt(t *testing.T, schema *seq.Schema, col string, lit int64) expr.Expr {
	t.Helper()
	c, err := expr.NewCol(schema, col)
	if err != nil {
		t.Fatal(err)
	}
	p, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Int(lit)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// auditCorpus builds one query per rewrite rule shaped to make that rule
// fire, plus compound trees with block-delimiting operators.
func auditCorpus(t *testing.T) map[string]*algebra.Node {
	t.Helper()
	must := func(n *algebra.Node, err error) *algebra.Node {
		if err != nil {
			t.Fatalf("corpus: %v", err)
		}
		return n
	}
	a := func() *algebra.Node { return auditBase(t, "a") }
	b := func() *algebra.Node { return auditBase(t, "b") }
	sel := func(n *algebra.Node, col string, lit int64) *algebra.Node {
		return must(algebra.Select(n, vGt(t, n.Schema, col, lit)))
	}
	agg := func(n *algebra.Node) *algebra.Node {
		return must(algebra.AggCol(n, algebra.AggSum, "v", algebra.Trailing(3), "s"))
	}

	corpus := map[string]*algebra.Node{
		"merge-selects":              sel(sel(a(), "v", 2), "w", -20),
		"push-select-through-offset": sel(must(algebra.PosOffset(a(), 2)), "v", 4),
		"merge-projects": must(algebra.ProjectCols(
			must(algebra.ProjectCols(a(), "v", "w")), "v")),
		"push-project-through-offset": must(algebra.ProjectCols(
			must(algebra.PosOffset(a(), 1)), "v")),
		"drop-trivial-project": must(algebra.ProjectCols(a(), "v", "w")),
		"fuse-offsets": must(algebra.PosOffset(
			must(algebra.PosOffset(a(), 1)), 2)),
		"drop-zero-offset":        must(algebra.PosOffset(a(), 0)),
		"push-offset-through-agg": must(algebra.PosOffset(agg(a()), 1)),
		"push-offset-through-voffset": must(algebra.PosOffset(
			must(algebra.Previous(a())), 2)),
	}

	// fold-constants: true AND (v > 2) folds to v > 2.
	base := a()
	folded, err := expr.NewBin(expr.OpAnd, expr.Literal(seq.Bool(true)),
		vGt(t, base.Schema, "v", 2))
	if err != nil {
		t.Fatal(err)
	}
	corpus["fold-constants"] = must(algebra.Select(base, folded))

	// Compose-based shapes: predicates and projections referencing one
	// side only, so the push-through-compose family fires.
	composed := func() *algebra.Node {
		return must(algebra.Compose(a(), b(), nil, "l", "r"))
	}
	corpus["push-select-through-compose"] = sel(composed(), "l.v", 2)
	corpus["push-select-through-project"] = sel(
		must(algebra.ProjectCols(composed(), "l.v", "r.w")), "l.v", 2)
	corpus["push-project-through-compose"] = must(algebra.ProjectCols(composed(), "l.v"))
	corpus["push-offset-through-compose"] = must(algebra.PosOffset(composed(), 1))
	withPred := must(algebra.Compose(a(), b(),
		vGt(t, composed().Schema, "l.v", 2), "l", "r"))
	corpus["push-compose-pred"] = withPred

	// Deep trees mixing unit chains with the block-delimiting operators
	// (Agg, ValueOffset, Collapse), so pushes run up against block
	// boundaries.
	deep := sel(must(algebra.PosOffset(agg(sel(a(), "v", 0)), 1)), "s", 1)
	corpus["deep-agg-block"] = deep
	corpus["deep-voffset-block"] = sel(must(algebra.PosOffset(
		must(algebra.Previous(sel(a(), "v", 2))), -1)), "v", 0)
	corpus["deep-collapse-block"] = must(algebra.PosOffset(
		must(algebra.Collapse(a(), 4, algebra.AggSpec{Func: algebra.AggMax, Arg: 0, As: "m"})), 1))
	return corpus
}

// blockSignature fingerprints the block-delimiting operators of a tree:
// a legal rewrite pushes unit-scope operators around but never creates,
// destroys or alters an aggregate, value offset or collapse (§3.1 — the
// rules operate within blocks).
func blockSignature(root *algebra.Node) []string {
	var sig []string
	var walk func(n *algebra.Node)
	walk = func(n *algebra.Node) {
		switch n.Kind {
		case algebra.KindAgg:
			sig = append(sig, fmt.Sprintf("agg/%s/%s", n.Agg.Func, n.Agg.Window))
		case algebra.KindValueOffset:
			sig = append(sig, fmt.Sprintf("voffset/%d", n.Offset))
		case algebra.KindCollapse:
			sig = append(sig, fmt.Sprintf("collapse/%d/%s", n.Factor, n.Agg.Func))
		case algebra.KindBase, algebra.KindConst, algebra.KindSelect,
			algebra.KindProject, algebra.KindPosOffset, algebra.KindCompose,
			algebra.KindExpand:
			// unit-scope (or leaf): not part of the signature
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)
	sort.Strings(sig)
	return sig
}

func sameSignature(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEveryRulePreservesScopes runs each rule in isolation over the
// whole corpus with planlint's per-firing hook installed: every firing
// must preserve the composed scope properties (Prop. 2.1) and leave the
// block-delimiting operators untouched, and the rewritten query must
// still evaluate identically to the original. Each rule must fire on at
// least one corpus query, so no rule goes unaudited.
func TestEveryRulePreservesScopes(t *testing.T) {
	corpus := auditCorpus(t)
	span := seq.NewSpan(-5, 30)
	for _, rule := range rewrite.DefaultRules() {
		rule := rule
		t.Run(rule.Name, func(t *testing.T) {
			fired := 0
			for name, q := range corpus {
				before := blockSignature(q)
				out, n, err := rewrite.RewriteWithHook(q, []rewrite.Rule{rule}, planlint.CheckRule)
				if err != nil {
					t.Fatalf("%s on %s: %v", rule.Name, name, err)
				}
				if n == 0 {
					continue
				}
				fired += n
				if !sameSignature(before, blockSignature(out)) {
					t.Errorf("%s on %s: rule crossed a block boundary:\nbefore %v\nafter  %v",
						rule.Name, name, before, blockSignature(out))
				}
				if issues := planlint.Verify(out); len(issues) != 0 {
					t.Errorf("%s on %s: %v", rule.Name, name, planlint.Error(issues))
				}
				want, err := algebra.EvalRange(q, span)
				if err != nil {
					t.Fatalf("%s on %s: reference eval: %v", rule.Name, name, err)
				}
				got, err := algebra.EvalRange(out, span)
				if err != nil {
					t.Fatalf("%s on %s: rewritten eval: %v", rule.Name, name, err)
				}
				if !testgen.EntriesApproxEqual(got, want) {
					t.Errorf("%s on %s: rewritten query evaluates differently\nbefore:\n%s\nafter:\n%s",
						rule.Name, name, q, out)
				}
			}
			if fired == 0 {
				t.Errorf("rule %s never fired on the audit corpus", rule.Name)
			}
		})
	}
}

// TestFullRuleSetPreservesScopesRandom sweeps random queries through the
// complete rule set under the scope-preservation hook.
func TestFullRuleSetPreservesScopesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := testgen.Config{MaxDepth: 5, MaxPos: 24, BaseDensity: 0.6}
	rules := rewrite.DefaultRules()
	for i := 0; i < 300; i++ {
		q, err := testgen.RandomQuery(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if algebra.Divergent(q) {
			continue
		}
		before := blockSignature(q)
		out, _, err := rewrite.RewriteWithHook(q, rules, planlint.CheckRule)
		if err != nil {
			t.Fatalf("query %d: %v\n%s", i, err, q)
		}
		if !sameSignature(before, blockSignature(out)) {
			t.Errorf("query %d: full rule set crossed a block boundary\n%s", i, q)
		}
	}
}
