// Package rewrite implements the query transformations of §3.1: merging
// and pushing down selections, projections and positional offsets, offset
// fusion, and the identification of query blocks delimited by non-unit-
// scope operators. Every transformation produces an equivalent query
// (Definition 3.1 / Proposition 3.1): same input sequences, same scopes,
// same operator function — which the package's tests check against the
// reference interpreter on randomized inputs.
package rewrite

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
)

// subst replaces every column reference Col(i) in e by items[i].Expr,
// yielding an expression over the projection's *input* schema. It is the
// workhorse of pushing selections through projections and of merging
// adjacent projections.
func subst(e expr.Expr, items []algebra.ProjItem) (expr.Expr, error) {
	switch v := e.(type) {
	case *expr.Col:
		if v.Index < 0 || v.Index >= len(items) {
			return nil, fmt.Errorf("rewrite: column %d outside projection of arity %d", v.Index, len(items))
		}
		return items[v.Index].Expr, nil
	case *expr.Lit:
		return v, nil
	case *expr.Bin:
		l, err := subst(v.L, items)
		if err != nil {
			return nil, err
		}
		r, err := subst(v.R, items)
		if err != nil {
			return nil, err
		}
		return expr.NewBin(v.Op, l, r)
	case *expr.Not:
		inner, err := subst(v.E, items)
		if err != nil {
			return nil, err
		}
		return expr.NewNot(inner)
	case *expr.Neg:
		inner, err := subst(v.E, items)
		if err != nil {
			return nil, err
		}
		return expr.NewNeg(inner)
	case *expr.Call:
		args := make([]expr.Expr, len(v.Args))
		for i, a := range v.Args {
			na, err := subst(a, items)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return expr.NewCall(v.Fn, args)
	default:
		return nil, fmt.Errorf("rewrite: unknown expression node %T", e)
	}
}

// splitConjuncts flattens a conjunction into its top-level factors.
func splitConjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Bin); ok && b.Op == expr.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

// conjoin rebuilds a conjunction from factors (nil for an empty list).
func conjoin(factors []expr.Expr) (expr.Expr, error) {
	var out expr.Expr
	for _, f := range factors {
		var err error
		out, err = expr.And(out, f)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// colsWithin reports whether every column referenced by e lies in
// [lo, hi).
func colsWithin(e expr.Expr, lo, hi int) bool {
	for _, c := range expr.Columns(e) {
		if c < lo || c >= hi {
			return false
		}
	}
	return true
}

// shiftCols remaps the columns of e by delta (used when moving an
// expression from a composed schema onto one side of the compose).
func shiftCols(e expr.Expr, delta int) (expr.Expr, error) {
	mapping := make(map[int]int)
	for _, c := range expr.Columns(e) {
		mapping[c] = c + delta
	}
	return expr.Remap(e, mapping)
}
