package rewrite

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

// The operators of non-unit scope divide a query into blocks (§3.1).
// Inside a block, positional joins can be reordered freely; selections
// and projections apply to the join result; the output of one block feeds
// the next. A JoinBlock is the optimizer's view of one such block: the
// join sources, the predicate set over a virtual concatenated schema, and
// the post-processing chain above the top compose.
type JoinBlock struct {
	// Sources are the frontier subtrees joined in this block, in the
	// left-to-right order of the original query. Each is either a leaf, a
	// non-unit operator output (a lower block), or a chain of unary
	// unit-scope operators over one of those.
	Sources []*algebra.Node
	// SourceStart[i] is the first column of source i in the virtual
	// schema (the concatenation of the source schemas in order).
	SourceStart []int
	// Virtual is the concatenated schema the predicates are expressed
	// against.
	Virtual *seq.Schema
	// Preds are the join/selection predicates of the block, each with the
	// set of sources it references.
	Preds []BlockPred
	// Post is the chain of unary operators between the block root and
	// the top compose, bottom-to-top. They are re-applied, unchanged,
	// after the joins.
	Post []*algebra.Node
	// Root is the node the block was extracted from.
	Root *algebra.Node
}

// BlockPred is one predicate of a join block.
type BlockPred struct {
	// Virtual is the predicate over the block's virtual schema.
	Virtual expr.Expr
	// Mask has bit i set iff the predicate references source i.
	Mask uint64
}

// MaxBlockSources bounds the number of join sources per block (the
// predicate masks are 64-bit).
const MaxBlockSources = 64

// ExtractJoinBlock analyzes the unit-scope region rooted at root. It
// returns ok=false when the region contains no compose (the caller
// should evaluate the unary chain directly). Otherwise it returns the
// block: sources, predicates over the virtual schema, and the post
// chain.
func ExtractJoinBlock(root *algebra.Node) (*JoinBlock, bool, error) {
	// Peel unary unit operators down to the first compose.
	var post []*algebra.Node
	n := root
	for {
		if n.Kind == algebra.KindCompose {
			break
		}
		if len(n.Inputs) == 1 && !n.NonUnitScope() && !n.IsLeaf() {
			post = append(post, n)
			n = n.Inputs[0]
			continue
		}
		return nil, false, nil // no compose in this region
	}
	// Reverse post into bottom-to-top application order.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}

	b := &JoinBlock{Root: root, Post: post}
	if err := b.gather(n); err != nil {
		return nil, false, err
	}
	// Build the virtual schema: concatenation of source schemas. Names
	// may collide across sources; predicates are index-based, so the
	// virtual schema uses positional names where needed.
	var fields []seq.Field
	used := make(map[string]bool)
	for _, s := range b.Sources {
		for i := 0; i < s.Schema.NumFields(); i++ {
			f := s.Schema.Field(i)
			name := f.Name
			for used[name] {
				name = "_" + name
			}
			used[name] = true
			fields = append(fields, seq.Field{Name: name, Type: f.Type})
		}
	}
	virtual, err := seq.NewSchema(fields...)
	if err != nil {
		return nil, false, err
	}
	b.Virtual = virtual
	return b, true, nil
}

// gather walks the compose tree collecting sources and predicates.
func (b *JoinBlock) gather(n *algebra.Node) error {
	_, _, err := b.gatherRec(n)
	return err
}

func (b *JoinBlock) gatherRec(n *algebra.Node) (start, width int, err error) {
	if n.Kind != algebra.KindCompose {
		// A source: leaf, non-unit output, constant, or a unary chain
		// over one of those. The chain is opaque here; the plan builder
		// recurses into it.
		if len(b.Sources) >= MaxBlockSources {
			return 0, 0, fmt.Errorf("rewrite: block exceeds %d sources", MaxBlockSources)
		}
		start = b.totalCols()
		b.SourceStart = append(b.SourceStart, start)
		b.Sources = append(b.Sources, n)
		return start, n.Schema.NumFields(), nil
	}
	ls, lw, err := b.gatherRec(n.Inputs[0])
	if err != nil {
		return 0, 0, err
	}
	_, rw, err := b.gatherRec(n.Inputs[1])
	if err != nil {
		return 0, 0, err
	}
	if n.Pred != nil {
		// The composed schema's column c sits at virtual index ls+c
		// (left subtree columns are contiguous from ls, right subtree
		// continues immediately after).
		shifted, err := shiftCols(n.Pred, ls)
		if err != nil {
			return 0, 0, err
		}
		b.Preds = append(b.Preds, BlockPred{Virtual: shifted, Mask: b.maskOf(shifted)})
	}
	return ls, lw + rw, nil
}

func (b *JoinBlock) totalCols() int {
	if len(b.Sources) == 0 {
		return 0
	}
	last := len(b.Sources) - 1
	return b.SourceStart[last] + b.Sources[last].Schema.NumFields()
}

// maskOf computes which sources a virtual-schema expression references.
func (b *JoinBlock) maskOf(e expr.Expr) uint64 {
	var mask uint64
	for _, c := range expr.Columns(e) {
		if s := b.sourceOf(c); s >= 0 {
			mask |= 1 << uint(s)
		}
	}
	return mask
}

// sourceOf maps a virtual column to its source index.
func (b *JoinBlock) sourceOf(col int) int {
	for i := len(b.SourceStart) - 1; i >= 0; i-- {
		if col >= b.SourceStart[i] {
			return i
		}
	}
	return -1
}

// SourceMask returns the bitmask with only source i set.
func SourceMask(i int) uint64 { return 1 << uint(i) }

// NumSources returns the number of join sources.
func (b *JoinBlock) NumSources() int { return len(b.Sources) }
