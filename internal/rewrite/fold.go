package rewrite

import (
	"repro/internal/algebra"
	"repro/internal/expr"
	"repro/internal/seq"
)

// Constant folding. Not one of the paper's §3.1 transformations, but a
// standard complement to them: folding literal sub-expressions before
// push-down keeps predicates small, and folding a selection predicate to
// a literal lets the whole selection disappear (true) or the subtree be
// recognized as empty (false — the node keeps the selection, whose
// density estimate then drops to zero).

// foldExpr evaluates literal-only sub-expressions. It returns the
// (possibly) simplified expression and whether anything changed.
func foldExpr(e expr.Expr) (expr.Expr, bool, error) {
	switch v := e.(type) {
	case *expr.Bin:
		l, lch, err := foldExpr(v.L)
		if err != nil {
			return nil, false, err
		}
		r, rch, err := foldExpr(v.R)
		if err != nil {
			return nil, false, err
		}
		if isLit(l) && isLit(r) {
			nb, err := expr.NewBin(v.Op, l, r)
			if err != nil {
				return nil, false, err
			}
			val, err := nb.Eval(nil)
			if err != nil {
				// Evaluation can fail (division by zero): keep the
				// expression; it will fail at run time if ever reached.
				return rebuildBin(v, l, r, lch || rch)
			}
			return expr.Literal(val), true, nil
		}
		// Boolean identities with one literal side.
		if v.Op == expr.OpAnd || v.Op == expr.OpOr {
			if out, ok := foldLogical(v.Op, l, r); ok {
				return out, true, nil
			}
		}
		return rebuildBin(v, l, r, lch || rch)
	case *expr.Not:
		inner, ch, err := foldExpr(v.E)
		if err != nil {
			return nil, false, err
		}
		if lit, ok := inner.(*expr.Lit); ok && lit.Val.T == seq.TBool {
			return expr.Literal(seq.Bool(!lit.Val.AsBool())), true, nil
		}
		if !ch {
			return v, false, nil
		}
		out, err := expr.NewNot(inner)
		return out, true, err
	case *expr.Neg:
		inner, ch, err := foldExpr(v.E)
		if err != nil {
			return nil, false, err
		}
		if lit, ok := inner.(*expr.Lit); ok {
			if lit.Val.T == seq.TInt {
				return expr.Literal(seq.Int(-lit.Val.AsInt())), true, nil
			}
			return expr.Literal(seq.Float(-lit.Val.AsFloat())), true, nil
		}
		if !ch {
			return v, false, nil
		}
		out, err := expr.NewNeg(inner)
		return out, true, err
	case *expr.Call:
		args := make([]expr.Expr, len(v.Args))
		changed := false
		allLit := true
		for i, a := range v.Args {
			na, ch, err := foldExpr(a)
			if err != nil {
				return nil, false, err
			}
			args[i] = na
			changed = changed || ch
			allLit = allLit && isLit(na)
		}
		if allLit {
			nc, err := expr.NewCall(v.Fn, args)
			if err != nil {
				return nil, false, err
			}
			val, err := nc.Eval(nil)
			if err == nil {
				return expr.Literal(val), true, nil
			}
		}
		if !changed {
			return v, false, nil
		}
		out, err := expr.NewCall(v.Fn, args)
		return out, true, err
	default:
		return e, false, nil
	}
}

func isLit(e expr.Expr) bool {
	_, ok := e.(*expr.Lit)
	return ok
}

func rebuildBin(v *expr.Bin, l, r expr.Expr, changed bool) (expr.Expr, bool, error) {
	if !changed {
		return v, false, nil
	}
	out, err := expr.NewBin(v.Op, l, r)
	return out, true, err
}

// foldLogical simplifies and/or with one boolean literal operand:
// true AND p = p, false AND p = false, true OR p = true, false OR p = p.
func foldLogical(op expr.BinOp, l, r expr.Expr) (expr.Expr, bool) {
	pick := func(lit *expr.Lit, other expr.Expr) (expr.Expr, bool) {
		b := lit.Val.AsBool()
		switch {
		case op == expr.OpAnd && b:
			return other, true
		case op == expr.OpAnd && !b:
			return expr.Literal(seq.Bool(false)), true
		case op == expr.OpOr && b:
			return expr.Literal(seq.Bool(true)), true
		default:
			return other, true
		}
	}
	if lit, ok := l.(*expr.Lit); ok && lit.Val.T == seq.TBool {
		return pick(lit, r)
	}
	if lit, ok := r.(*expr.Lit); ok && lit.Val.T == seq.TBool {
		return pick(lit, l)
	}
	return nil, false
}

// foldPredicates folds the expressions carried by a node; a selection
// whose predicate folds to literal true is removed entirely.
func foldPredicates(n *algebra.Node) (*algebra.Node, bool, error) {
	switch n.Kind {
	case algebra.KindBase, algebra.KindConst, algebra.KindPosOffset,
		algebra.KindValueOffset, algebra.KindAgg, algebra.KindCollapse,
		algebra.KindExpand:
		return n, false, nil // no foldable expressions
	case algebra.KindSelect:
		pred, changed, err := foldExpr(n.Pred)
		if err != nil || !changed {
			return n, false, err
		}
		if lit, ok := pred.(*expr.Lit); ok && lit.Val.T == seq.TBool && lit.Val.AsBool() {
			return n.Inputs[0], true, nil // σ(true) = identity
		}
		out, err := algebra.Select(n.Inputs[0], pred)
		return out, err == nil, err
	case algebra.KindCompose:
		if n.Pred == nil {
			return n, false, nil
		}
		pred, changed, err := foldExpr(n.Pred)
		if err != nil || !changed {
			return n, false, err
		}
		if lit, ok := pred.(*expr.Lit); ok && lit.Val.T == seq.TBool && lit.Val.AsBool() {
			pred = nil // compose with always-true predicate
		}
		out, err := algebra.Compose(n.Inputs[0], n.Inputs[1], pred, n.LeftQual, n.RightQual)
		return out, err == nil, err
	case algebra.KindProject:
		items := append([]algebra.ProjItem(nil), n.Items...)
		changed := false
		for i, it := range items {
			e, ch, err := foldExpr(it.Expr)
			if err != nil {
				return nil, false, err
			}
			if ch {
				items[i].Expr = e
				changed = true
			}
		}
		if !changed {
			return n, false, nil
		}
		out, err := algebra.Project(n.Inputs[0], items)
		return out, err == nil, err
	default:
		return n, false, nil
	}
}
