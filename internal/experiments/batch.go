package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/parallel"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// BatchPoint is one (hot path, input size) cell of the batch-vs-scalar
// head-to-head: the same physical plan executed through the
// record-at-a-time interpreter and through the vectorized batch plane.
type BatchPoint struct {
	Path string // which experiment's hot path the plan reproduces
	N    int64  // input size (records)
	Rows int    // output rows (identical across planes, checked)

	ScalarNsOp     int64 // scalar wall time per run
	ScalarAllocsOp int64 // scalar heap allocations per run
	BatchNsOp      int64 // batch wall time per run
	BatchAllocsOp  int64 // batch heap allocations per run

	Speedup     float64 // ScalarNsOp / BatchNsOp
	AllocsRatio float64 // ScalarAllocsOp / BatchAllocsOp

	// Par4NsOp is the batch plane with K=4 parallel workers (0 when the
	// plan is not partitionable); Speedup4 = ScalarNsOp / Par4NsOp. The
	// single-stream Speedup isolates vectorization; this column shows the
	// two tentpole halves — batches and partitioned workers — composed.
	Par4NsOp int64
	Speedup4 float64
}

// InternPoint is one cell of the intern-table sweep: a fixed-size scan
// over a string column with a controlled number of distinct values.
type InternPoint struct {
	Distinct int   // distinct strings in the column
	Rows     int64 // records scanned

	StrHits, StrMisses int64
	RecHits, RecMisses int64
	StrHitRate         float64
	RecHitRate         float64
}

// BatchBench is the payload of seqbench -batch (BENCH_batch.json).
type BatchBench struct {
	Points []BatchPoint
	Intern []InternPoint
}

// measureRun times fn and counts its heap allocations, averaged over
// iters runs after one warmup.
func measureRun(iters int, fn func() error) (nsOp, allocsOp int64, err error) {
	if err := fn(); err != nil { // warmup: caches, first-batch allocations
		return 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed.Nanoseconds() / int64(iters),
		int64(after.Mallocs-before.Mallocs) / int64(iters), nil
}

// e1HotPath builds the E1 sequence engine's hot path at size n: the
// exact physical plan the optimizer picks for Example 1.1's
// "project(select(compose(volcanos, prev(quakes)), strength > 7.0), name)" —
// a lock-step compose of the volcano series against the Cache-Strategy-B
// value offset of the quake series, with the strength filter pushed below
// the compose and the volcano name projected on top.
func e1HotPath(n int64) (exec.Plan, seq.Span, error) {
	span := seq.NewSpan(1, n*4)
	quakes, volcanos, err := workload.Monitoring(span, int(n), int(n)/10, n)
	if err != nil {
		return nil, seq.Span{}, err
	}
	qs, err := storage.FromMaterialized(quakes, storage.KindSparse, 0)
	if err != nil {
		return nil, seq.Span{}, err
	}
	vs, err := storage.FromMaterialized(volcanos, storage.KindSparse, 0)
	if err != nil {
		return nil, seq.Span{}, err
	}
	prev, err := exec.NewValueOffsetIncremental(exec.NewLeaf("quakes", qs, seq.AllSpan), -1, span)
	if err != nil {
		return nil, seq.Span{}, err
	}
	strength, err := expr.NewCol(workload.QuakeSchema, "strength")
	if err != nil {
		return nil, seq.Span{}, err
	}
	pred, err := expr.NewBin(expr.OpGt, strength, expr.Literal(seq.Float(7)))
	if err != nil {
		return nil, seq.Span{}, err
	}
	sel := exec.NewSelect(prev, pred)
	schema, err := workload.VolcSchema.Concat(workload.QuakeSchema, "v", "q")
	if err != nil {
		return nil, seq.Span{}, err
	}
	comp, err := exec.NewCompose(
		exec.NewLeaf("volcanos", vs, seq.AllSpan), sel, nil, schema, exec.ComposeLockStep)
	if err != nil {
		return nil, seq.Span{}, err
	}
	name, err := expr.NewCol(schema, "name")
	if err != nil {
		return nil, seq.Span{}, err
	}
	proj, err := exec.NewProject(comp, []exec.ProjExpr{{Expr: name, Name: "name"}})
	if err != nil {
		return nil, seq.Span{}, err
	}
	return proj, span, nil
}

// e4HotPath builds the E4 hot path at size n: the O(1)-maintenance
// sliding moving sum over a dense stock series (Figure 5.A plus the
// incremental accumulator), window 32.
func e4HotPath(n int64) (exec.Plan, seq.Span, error) {
	span := seq.NewSpan(1, n)
	data, err := workload.Stock(workload.StockConfig{Name: "ibm", Span: span, Density: 1, Seed: 21})
	if err != nil {
		return nil, seq.Span{}, err
	}
	store, err := storage.FromMaterialized(data, storage.KindDense, 0)
	if err != nil {
		return nil, seq.Span{}, err
	}
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 1, Window: algebra.Trailing(32), As: "sum"}
	agg, err := exec.NewAggSliding(exec.NewLeaf("ibm", store, seq.AllSpan), spec, span)
	if err != nil {
		return nil, seq.Span{}, err
	}
	return agg, span, nil
}

func batchPoint(path string, n int64, iters int, mk func(int64) (exec.Plan, seq.Span, error)) (BatchPoint, error) {
	p, span, err := mk(n)
	if err != nil {
		return BatchPoint{}, err
	}
	// Cross-check the planes agree before timing anything.
	want, err := exec.Run(p, span)
	if err != nil {
		return BatchPoint{}, err
	}
	got, err := exec.RunBatch(p, span, seq.NewBatchCtx())
	if err != nil {
		return BatchPoint{}, err
	}
	if got.Count() != want.Count() {
		return BatchPoint{}, fmt.Errorf("batch bench %s n=%d: planes disagree (%d vs %d rows)",
			path, n, got.Count(), want.Count())
	}
	pt := BatchPoint{Path: path, N: n, Rows: want.Count()}
	pt.ScalarNsOp, pt.ScalarAllocsOp, err = measureRun(iters, func() error {
		_, err := exec.Run(p, span)
		return err
	})
	if err != nil {
		return BatchPoint{}, err
	}
	pt.BatchNsOp, pt.BatchAllocsOp, err = measureRun(iters, func() error {
		_, err := exec.RunBatch(p, span, seq.NewBatchCtx())
		return err
	})
	if err != nil {
		return BatchPoint{}, err
	}
	if pt.BatchNsOp > 0 {
		pt.Speedup = float64(pt.ScalarNsOp) / float64(pt.BatchNsOp)
	}
	if pt.BatchAllocsOp > 0 {
		pt.AllocsRatio = float64(pt.ScalarAllocsOp) / float64(pt.BatchAllocsOp)
	}
	// Composed point: batch plane with K=4 partitioned workers. Skipped
	// (left zero) when the plan does not partition at this size.
	if d, err := parallel.ForceK(p, span, 4); err == nil {
		pgot, err := parallel.RunBatch(p, span, d, seq.NewBatchCtx())
		if err == nil && pgot.Count() == want.Count() {
			pt.Par4NsOp, _, err = measureRun(iters, func() error {
				_, err := parallel.RunBatch(p, span, d, seq.NewBatchCtx())
				return err
			})
			if err == nil && pt.Par4NsOp > 0 {
				pt.Speedup4 = float64(pt.ScalarNsOp) / float64(pt.Par4NsOp)
			}
		}
	}
	return pt, nil
}

// internPoint scans n records whose string column cycles through
// distinct values and reports the run's intern-table hit rates.
func internPoint(distinct int, n int64) (InternPoint, error) {
	schema := seq.MustSchema(
		seq.Field{Name: "sym", Type: seq.TString},
		seq.Field{Name: "px", Type: seq.TFloat},
	)
	syms := make([]string, distinct)
	for i := range syms {
		syms[i] = fmt.Sprintf("sym-%04d", i)
	}
	es := make([]seq.Entry, 0, n)
	for p := int64(1); p <= n; p++ {
		es = append(es, seq.Entry{Pos: p, Rec: seq.Record{
			seq.Str(syms[int(p)%distinct]), seq.Float(float64(p % 97)),
		}})
	}
	m, err := seq.NewMaterialized(schema, es)
	if err != nil {
		return InternPoint{}, err
	}
	st, err := storage.FromMaterialized(m, storage.KindSparse, 0)
	if err != nil {
		return InternPoint{}, err
	}
	px, err := expr.NewCol(schema, "px")
	if err != nil {
		return InternPoint{}, err
	}
	pred, err := expr.NewBin(expr.OpGe, px, expr.Literal(seq.Float(0)))
	if err != nil {
		return InternPoint{}, err
	}
	plan := exec.NewSelect(exec.NewLeaf("s", st, seq.AllSpan), pred)
	ctx := seq.NewBatchCtx()
	if _, err := exec.RunBatch(plan, seq.NewSpan(1, n), ctx); err != nil {
		return InternPoint{}, err
	}
	is := ctx.Intern.Stats()
	pt := InternPoint{
		Distinct: distinct, Rows: n,
		StrHits: is.StrHits, StrMisses: is.StrMisses,
		RecHits: is.RecHits, RecMisses: is.RecMisses,
	}
	if t := is.StrHits + is.StrMisses; t > 0 {
		pt.StrHitRate = float64(is.StrHits) / float64(t)
	}
	if t := is.RecHits + is.RecMisses; t > 0 {
		pt.RecHitRate = float64(is.RecHits) / float64(t)
	}
	return pt, nil
}

// BatchBenchmark measures the vectorized data plane against the scalar
// interpreter on the E1 and E4 hot paths, then sweeps the intern table's
// hit rate against value duplication.
func BatchBenchmark(quick bool) (*BatchBench, error) {
	sizes := []int64{1000, 8000, 50000}
	iters := 20
	internRows := int64(50000)
	distincts := []int{1, 4, 64, 1024}
	if quick {
		sizes = []int64{1000, 8000}
		iters = 3
		internRows = 5000
		distincts = []int{4, 64}
	}
	b := &BatchBench{}
	for _, n := range sizes {
		for _, hp := range []struct {
			path string
			mk   func(int64) (exec.Plan, seq.Span, error)
		}{{"E1", e1HotPath}, {"E4", e4HotPath}} {
			pt, err := batchPoint(hp.path, n, iters, hp.mk)
			if err != nil {
				return nil, err
			}
			b.Points = append(b.Points, pt)
		}
	}
	for _, d := range distincts {
		pt, err := internPoint(d, internRows)
		if err != nil {
			return nil, err
		}
		b.Intern = append(b.Intern, pt)
	}
	return b, nil
}

// RenderBatch formats the benchmark as the tables seqbench prints.
func RenderBatch(b *BatchBench) string {
	var sb strings.Builder
	sb.WriteString("batch execution: scalar interpreter vs vectorized batches\n")
	sb.WriteString("path        n     rows  scalar_ns/op   batch_ns/op  speedup  scalar_allocs  batch_allocs    par4_ns/op  speedup4\n")
	for _, p := range b.Points {
		par4, sp4 := "-", "-"
		if p.Par4NsOp > 0 {
			par4 = fmt.Sprintf("%d", p.Par4NsOp)
			sp4 = fmt.Sprintf("%.1fx", p.Speedup4)
		}
		fmt.Fprintf(&sb, "%-4s %8d %8d %13d %13d %7.1fx %14d %13d %13s %9s\n",
			p.Path, p.N, p.Rows, p.ScalarNsOp, p.BatchNsOp, p.Speedup,
			p.ScalarAllocsOp, p.BatchAllocsOp, par4, sp4)
	}
	sb.WriteString("\nintern table hit rate vs value duplication\n")
	sb.WriteString("distinct     rows   str_hits str_misses  str_rate   rec_hits rec_misses  rec_rate\n")
	for _, p := range b.Intern {
		fmt.Fprintf(&sb, "%8d %8d %10d %10d %9.3f %10d %10d %9.3f\n",
			p.Distinct, p.Rows, p.StrHits, p.StrMisses, p.StrHitRate,
			p.RecHits, p.RecMisses, p.RecHitRate)
	}
	return sb.String()
}
