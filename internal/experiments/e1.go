package experiments

import (
	"fmt"
	"time"

	seqproc "repro"
	"repro/internal/planlint"
	"repro/internal/relational"
	"repro/internal/seq"
	"repro/internal/workload"
)

// E1 reproduces Example 1.1 / Figure 1: the volcano/earthquake query.
//
// The relational baseline runs the plan the paper ascribes to a
// conventional optimizer — a correlated aggregate sub-query per outer
// tuple, O(|V|·|E|) — while the sequence engine's optimized plan is a
// single lock-step scan with a one-record buffer (Cache-Strategy-B),
// O(|V|+|E|). The claim: the sequence plan wins by a factor that grows
// linearly with input size.
func E1() (*Table, error) { return e1([]int{1000, 4000, 16000, 64000}) }

// E1Quick is E1 at test sizes.
func E1Quick() (*Table, error) { return e1([]int{500, 2000}) }

func e1(sizes []int) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "volcano/earthquake query: sequence plan vs relational nested plan",
		Claim: "single lock-step scan with O(1) buffer vs per-tuple re-aggregation; advantage grows with input size",
		Header: []string{
			"n_quakes", "n_volcanos", "answers",
			"rel_tuples", "rel_ms", "seq_records", "seq_ms", "tuple_ratio", "time_ratio",
		},
	}
	var firstRatio, lastRatio float64
	for _, n := range sizes {
		nV := n / 10
		span := seq.NewSpan(1, int64(n)*4)
		quakes, volcanos, err := workload.Monitoring(span, n, nV, int64(n))
		if err != nil {
			return nil, err
		}

		// Relational baseline: the nested-subquery plan. Both strategy
		// descriptors pass the rel/* invariants before anything runs, so
		// the E1 comparison is between two verified engines.
		qRel, vRel, err := workload.ToRelations(quakes, volcanos)
		if err != nil {
			return nil, err
		}
		for _, plan := range []*relational.PlanNode{
			relational.NestedPlan(vRel, qRel),
			relational.MergePlan(vRel, qRel),
		} {
			if err := planlint.Error(planlint.VerifyRelational(plan)); err != nil {
				return nil, fmt.Errorf("e1: relational baseline plan: %w", err)
			}
		}
		startRel := time.Now()
		relNames, err := relational.VolcanoQueryNested(vRel, qRel)
		if err != nil {
			return nil, err
		}
		relTime := time.Since(startRel)
		relTuples := qRel.TuplesRead + vRel.TuplesRead

		// Sequence engine: optimizer-chosen plan, with the planlint
		// invariant verifier on.
		db := seqproc.New()
		db.SetOptions(seqproc.Options{Verify: true})
		db.MustCreateSequence("quakes", quakes, seqproc.Sparse)
		db.MustCreateSequence("volcanos", volcanos, seqproc.Sparse)
		q, err := db.Query("project(select(compose(volcanos, prev(quakes)), strength > 7.0), name)")
		if err != nil {
			return nil, err
		}
		db.ResetPageStats()
		startSeq := time.Now()
		res, err := q.Run(span)
		if err != nil {
			return nil, err
		}
		seqTime := time.Since(startSeq)
		qs, _ := db.TakePageStats("quakes")
		vs, _ := db.TakePageStats("volcanos")
		seqRecords := qs.SeqRecords + qs.ProbeRecords + vs.SeqRecords + vs.ProbeRecords

		// Cross-check the two engines agree.
		if res.Count() != len(relNames) {
			return nil, fmt.Errorf("e1: engines disagree at n=%d: seq %d answers, rel %d",
				n, res.Count(), len(relNames))
		}

		tupleRatio := float64(relTuples) / float64(max64(seqRecords, 1))
		if firstRatio == 0 {
			firstRatio = tupleRatio
		}
		lastRatio = tupleRatio
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), itoa(int64(nV)), itoa(int64(res.Count())),
			itoa(relTuples), ms(relTime),
			itoa(seqRecords), ms(seqTime),
			ratio(float64(relTuples), float64(seqRecords)),
			ratio(float64(relTime), float64(seqTime)),
		})
	}
	switch {
	case lastRatio > firstRatio && firstRatio > 1:
		t.Finding = fmt.Sprintf("sequence plan accesses fewer records at every size and the advantage grows (%.0fx -> %.0fx): matches the paper", firstRatio, lastRatio)
	case firstRatio > 1:
		t.Finding = "sequence plan wins at every size, advantage did not grow monotonically"
	default:
		t.Finding = "MISMATCH: sequence plan did not win"
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
