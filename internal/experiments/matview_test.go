package experiments

import (
	"strings"
	"testing"
)

// The matview sweep's deterministic shape: every experiment yields a
// cold and a warm point, the warm plan substitutes the view, the cost
// model predicts the view as the winner, and the view-backed run never
// touches more pages than recomputation. Wall-clock speedups are
// reported but not asserted — CI machines are too noisy for that.
func TestMatviewSweepQuick(t *testing.T) {
	points, err := MatviewSweep(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(matviewIDs) {
		t.Fatalf("got %d points, want %d", len(points), 2*len(matviewIDs))
	}
	for i := 0; i < len(points); i += 2 {
		cold, warm := points[i], points[i+1]
		if cold.Phase != "cold" || warm.Phase != "warm" || cold.Experiment != warm.Experiment {
			t.Fatalf("points not paired cold/warm per experiment: %+v / %+v", cold, warm)
		}
		if warm.Substitutions == 0 {
			t.Errorf("%s: warm plan adopted no view substitution", warm.Experiment)
		}
		if warm.PredictedWinner != "view" || warm.ViewCost >= warm.RecomputeCost {
			t.Errorf("%s: cost model did not predict the view as winner (view %.2f vs recompute %.2f)",
				warm.Experiment, warm.ViewCost, warm.RecomputeCost)
		}
		if warm.Rows != cold.Rows {
			t.Errorf("%s: warm rows %d != cold rows %d", warm.Experiment, warm.Rows, cold.Rows)
		}
		if warm.PagesTotal > cold.PagesTotal {
			t.Errorf("%s: warm run touched more pages (%d) than cold (%d)",
				warm.Experiment, warm.PagesTotal, cold.PagesTotal)
		}
		if warm.ViewHits == 0 {
			t.Errorf("%s: view recorded no hits", warm.Experiment)
		}
	}
	table := RenderMatview(points)
	for _, id := range matviewIDs {
		if !strings.Contains(table, id) {
			t.Errorf("render lacks %s:\n%s", id, table)
		}
	}
}
