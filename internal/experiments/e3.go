package experiments

import (
	"fmt"
	"strings"
	"time"

	seqproc "repro"
	"repro/internal/exec"
	"repro/internal/seq"
	"repro/internal/workload"
)

// workloadTable1 re-exports the Table 1 generator locally.
func workloadTable1(scale int64) (ibm, dec, hp *seq.Materialized, err error) {
	return workload.Table1(scale)
}

// E3 reproduces Figure 4 / §3.3: access modes for the positional join.
//
// Two sequences over a common span; the left sequence's density d1 is
// swept from sparse to dense while the right stays fully dense. Three
// join strategies compete:
//
//	stream-left:  stream S1, probe S2 per record   (Join-Strategy-A)
//	stream-right: stream S2, probe S1 per record   (Join-Strategy-A)
//	lockstep:     stream both                      (Join-Strategy-B)
//
// The claim: at low d1, streaming the sparse side and probing the dense
// side touches the fewest pages; as d1 grows the probe volume overtakes
// a full scan and lock-step wins. The cost-based optimizer should pick
// the winner (or within noise of it) at each density.
func E3() (*Table, error) {
	return e3(50_000, []float64{0.001, 0.005, 0.02, 0.08, 0.3, 1.0})
}

// E3Quick is E3 at test sizes.
func E3Quick() (*Table, error) { return e3(4_000, []float64{0.005, 0.5}) }

func e3(n int64, densities []float64) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "join strategies vs left-input density",
		Claim: "stream-sparse-probe-dense wins at low density; lock-step wins at high density; the optimizer picks the winner",
		Header: []string{
			"d1", "cost_streamL", "cost_streamR", "cost_lock",
			"best", "optimizer_chose", "opt_cost", "opt_ms",
		},
	}
	span := seq.NewSpan(1, n)
	agree := 0
	var lowBest, highBest string
	for _, d1 := range densities {
		left, err := workload.Stock(workload.StockConfig{
			Name: "left", Span: span, Density: d1, Seed: 11,
		})
		if err != nil {
			return nil, err
		}
		right, err := workload.Stock(workload.StockConfig{
			Name: "right", Span: span, Density: 1.0, Seed: 12,
		})
		if err != nil {
			return nil, err
		}

		// I/O cost in sequential-page units: random pages are weighted
		// 4x, matching the optimizer's cost parameters (and the
		// classical random-vs-sequential gap the paper's access-mode
		// choice is about).
		const randWeight = 4
		const query = "select(compose(l, r), l.close > r.close)"
		costFor := func(force *exec.ComposeStrategy) (int64, time.Duration, string, error) {
			db := seqproc.New()
			if err := db.CreateSequence("l", left, seqproc.Sparse); err != nil {
				return 0, 0, "", err
			}
			if err := db.CreateSequence("r", right, seqproc.Dense); err != nil {
				return 0, 0, "", err
			}
			db.SetOptions(seqproc.Options{ForceComposeStrategy: force})
			q, err := db.Query(query)
			if err != nil {
				return 0, 0, "", err
			}
			plan, err := q.Explain(span)
			if err != nil {
				return 0, 0, "", err
			}
			db.ResetPageStats()
			start := time.Now()
			if _, err := q.Run(span); err != nil {
				return 0, 0, "", err
			}
			elapsed := time.Since(start)
			var cost int64
			for _, name := range []string{"l", "r"} {
				st, _ := db.TakePageStats(name)
				cost += st.SeqPages + randWeight*st.RandPages
			}
			return cost, elapsed, plan, nil
		}

		strategies := []exec.ComposeStrategy{exec.ComposeStreamLeft, exec.ComposeStreamRight, exec.ComposeLockStep}
		costs := make([]int64, len(strategies))
		for i := range strategies {
			s := strategies[i]
			var err error
			costs[i], _, _, err = costFor(&s)
			if err != nil {
				return nil, err
			}
		}
		best := 0
		for i := range costs {
			if costs[i] < costs[best] {
				best = i
			}
		}
		optCost, optTime, optPlan, err := costFor(nil)
		if err != nil {
			return nil, err
		}
		chose := "?"
		for _, s := range strategies {
			if containsStrategy(optPlan, s) {
				chose = s.String()
				break
			}
		}
		if chose == strategies[best].String() || optCost <= costs[best]*11/10 {
			agree++
		}
		if d1 == densities[0] {
			lowBest = strategies[best].String()
		}
		highBest = strategies[best].String()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", d1),
			itoa(costs[0]), itoa(costs[1]), itoa(costs[2]),
			strategies[best].String(), chose, itoa(optCost), ms(optTime),
		})
	}
	switch {
	case lowBest != "lockstep" && highBest == "lockstep" && agree == len(densities):
		t.Finding = fmt.Sprintf("crossover from %s to lockstep as density grows; optimizer matched the best strategy at every density: matches §3.3", lowBest)
	case agree == len(densities):
		t.Finding = "optimizer matched the cheapest strategy everywhere (no crossover at these sizes)"
	default:
		t.Finding = fmt.Sprintf("optimizer matched the best strategy at %d/%d densities", agree, len(densities))
	}
	return t, nil
}

func containsStrategy(plan string, s exec.ComposeStrategy) bool {
	return strings.Contains(plan, "compose-"+s.String())
}
