package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	seqproc "repro"
	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/reopt"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/testgen"
)

// ReoptSkewPoint is one size of the skewed-estimate sweep: the same
// data evaluated by the mispriced static plan, by the adaptive
// (mid-run reoptimizing) runner, and by the oracle plan built from
// truthful estimates. seqbench -reopt emits these as BENCH_reopt.json.
type ReoptSkewPoint struct {
	N              int64   `json:"n"`
	ClaimedDensity float64 `json:"claimed_density"`
	RealDensity    float64 `json:"real_density"`
	// StaticMode/OracleMode are the compose strategies the mispriced
	// and truthful optimizations pick; AdaptiveSwitches counts mid-run
	// splices of the adaptive run (expected: 1, static→oracle mode).
	StaticMode       string `json:"static_mode"`
	OracleMode       string `json:"oracle_mode"`
	AdaptiveSwitches int    `json:"adaptive_switches"`
	Rows             int    `json:"rows"`
	StaticNsPerOp    int64  `json:"static_ns_per_op"`
	AdaptiveNsPerOp  int64  `json:"adaptive_ns_per_op"`
	OracleNsPerOp    int64  `json:"oracle_ns_per_op"`
	// OracleMonitoredNsPerOp is the oracle plan run under the same
	// monitoring harness as the adaptive run (instrumentation and
	// checkpoints, no switches) — the apples-to-apples bound on what
	// the adaptive run could possibly achieve.
	OracleMonitoredNsPerOp int64 `json:"oracle_monitored_ns_per_op"`
	StaticPages            int64 `json:"static_pages"`
	AdaptivePages          int64 `json:"adaptive_pages"`
	OraclePages            int64 `json:"oracle_pages"`
	// AdaptiveSpeedupVsStatic is static-ns / adaptive-ns (the adaptive
	// run pays instrumentation, the static run does not).
	AdaptiveSpeedupVsStatic float64 `json:"adaptive_speedup_vs_static"`
	// AdaptiveOverOracleMonitored is adaptive-ns / monitored-oracle-ns
	// (1.0 = the adaptive run matches the oracle exactly).
	AdaptiveOverOracleMonitored float64 `json:"adaptive_over_oracle_monitored"`
}

// ReoptCalibrationPoint is one experiment of the calibration round:
// the optimizer's root cost estimate (in cost units) and the measured
// wall time, under default constants and after calibration.
type ReoptCalibrationPoint struct {
	Experiment            string  `json:"experiment"`
	DefaultPredictedUnits float64 `json:"default_predicted_units"`
	DefaultActualNs       int64   `json:"default_actual_ns"`
	CalPredictedUnits     float64 `json:"calibrated_predicted_units"`
	CalActualNs           int64   `json:"calibrated_actual_ns"`
}

// ReoptCalibration is the self-calibration record: constants regressed
// from the round-1 EXPLAIN ANALYZE traces and the predicted-vs-actual
// error of each constant set. Errors are per-operator — each metrics
// node's counters priced by the round's constants against its measured
// exclusive time — as the mean relative deviation after fitting the
// best global ns-per-unit scale to each set, so the comparison
// measures how well the *relative* constants price the work each
// operator did, not absolute clock speed or cardinality estimation.
type ReoptCalibration struct {
	Samples       int64                   `json:"samples"`
	Constants     map[string]float64      `json:"constants"`
	DefaultErr    float64                 `json:"default_rel_err"`
	CalibratedErr float64                 `json:"calibrated_rel_err"`
	Improved      bool                    `json:"improved"`
	Points        []ReoptCalibrationPoint `json:"points"`
}

// ReoptBench is the BENCH_reopt.json artifact.
type ReoptBench struct {
	Skew        []ReoptSkewPoint  `json:"skewed_sweep"`
	Calibration *ReoptCalibration `json:"calibration"`
}

// reoptClaimed is the lie: the left leg of the skewed compose claims
// this density while the data's real density is reoptReal (≥10× off).
const (
	reoptClaimed = 0.0002
	reoptReal    = 0.5
)

var reoptCloseSchema = seq.MustSchema(seq.Field{Name: "close", Type: seq.TFloat})

// reoptWindow is the aggregate window width of the right leg: wide
// enough that one probe of the aggregate (a full window walk) costs
// visibly more wall time than one step of its sliding stream form.
const reoptWindow = 64

// skewedCompose builds the skewed-estimate workload: compose(left,
// sum(right) over a trailing window) where left holds a record at
// every other position of [0, n-1] (real density 0.5) but, when lie
// is true, claims density 0.002. The mispriced optimizer streams the
// "sparse" left leg and probes the aggregate per record — each probe
// re-walks the window — while the truth prefers lockstep, which
// streams the aggregate incrementally.
func skewedCompose(n int64, lie bool) (*algebra.Node, []storage.Store, error) {
	var les, res []seq.Entry
	for p := int64(0); p < n; p++ {
		if p%2 == 0 {
			les = append(les, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p))}})
		}
		res = append(res, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p) + 0.5)}})
	}
	span := seq.NewSpan(0, n-1)
	lm, err := seq.NewMaterialized(reoptCloseSchema, les)
	if err != nil {
		return nil, nil, err
	}
	if lm, err = lm.WithSpan(span); err != nil {
		return nil, nil, err
	}
	lst, err := storage.FromMaterialized(lm, storage.KindSparse, 8)
	if err != nil {
		return nil, nil, err
	}
	rm, err := seq.NewMaterialized(reoptCloseSchema, res)
	if err != nil {
		return nil, nil, err
	}
	rst, err := storage.FromMaterialized(rm, storage.KindDense, 8)
	if err != nil {
		return nil, nil, err
	}
	var leftSeq seq.Sequence = lst
	if lie {
		leftSeq = &testgen.SkewedStore{Store: lst, Claimed: reoptClaimed}
	}
	left := algebra.Base("skew", leftSeq)
	right, err := algebra.AggCol(algebra.Base("dense", rst), algebra.AggSum, "close",
		algebra.Window{Lo: -(reoptWindow - 1), Hi: 0}, "wsum")
	if err != nil {
		return nil, nil, err
	}
	schema, err := algebra.ComposeSchema(left, right, "l", "r")
	if err != nil {
		return nil, nil, err
	}
	lc, err := expr.NewCol(schema, "close")
	if err != nil {
		return nil, nil, err
	}
	rc, err := expr.NewCol(schema, "wsum")
	if err != nil {
		return nil, nil, err
	}
	pred, err := expr.NewBin(expr.OpLe, lc, rc)
	if err != nil {
		return nil, nil, err
	}
	q, err := algebra.Compose(left, right, pred, "l", "r")
	if err != nil {
		return nil, nil, err
	}
	return q, []storage.Store{lst, rst}, nil
}

func storePages(sts []storage.Store) int64 {
	var n int64
	for _, st := range sts {
		s := st.Stats().Snapshot()
		n += s.Pages()
	}
	return n
}

// reoptMeasure runs fn reps times and returns the best wall time and
// the per-run page delta across the fixture's stores.
func reoptMeasure(sts []storage.Store, reps int, fn func() (*seq.Materialized, error)) (int64, int64, *seq.Materialized, error) {
	before := storePages(sts)
	best := int64(1<<63 - 1)
	var out *seq.Materialized
	for i := 0; i < reps; i++ {
		start := time.Now()
		m, err := fn()
		if err != nil {
			return 0, 0, nil, err
		}
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
		out = m
	}
	pages := (storePages(sts) - before) / int64(reps)
	return best, pages, out, nil
}

// reoptConfig is the adaptive runner's sweep configuration: checkpoints
// frequent enough that the mispriced head is a small fraction of the
// span, default divergence threshold.
func reoptConfig() reopt.Config {
	return reopt.Config{Enabled: true, CheckEvery: 256, Threshold: reopt.DefaultThreshold}
}

// ReoptSweep measures the skewed-estimate workload at each size under
// the mispriced static plan, the adaptive runner, and the oracle, and
// cross-checks all three return identical rows.
func ReoptSweep(quick bool) ([]ReoptSkewPoint, error) {
	sizes := []int64{50_000, 200_000}
	reps := 5
	if quick {
		sizes = []int64{4_000}
		reps = 1
	}
	var out []ReoptSkewPoint
	for _, n := range sizes {
		pt, err := reoptSweepOne(n, reps)
		if err != nil {
			return nil, fmt.Errorf("reopt sweep n=%d: %w", n, err)
		}
		out = append(out, *pt)
	}
	return out, nil
}

func reoptSweepOne(n int64, reps int) (*ReoptSkewPoint, error) {
	span := seq.NewSpan(0, n-1)
	pt := &ReoptSkewPoint{N: n, ClaimedDensity: reoptClaimed, RealDensity: reoptReal}

	// Mispriced static plan, uninstrumented.
	qs, ssts, err := skewedCompose(n, true)
	if err != nil {
		return nil, err
	}
	static, err := core.Optimize(qs, span, core.Options{})
	if err != nil {
		return nil, err
	}
	pt.StaticMode = reopt.StrategySignature(static.Plan)
	if !strings.Contains(pt.StaticMode, "compose-stream") {
		return nil, fmt.Errorf("skewed estimates no longer trick the optimizer (mode %s); the sweep premise is gone", pt.StaticMode)
	}
	staticNs, staticPages, staticOut, err := reoptMeasure(ssts, reps, static.Run)
	if err != nil {
		return nil, err
	}

	// Adaptive: same lie, monitored run with mid-run replanning.
	qa, asts, err := skewedCompose(n, true)
	if err != nil {
		return nil, err
	}
	adaptive, err := core.Optimize(qa, span, core.Options{})
	if err != nil {
		return nil, err
	}
	var lastReport *reopt.Report
	adaptiveNs, adaptivePages, adaptiveOut, err := reoptMeasure(asts, reps, func() (*seq.Materialized, error) {
		m, rep, err := adaptive.RunReoptWith(reoptConfig())
		lastReport = rep
		return m, err
	})
	if err != nil {
		return nil, err
	}
	pt.AdaptiveSwitches = len(lastReport.Switches)

	// Oracle: truthful estimates, both uninstrumented and monitored.
	qo, osts, err := skewedCompose(n, false)
	if err != nil {
		return nil, err
	}
	oracle, err := core.Optimize(qo, span, core.Options{})
	if err != nil {
		return nil, err
	}
	pt.OracleMode = reopt.StrategySignature(oracle.Plan)
	if pt.OracleMode == pt.StaticMode {
		return nil, fmt.Errorf("truthful estimates pick the same mode (%s) as the lie; the sweep premise is gone", pt.OracleMode)
	}
	oracleNs, oraclePages, oracleOut, err := reoptMeasure(osts, reps, oracle.Run)
	if err != nil {
		return nil, err
	}
	oracleMonNs, _, _, err := reoptMeasure(osts, reps, func() (*seq.Materialized, error) {
		m, _, err := oracle.RunReoptWith(reoptConfig())
		return m, err
	})
	if err != nil {
		return nil, err
	}

	if staticOut.Count() != adaptiveOut.Count() || staticOut.Count() != oracleOut.Count() {
		return nil, fmt.Errorf("row mismatch: static %d, adaptive %d, oracle %d",
			staticOut.Count(), adaptiveOut.Count(), oracleOut.Count())
	}
	pt.Rows = staticOut.Count()
	pt.StaticNsPerOp, pt.StaticPages = staticNs, staticPages
	pt.AdaptiveNsPerOp, pt.AdaptivePages = adaptiveNs, adaptivePages
	pt.OracleNsPerOp, pt.OraclePages = oracleNs, oraclePages
	pt.OracleMonitoredNsPerOp = oracleMonNs
	pt.AdaptiveSpeedupVsStatic = float64(staticNs) / float64(adaptiveNs)
	pt.AdaptiveOverOracleMonitored = float64(adaptiveNs) / float64(oracleMonNs)
	return pt, nil
}

// ReoptCalibrationRound runs every experiment's representative query
// twice: once under the default cost constants, feeding each trace
// into a fresh reopt.Calibration, then again with the regressed
// constants supplied through Options.Calibration. It reports the
// predicted-vs-actual error of both rounds.
func ReoptCalibrationRound(quick bool) (*ReoptCalibration, error) {
	ids := make([]string, 0, len(parallelSetups))
	for id := range parallelSetups {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	cal := &reopt.Calibration{}
	run := func(id string, opts seqproc.Options) (*seqproc.Analysis, error) {
		db, query, span, err := parallelSetups[id](quick)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		db.SetOptions(opts)
		q, err := db.Query(query)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		a, err := q.RunAnalyze(span)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		return a, nil
	}

	out := &ReoptCalibration{}
	for _, id := range ids {
		a, err := run(id, seqproc.Options{})
		if err != nil {
			return nil, err
		}
		cal.Observe(a.Root)
		out.Points = append(out.Points, ReoptCalibrationPoint{
			Experiment:            id,
			DefaultPredictedUnits: a.Predicted.Stream,
			DefaultActualNs:       a.Elapsed.Nanoseconds(),
		})
	}
	k, ok := cal.Constants()
	if !ok {
		return nil, fmt.Errorf("calibration failed to derive constants from %d samples", cal.Samples())
	}
	out.Samples = k.Samples
	out.Constants = k.Map()
	// Round 2 is the held-out test set: fresh runs under the calibrated
	// constants. Both constant sets are priced against the SAME round-2
	// traces — the counters and exclusive times per node are identical
	// for both, only the weights differ — so wall-time jitter cancels
	// out of the comparison and the margin reflects the constants alone.
	var defPred, defAct, calPred, calAct []float64
	defaults := core.DefaultCostParams()
	for i, id := range ids {
		a, err := run(id, seqproc.Options{Calibration: cal})
		if err != nil {
			return nil, err
		}
		nodeFit(a.Root, defaults, &defPred, &defAct)
		nodeFit(a.Root, a.Params, &calPred, &calAct)
		out.Points[i].CalPredictedUnits = a.Predicted.Stream
		out.Points[i].CalActualNs = a.Elapsed.Nanoseconds()
	}

	out.DefaultErr = scaledRelErr(defPred, defAct)
	out.CalibratedErr = scaledRelErr(calPred, calAct)
	out.Improved = out.CalibratedErr < out.DefaultErr
	return out, nil
}

// nodeFit prices each metrics node's exclusive counters with the
// round's cost constants and appends (predicted units, actual
// exclusive ns) pairs — the per-operator predicted-vs-actual data the
// calibration error compares.
func nodeFit(root *exec.NodeMetrics, p core.CostParams, pred, act *[]float64) {
	root.Walk(func(n *exec.NodeMetrics, _ int) {
		seqP := float64(n.Pages.SeqPages)
		randP := float64(n.Pages.RandPages)
		rows := float64(n.ScanRows + n.ProbeRows)
		cacheOps := float64(n.CachePuts + n.CacheHits + n.CacheMisses)
		if seqP == 0 && randP == 0 && rows == 0 && cacheOps == 0 {
			return
		}
		ns := float64(n.ExclusiveTime().Nanoseconds())
		if ns <= 0 {
			return
		}
		units := p.SeqPage*seqP + p.RandPage*randP + p.PerRecord*rows + p.CacheAccess*cacheOps
		*pred = append(*pred, units)
		*act = append(*act, ns)
	})
}

// scaledRelErr fits the least-squares global scale s (ns per cost
// unit) mapping predictions onto actuals and returns the mean relative
// deviation |s·p − a| / a — a scale-free measure of how well the
// constant set prices the workloads relative to each other.
func scaledRelErr(pred, act []float64) float64 {
	var pa, pp float64
	for i := range pred {
		pa += pred[i] * act[i]
		pp += pred[i] * pred[i]
	}
	if pp == 0 {
		return 0
	}
	s := pa / pp
	var sum float64
	for i := range pred {
		if act[i] > 0 {
			sum += abs(s*pred[i]-act[i]) / act[i]
		}
	}
	return sum / float64(len(pred))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ReoptBenchmark runs the full -reopt artifact: the skewed-estimate
// sweep plus the calibration round.
func ReoptBenchmark(quick bool) (*ReoptBench, error) {
	skew, err := ReoptSweep(quick)
	if err != nil {
		return nil, err
	}
	calib, err := ReoptCalibrationRound(quick)
	if err != nil {
		return nil, err
	}
	return &ReoptBench{Skew: skew, Calibration: calib}, nil
}

// RenderReopt formats the artifact as the table seqbench prints next
// to the JSON.
func RenderReopt(b *ReoptBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s %-12s %-12s %-12s %-12s %-9s %-9s %s\n",
		"n", "static-ns", "adaptive-ns", "oracle-ns", "oracleM-ns", "speedup", "vs-orcl", "switches")
	for _, p := range b.Skew {
		fmt.Fprintf(&sb, "%-9d %-12d %-12d %-12d %-12d %-9.2f %-9.2f %d (%s -> %s)\n",
			p.N, p.StaticNsPerOp, p.AdaptiveNsPerOp, p.OracleNsPerOp, p.OracleMonitoredNsPerOp,
			p.AdaptiveSpeedupVsStatic, p.AdaptiveOverOracleMonitored, p.AdaptiveSwitches,
			p.StaticMode, p.OracleMode)
	}
	c := b.Calibration
	fmt.Fprintf(&sb, "calibration: %d samples, rel-err %.3f -> %.3f (improved=%v)\n",
		c.Samples, c.DefaultErr, c.CalibratedErr, c.Improved)
	keys := make([]string, 0, len(c.Constants))
	for k := range c.Constants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-14s %.6g\n", k, c.Constants[k])
	}
	return sb.String()
}
