package experiments

import (
	"strings"
	"testing"
)

// The quick disk benchmark exercises every stage the CI sweep runs:
// cold/warm pool behavior, the layout head-to-head, and the cold-trace
// calibration round.
func TestDiskBenchmarkQuick(t *testing.T) {
	b, err := DiskBenchmark(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sweep) == 0 || len(b.Layout) == 0 || b.Calibration == nil {
		t.Fatalf("incomplete artifact: %+v", b)
	}
	for _, p := range b.Sweep {
		if p.ColdMisses == 0 {
			t.Errorf("%s n=%d: cold run missed nothing (pool not cold)", p.Access, p.N)
		}
		if p.WarmMisses != 0 {
			t.Errorf("%s n=%d: warm run missed %d pages (pool not resident)", p.Access, p.N, p.WarmMisses)
		}
		if p.WarmHits == 0 {
			t.Errorf("%s n=%d: warm run hit nothing", p.Access, p.N)
		}
		if p.Pages == 0 {
			t.Errorf("%s n=%d: no pages touched", p.Access, p.N)
		}
	}
	for _, p := range b.Layout {
		// A dense page-file probe reads exactly one page; the K-run
		// LSM layout must consult a page per candidate run.
		if p.PageProbePages != 1 {
			t.Errorf("n=%d: page-file probe touched %.2f pages, want 1", p.N, p.PageProbePages)
		}
		if p.ProbeReadAmp <= 1 {
			t.Errorf("n=%d: LSM read amplification %.2f, want > 1", p.N, p.ProbeReadAmp)
		}
		if p.LSMScanPages == 0 || p.PageScanPages == 0 {
			t.Errorf("n=%d: scan pages page=%d lsm=%d", p.N, p.PageScanPages, p.LSMScanPages)
		}
	}
	c := b.Calibration
	if c.Samples < 8 {
		t.Errorf("calibration from %d samples, want >= 8", c.Samples)
	}
	if c.Constants["rand_page"] <= 0 {
		t.Errorf("calibrated rand_page = %v", c.Constants["rand_page"])
	}
	out := RenderDisk(b)
	for _, want := range []string{"cold vs warm", "read-amp", "calibration"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderDisk missing %q:\n%s", want, out)
		}
	}
}
