package experiments

import (
	"fmt"
	"strings"
	"time"

	seqproc "repro"
	"repro/internal/core"
	"repro/internal/matview"
	"repro/internal/seq"
	"repro/internal/testgen"
)

// MatviewPoint is one (experiment, phase) measurement of the
// materialized-view sweep: seqbench -matview emits these as
// BENCH_matview.json. Each experiment contributes a cold row (the first
// evaluation, which also materializes the result as a view) and a warm
// row (the identical query re-optimized against the view registry).
type MatviewPoint struct {
	Experiment string `json:"experiment"`
	Query      string `json:"query"`
	Span       string `json:"span"`
	// Phase is "cold" (recomputation, view being built) or "warm"
	// (answered through the registry).
	Phase   string `json:"phase"`
	NsPerOp int64  `json:"ns_per_op"`
	Rows    int    `json:"rows"`
	// PagesTotal counts page touches of one run across every store the
	// plan reads — base sequences cold, the view store warm.
	PagesTotal int64 `json:"pages_total"`
	// Substitutions is the number of view substitutions the optimizer
	// adopted (warm rows; 0 cold).
	Substitutions int `json:"substitutions"`
	// ViewCost and RecomputeCost are the §4 cost-model estimates of the
	// adopted substitution; PredictedWinner names the side the model
	// picked before either ran.
	ViewCost        float64 `json:"view_cost,omitempty"`
	RecomputeCost   float64 `json:"recompute_cost,omitempty"`
	PredictedWinner string  `json:"predicted_winner,omitempty"`
	// SpeedupVsCold is cold-ns / this-ns (warm rows only).
	SpeedupVsCold float64 `json:"speedup_vs_cold,omitempty"`
	PagesSaved    int64   `json:"pages_saved,omitempty"`
	ViewRecords   int     `json:"view_records,omitempty"`
	ViewHits      int64   `json:"view_hits,omitempty"`
}

// matviewIDs are the experiments the sweep covers: E1 exercises an
// exact-match view over a compose/select/project block, E4 a windowed
// aggregate whose recomputation is expensive relative to a view scan.
var matviewIDs = []string{"e1", "e4"}

// MatviewSweep evaluates each experiment's representative query cold,
// registers the result as a materialized view over the rewritten block,
// and re-runs the query against the registry, verifying the warm output
// matches the cold output record for record. ids defaults to the
// experiments with a view-friendly repeated query (E1 and E4).
func MatviewSweep(ids []string, quick bool) ([]MatviewPoint, error) {
	if len(ids) == 0 {
		ids = matviewIDs
	}
	reps := 3
	if quick {
		reps = 1
	}
	var out []MatviewPoint
	for _, id := range ids {
		setup, ok := parallelSetups[strings.ToLower(id)]
		if !ok {
			return nil, fmt.Errorf("experiments: no matview sweep for %q", id)
		}
		points, err := matviewQuery(setup, strings.ToLower(id), quick, reps)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, points...)
	}
	return out, nil
}

func matviewQuery(setup func(bool) (*seqproc.DB, string, seq.Span, error), id string, quick bool, reps int) ([]MatviewPoint, error) {
	db, query, span, err := setup(quick)
	if err != nil {
		return nil, err
	}
	optimize := func(views *matview.Registry) (*core.Result, error) {
		q, err := db.Query(query)
		if err != nil {
			return nil, err
		}
		return core.Optimize(q.Node(), span, core.Options{Views: views})
	}
	// measure evaluates res reps times, returning best wall-clock, the
	// output of the last run, and the pages one run touches (taken from
	// an instrumented EXPLAIN ANALYZE pass so the view store counts too).
	measure := func(res *core.Result) (int64, *seq.Materialized, int64, error) {
		var m *seq.Materialized
		best := int64(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			m, err = res.Run()
			if err != nil {
				return 0, nil, 0, err
			}
			if ns := time.Since(start).Nanoseconds(); ns < best {
				best = ns
			}
		}
		a, err := res.RunAnalyze()
		if err != nil {
			return 0, nil, 0, err
		}
		return best, m, a.GlobalPages.Pages(), nil
	}

	cold, err := optimize(nil)
	if err != nil {
		return nil, err
	}
	coldNs, coldOut, coldPages, err := measure(cold)
	if err != nil {
		return nil, err
	}
	coldPt := MatviewPoint{
		Experiment: id, Query: query, Span: span.String(), Phase: "cold",
		NsPerOp: coldNs, Rows: coldOut.Count(), PagesTotal: coldPages,
	}

	reg := matview.New()
	view, err := reg.Register(id+"-rep", cold.Rewritten, coldOut, cold.RunSpan)
	if err != nil {
		return nil, err
	}

	warm, err := optimize(reg)
	if err != nil {
		return nil, err
	}
	if len(warm.Substitutions) == 0 {
		return nil, fmt.Errorf("warm plan did not substitute the view:\n%s", warm.Explain())
	}
	warmNs, warmOut, warmPages, err := measure(warm)
	if err != nil {
		return nil, err
	}
	if !testgen.EntriesApproxEqual(warmOut.Entries(), coldOut.Entries()) {
		return nil, fmt.Errorf("view-backed run differs from recomputation (%d vs %d rows)",
			warmOut.Count(), coldOut.Count())
	}
	sub := warm.Substitutions[0]
	warmPt := MatviewPoint{
		Experiment: id, Query: query, Span: span.String(), Phase: "warm",
		NsPerOp: warmNs, Rows: warmOut.Count(), PagesTotal: warmPages,
		Substitutions:   len(warm.Substitutions),
		ViewCost:        sub.ViewCost,
		RecomputeCost:   sub.RecomputeCost,
		PredictedWinner: "view",
		SpeedupVsCold:   float64(coldNs) / float64(warmNs),
		PagesSaved:      coldPages - warmPages,
		ViewRecords:     view.Counters().Records,
		ViewHits:        view.Hits(),
	}
	if sub.ViewCost >= sub.RecomputeCost {
		warmPt.PredictedWinner = "recompute"
	}
	return []MatviewPoint{coldPt, warmPt}, nil
}

// RenderMatview formats sweep points as the table seqbench prints next
// to the JSON artifact.
func RenderMatview(points []MatviewPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-5s %-12s %-9s %-8s %-6s %-5s %s\n",
		"exp", "phase", "ns/op", "pages", "speedup", "rows", "subs", "cost (view vs recompute)")
	for _, p := range points {
		speedup, cost := "", ""
		if p.Phase == "warm" {
			speedup = fmt.Sprintf("%.2f", p.SpeedupVsCold)
			cost = fmt.Sprintf("%.2f vs %.2f → %s", p.ViewCost, p.RecomputeCost, p.PredictedWinner)
		}
		fmt.Fprintf(&b, "%-4s %-5s %-12d %-9d %-8s %-6d %-5d %s\n",
			p.Experiment, p.Phase, p.NsPerOp, p.PagesTotal, speedup, p.Rows, p.Substitutions, cost)
	}
	return b.String()
}
