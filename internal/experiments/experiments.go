// Package experiments implements the reproduction harness: one
// experiment per table/figure of the paper (DESIGN.md E1–E8). Each
// experiment generates its workload, runs the competing strategies, and
// returns a Table whose rows mirror what the paper claims qualitatively;
// cmd/seqbench prints them and EXPERIMENTS.md records them.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Table is one experiment's result: a titled grid of rows.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper's claim being checked
	Header []string
	Rows   [][]string
	// Finding summarizes whether the measured shape matches the claim;
	// filled by the experiment itself from its own measurements.
	Finding string
}

// Render formats the table for terminals and markdown-ish logs.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Finding != "" {
		fmt.Fprintf(&b, "\nfinding: %s\n", t.Finding)
	}
	return b.String()
}

// Experiment is a runnable reproduction unit.
type Experiment struct {
	ID    string
	Name  string
	Run   func() (*Table, error)
	Quick func() (*Table, error) // reduced sizes for tests/CI
}

// All returns every experiment in id order.
func All() []Experiment {
	out := []Experiment{
		{"e1", "Example 1.1 / Figure 1: sequence vs relational plan", E1, E1Quick},
		{"e2", "Table 1 / Figure 3: span propagation", E2, E2Quick},
		{"e3", "Figure 4: access modes and join strategies", E3, E3Quick},
		{"e4", "Figure 5.A: Cache-Strategy-A for windowed aggregates", E4, E4Quick},
		{"e5", "Figure 5.B: Cache-Strategy-B for value offsets", E5, E5Quick},
		{"e6", "Figures 6-7 / Property 4.1: optimizer complexity", E6, E6Quick},
		{"e7", "Theorem 3.1: the stream-access property", E7, E7Quick},
		{"e8", "Section 3.1: rewrite ablation", E8, E8Quick},
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// timed runs f and returns its duration.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), nil2(err)
}

func nil2(err error) error { return err }

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

// ratio formats a/b with a guard.
func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", a/b)
}

func itoa(n int64) string { return fmt.Sprintf("%d", n) }
