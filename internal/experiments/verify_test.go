package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestExperimentsUnderVerifyAll reruns every experiment's quick
// configuration with the planlint invariant verifier enabled on every
// Optimize call: each rewrite-rule firing, each Step-2 annotation, and
// every final physical plan produced for E1–E8 must be invariant-clean.
func TestExperimentsUnderVerifyAll(t *testing.T) {
	core.VerifyAll = true
	defer func() { core.VerifyAll = false }()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if _, err := e.Quick(); err != nil {
				t.Fatalf("%s under planlint verification: %v", e.ID, err)
			}
		})
	}
}
