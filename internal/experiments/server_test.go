package experiments

import (
	"strings"
	"testing"
)

// TestServerSweepQuick runs the CI-sized connection sweep against an
// in-process daemon and sanity-checks the shape of every point.
func TestServerSweepQuick(t *testing.T) {
	points, err := ServerSweep("", true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(serverSweepQuick) {
		t.Fatalf("got %d points, want %d", len(points), len(serverSweepQuick))
	}
	for i, p := range points {
		if p.Conns != serverSweepQuick[i] {
			t.Errorf("point %d: conns = %d, want %d", i, p.Conns, serverSweepQuick[i])
		}
		if p.Workers != 2 {
			t.Errorf("point %d: workers = %d, want 2", i, p.Workers)
		}
		if p.Queries != p.Conns*15 {
			t.Errorf("point %d: %d queries for %d conns", i, p.Queries, p.Conns)
		}
		if p.Rows == 0 {
			t.Errorf("point %d: zero-row workload measures nothing", i)
		}
		if p.QPS <= 0 || p.P50Ms <= 0 || p.P99Ms < p.P50Ms || p.MaxMs < p.P99Ms {
			t.Errorf("point %d: implausible latency stats %+v", i, p)
		}
	}
	// The append stream ran: the epoch must have advanced across the sweep.
	if last := points[len(points)-1]; last.Epoch == 0 {
		t.Error("epoch never advanced; background appender did not run")
	}

	out := RenderServer(points)
	for _, want := range []string{"conns", "qps", "p99-ms", "finding:"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderServer output missing %q", want)
		}
	}
}
