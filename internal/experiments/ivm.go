package experiments

import (
	"fmt"
	"strings"
	"time"

	seqproc "repro"
	"repro/internal/matview"
	"repro/internal/seq"
	"repro/internal/testgen"
)

// IVMPoint is one (standing views, maintenance mode) measurement of the
// incremental-view-maintenance benchmark; seqbench -ivm emits these as
// BENCH_ivm.json. The workload interleaves append rounds with a read of
// every standing view, which is the shape a SUBSCRIBE-heavy deployment
// sees: every write must leave every standing result servable.
type IVMPoint struct {
	// Views is the number of standing materialized views over the
	// appended base (each a trailing-window aggregate with a distinct
	// window, so every append lands inside every view's halo).
	Views int `json:"views"`
	// Mode is "incremental" (stitch the delta halo) or "invalidate"
	// (drop views on write, recompute on read — the pre-IVM behavior).
	Mode    string `json:"mode"`
	Appends int    `json:"appends"`
	Rounds  int    `json:"rounds"`
	// AppendNs is the total wall time of the append phase; per-op cost
	// includes whatever maintenance the mode performs on the write path.
	AppendNs      int64 `json:"append_ns"`
	AppendNsPerOp int64 `json:"append_ns_per_op"`
	// ReadNs is the total wall time of reading every standing view once
	// per round. Incremental mode answers from maintained views;
	// invalidate mode recomputes from the base.
	ReadNs int64 `json:"read_ns"`
	// TotalNs = AppendNs + ReadNs: the end-to-end cost of sustaining the
	// standing queries across the append stream.
	TotalNs int64 `json:"total_ns"`
	// Maintenance action tallies (incremental mode; zero otherwise).
	Stitches    int `json:"stitches,omitempty"`
	Shrinks     int `json:"shrinks,omitempty"`
	Invalidates int `json:"invalidates,omitempty"`
	Noops       int `json:"noops,omitempty"`
	// SpeedupEndToEnd is invalidate-TotalNs / incremental-TotalNs for
	// the same view count (incremental rows only).
	SpeedupEndToEnd float64 `json:"speedup_end_to_end,omitempty"`
}

// ivmViewCounts is the standing-view sweep: no subscribers (the write
// path's fixed overhead), a typical handful, and a heavy fan-out.
var ivmViewCounts = []int{0, 10, 100}

// ivmBuildDB creates a fresh database with one sparse int sequence of n
// records (v = position) and v standing trailing-window aggregate views
// over it. Windows start large enough that every benchmark append lands
// inside every view's output hull, so incremental mode must do real
// stitch work on each write.
func ivmBuildDB(n, nviews, appends int, incremental bool) (*seqproc.DB, []string, []seq.Span, error) {
	schema, err := seq.NewSchema(seq.Field{Name: "v", Type: seq.TInt})
	if err != nil {
		return nil, nil, nil, err
	}
	entries := make([]seq.Entry, n)
	for i := range entries {
		entries[i] = seq.Entry{Pos: seq.Pos(i + 1), Rec: seq.Record{seq.Int(int64(i+1) % 101)}}
	}
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		return nil, nil, nil, err
	}
	db := seqproc.New()
	db.MustCreateSequence("s", data, seqproc.Sparse)
	db.SetViewMaintenance(incremental)
	queries := make([]string, nviews)
	spans := make([]seq.Span, nviews)
	for i := 0; i < nviews; i++ {
		// Window > appends+1 keeps the append halo inside the view span.
		// The filter keeps only windows near the sawtooth crest (~2% of
		// positions), the standing-query shape that rewards maintenance:
		// a maintained view scans a handful of records where a
		// recomputation re-aggregates the whole span.
		w := appends + 2 + i%32
		queries[i] = fmt.Sprintf("select(sum(s, v, %d), sum > %d)", w, 90*w)
		counters, err := db.Materialize(fmt.Sprintf("standing%d", i), queries[i],
			seq.NewSpan(1, seq.Pos(n+appends+64)))
		if err != nil {
			return nil, nil, nil, err
		}
		spans[i] = counters.Span
	}
	return db, queries, spans, nil
}

// ivmRun drives one (views, mode) cell: rounds of appends, each followed
// by one read of every standing view over its registered span.
func ivmRun(n, nviews, rounds, perRound int, incremental bool) (IVMPoint, error) {
	appends := rounds * perRound
	db, queries, spans, err := ivmBuildDB(n, nviews, appends, incremental)
	if err != nil {
		return IVMPoint{}, err
	}
	db.TakeMaintenanceReports()
	mode := "invalidate"
	if incremental {
		mode = "incremental"
	}
	pt := IVMPoint{Views: nviews, Mode: mode, Appends: appends, Rounds: rounds}

	pos := int64(n)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		for i := 0; i < perRound; i++ {
			pos++
			if err := db.Append("s", seq.Pos(pos), seq.Record{seq.Int(pos)}); err != nil {
				return IVMPoint{}, err
			}
		}
		pt.AppendNs += time.Since(start).Nanoseconds()

		start = time.Now()
		for i, query := range queries {
			q, err := db.Query(query)
			if err != nil {
				return IVMPoint{}, err
			}
			if _, err := q.Run(spans[i]); err != nil {
				return IVMPoint{}, err
			}
		}
		pt.ReadNs += time.Since(start).Nanoseconds()
	}
	pt.AppendNsPerOp = pt.AppendNs / int64(appends)
	pt.TotalNs = pt.AppendNs + pt.ReadNs
	for _, rep := range db.TakeMaintenanceReports() {
		switch rep.Action {
		case matview.MaintainStitch:
			pt.Stitches++
		case matview.MaintainShrink:
			pt.Shrinks++
		case matview.MaintainInvalidate:
			pt.Invalidates++
		case matview.MaintainNone:
			pt.Noops++
		}
	}

	// Correctness guard: a maintained view must answer exactly what a
	// fresh recomputation answers.
	if incremental && nviews > 0 {
		q, err := db.Query(queries[0])
		if err != nil {
			return IVMPoint{}, err
		}
		got, err := q.Run(spans[0])
		if err != nil {
			return IVMPoint{}, err
		}
		db.SetViewMaintenance(false)
		db.SetOptions(seqproc.Options{Views: matview.New()}) // bypass the registry
		fresh, err := db.Query(queries[0])
		if err != nil {
			return IVMPoint{}, err
		}
		want, err := fresh.Run(spans[0])
		if err != nil {
			return IVMPoint{}, err
		}
		if !testgen.EntriesApproxEqual(got.Entries(), want.Entries()) {
			return IVMPoint{}, fmt.Errorf(
				"maintained view diverged from recomputation over %v (%d vs %d rows)",
				spans[0], got.Count(), want.Count())
		}
	}
	return pt, nil
}

// IVMBenchmark measures append throughput and standing-query read cost
// at 0, 10, and 100 standing views, once with incremental maintenance
// (stitch the delta halo into each view) and once with the pre-IVM
// invalidate-on-write behavior (every read recomputes). The end-to-end
// comparison is the one that matters: incremental trades slower appends
// for reads that stay near-free, and wins once standing views pile up.
func IVMBenchmark(quick bool) ([]IVMPoint, error) {
	n, rounds, perRound := 20000, 5, 10
	if quick {
		n, rounds, perRound = 4000, 3, 5
	}
	var out []IVMPoint
	for _, nviews := range ivmViewCounts {
		inval, err := ivmRun(n, nviews, rounds, perRound, false)
		if err != nil {
			return nil, fmt.Errorf("ivm: %d views invalidate: %w", nviews, err)
		}
		incr, err := ivmRun(n, nviews, rounds, perRound, true)
		if err != nil {
			return nil, fmt.Errorf("ivm: %d views incremental: %w", nviews, err)
		}
		if incr.TotalNs > 0 {
			incr.SpeedupEndToEnd = float64(inval.TotalNs) / float64(incr.TotalNs)
		}
		out = append(out, inval, incr)
	}
	return out, nil
}

// RenderIVM formats benchmark points as the table seqbench prints next
// to the JSON artifact.
func RenderIVM(points []IVMPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-12s %-14s %-12s %-12s %-8s %s\n",
		"views", "mode", "append ns/op", "read ns", "total ns", "speedup", "actions (stitch/shrink/inval/noop)")
	for _, p := range points {
		speedup := ""
		if p.SpeedupEndToEnd > 0 {
			speedup = fmt.Sprintf("%.2f", p.SpeedupEndToEnd)
		}
		fmt.Fprintf(&b, "%-6d %-12s %-14d %-12d %-12d %-8s %d/%d/%d/%d\n",
			p.Views, p.Mode, p.AppendNsPerOp, p.ReadNs, p.TotalNs, speedup,
			p.Stitches, p.Shrinks, p.Invalidates, p.Noops)
	}
	return b.String()
}
