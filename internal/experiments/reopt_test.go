package experiments

import (
	"math"
	"strings"
	"testing"
)

// The reopt sweep's deterministic shape: the mispriced optimizer picks
// a streamed compose, the truthful one picks something else, and the
// adaptive run notices mid-stream and splices at least once while
// producing the same rows (cross-checked inside the sweep) without
// touching more pages than the static plan. Wall-clock speedups are
// reported but not asserted — CI machines are too noisy for that.
func TestReoptSweepQuick(t *testing.T) {
	points, err := ReoptSweep(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("got %d points, want 1 in quick mode", len(points))
	}
	p := points[0]
	if !strings.Contains(p.StaticMode, "compose-stream") {
		t.Errorf("mispriced mode = %s, want a streamed compose", p.StaticMode)
	}
	if p.OracleMode == p.StaticMode {
		t.Errorf("oracle mode %s matches the mispriced mode; the lie changed nothing", p.OracleMode)
	}
	if p.AdaptiveSwitches == 0 {
		t.Error("adaptive run never switched despite a 2500x density lie")
	}
	if p.Rows == 0 {
		t.Error("sweep produced no rows")
	}
	if p.AdaptivePages > p.StaticPages {
		t.Errorf("adaptive run read more pages (%d) than the mispriced static plan (%d)",
			p.AdaptivePages, p.StaticPages)
	}
}

// The calibration round's deterministic shape: every experiment feeds
// the regression, the derived constants are finite and positive, and
// both rounds produce a measurable per-operator error. Whether the
// calibrated error is lower is asserted only by the full bench (quick
// traces are too small for the fit to be meaningful).
func TestReoptCalibrationRoundQuick(t *testing.T) {
	c, err := ReoptCalibrationRound(true)
	if err != nil {
		t.Fatal(err)
	}
	if c.Samples < 8 {
		t.Errorf("only %d samples observed across E1-E8", c.Samples)
	}
	if len(c.Points) != len(parallelSetups) {
		t.Errorf("got %d calibration points, want %d", len(c.Points), len(parallelSetups))
	}
	for _, name := range []string{"rand_page", "per_record", "cache_access", "ns_per_unit"} {
		v, ok := c.Constants[name]
		if !ok {
			t.Errorf("constant %s missing", name)
			continue
		}
		if !(v > 0) || math.IsInf(v, 0) {
			t.Errorf("constant %s = %v, want finite positive", name, v)
		}
	}
	if !(c.DefaultErr > 0) || !(c.CalibratedErr > 0) {
		t.Errorf("errors not measured: default %v, calibrated %v", c.DefaultErr, c.CalibratedErr)
	}
	b := &ReoptBench{Skew: nil, Calibration: c}
	if table := RenderReopt(b); !strings.Contains(table, "calibration:") {
		t.Errorf("render lacks the calibration line:\n%s", table)
	}
}
