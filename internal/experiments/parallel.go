package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	seqproc "repro"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/seq"
	"repro/internal/workload"
)

// ParallelPoint is one (experiment, K) measurement of the span-partition
// sweep: seqbench -parallel emits these as BENCH_parallel.json.
type ParallelPoint struct {
	Experiment string `json:"experiment"`
	Query      string `json:"query"`
	Span       string `json:"span"`
	// K is the worker count of this run; 1 is the serial baseline.
	K int `json:"k"`
	// CostModelK is the worker count the extended §4 cost model picks on
	// its own for this plan (1 = the model prefers serial).
	CostModelK int `json:"cost_model_k"`
	// Forced is true when K was imposed on the planner rather than chosen
	// by the cost model.
	Forced  bool  `json:"forced"`
	NsPerOp int64 `json:"ns_per_op"`
	// SpeedupVsSerial is serial-ns / this-ns (1.0 for the baseline row).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	Rows            int     `json:"rows"`
	// PagesTotal counts page touches of one run (seq + random); the halo
	// overhead is this row's pages minus the serial row's.
	PagesTotal        int64   `json:"pages_total"`
	HaloPagesOverhead int64   `json:"halo_pages_overhead"`
	Halo              string  `json:"halo"`
	HaloCostEst       float64 `json:"halo_cost_est"`
	// SerialOnlyReason is set (on the baseline row) when the partition
	// planner classifies the plan as not advisable to split.
	SerialOnlyReason string `json:"serial_only_reason,omitempty"`
}

// parallelSetups builds the representative query of each experiment —
// the same query EXPLAIN ANALYZE shows — as (db, query text, span).
var parallelSetups = map[string]func(quick bool) (*seqproc.DB, string, seq.Span, error){
	"e1": func(quick bool) (*seqproc.DB, string, seq.Span, error) {
		n := 4000
		if quick {
			n = 500
		}
		span := seq.NewSpan(1, int64(n)*4)
		quakes, volcanos, err := workload.Monitoring(span, n, n/10, int64(n))
		if err != nil {
			return nil, "", span, err
		}
		db := seqproc.New()
		db.MustCreateSequence("quakes", quakes, seqproc.Sparse)
		db.MustCreateSequence("volcanos", volcanos, seqproc.Sparse)
		return db, "project(select(compose(volcanos, prev(quakes)), strength > 7.0), name)", span, nil
	},
	"e2": func(quick bool) (*seqproc.DB, string, seq.Span, error) {
		scale := int64(40)
		if quick {
			scale = 4
		}
		db, err := table1DB(scale)
		return db, "project(compose(dec, select(compose(ibm, hp), ibm.close > hp.close) as ih), dec.close)",
			seq.NewSpan(1, 750*scale), err
	},
	"e3": func(quick bool) (*seqproc.DB, string, seq.Span, error) {
		n := int64(50_000)
		d1 := 0.02
		if quick {
			n = 4_000
			d1 = 0.05
		}
		span := seq.NewSpan(1, n)
		left, err := workload.Stock(workload.StockConfig{Name: "left", Span: span, Density: d1, Seed: 11})
		if err != nil {
			return nil, "", span, err
		}
		right, err := workload.Stock(workload.StockConfig{Name: "right", Span: span, Density: 1.0, Seed: 12})
		if err != nil {
			return nil, "", span, err
		}
		db := seqproc.New()
		db.MustCreateSequence("l", left, seqproc.Sparse)
		db.MustCreateSequence("r", right, seqproc.Dense)
		return db, "select(compose(l, r), l.close > r.close)", span, nil
	},
	"e4": func(quick bool) (*seqproc.DB, string, seq.Span, error) {
		n := int64(50_000)
		if quick {
			n = 4_000
		}
		span := seq.NewSpan(1, n)
		data, err := workload.Stock(workload.StockConfig{Name: "ibm", Span: span, Density: 1, Seed: 21})
		if err != nil {
			return nil, "", span, err
		}
		db := seqproc.New()
		db.MustCreateSequence("ibm", data, seqproc.Dense)
		return db, "sum(ibm, close, 32)", span, nil
	},
	"e5": func(quick bool) (*seqproc.DB, string, seq.Span, error) {
		n := int64(20_000)
		if quick {
			n = 2_000
		}
		span := seq.NewSpan(1, n)
		l, err := workload.Stock(workload.StockConfig{Name: "l", Span: span, Density: 1, Seed: 51})
		if err != nil {
			return nil, "", span, err
		}
		r, err := workload.Stock(workload.StockConfig{Name: "r", Span: span, Density: 1, Seed: 52})
		if err != nil {
			return nil, "", span, err
		}
		db := seqproc.New()
		db.MustCreateSequence("l", l, seqproc.Dense)
		db.MustCreateSequence("r", r, seqproc.Dense)
		return db, "prev(select(compose(l, r), l.close > r.close))", span, nil
	},
	"e6": func(quick bool) (*seqproc.DB, string, seq.Span, error) {
		span := seq.NewSpan(1, 64)
		db := seqproc.New()
		for _, name := range []string{"a", "b", "c", "d"} {
			data, err := workload.Stock(workload.StockConfig{Name: name, Span: span, Density: 1, Seed: 31})
			if err != nil {
				return nil, "", span, err
			}
			db.MustCreateSequence(name, data, seqproc.Dense)
		}
		return db, "compose(a, compose(b, compose(c, d)))", span, nil
	},
	"e7": func(quick bool) (*seqproc.DB, string, seq.Span, error) {
		n := int64(20_000)
		if quick {
			n = 2_000
		}
		span := seq.NewSpan(1, n)
		a, err := workload.Stock(workload.StockConfig{Name: "a", Span: span, Density: 0.9, Seed: 41})
		if err != nil {
			return nil, "", span, err
		}
		b, err := workload.Stock(workload.StockConfig{Name: "b", Span: span, Density: 0.9, Seed: 42})
		if err != nil {
			return nil, "", span, err
		}
		db := seqproc.New()
		db.MustCreateSequence("a", a, seqproc.Sparse)
		db.MustCreateSequence("b", b, seqproc.Sparse)
		return db, "sum(prev(select(compose(a, b), a.close > b.close)), a.close, 16)", span, nil
	},
	"e8": func(quick bool) (*seqproc.DB, string, seq.Span, error) {
		scale := int64(40)
		if quick {
			scale = 4
		}
		db, err := table1DB(scale)
		return db, `project(
		    select(offset(compose(dec, compose(ibm, hp) as ih), -3),
		           ibm.close > hp.close and dec.close > 103.0),
		    dec.close)`, seq.NewSpan(1, 750*scale), err
	},
}

// ParallelSweep measures each experiment's representative query at the
// serial baseline, at forced worker counts, and at the cost model's own
// pick, verifying every partitioned run returns exactly the serial row
// set. maxWorkers <= 0 selects GOMAXPROCS.
func ParallelSweep(ids []string, quick bool, maxWorkers int) ([]ParallelPoint, error) {
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	if len(ids) == 0 {
		for _, e := range All() {
			ids = append(ids, e.ID)
		}
	}
	reps := 3
	if quick {
		reps = 1
	}
	var out []ParallelPoint
	for _, id := range ids {
		setup, ok := parallelSetups[strings.ToLower(id)]
		if !ok {
			return nil, fmt.Errorf("experiments: no parallel sweep for %q", id)
		}
		db, query, span, err := setup(quick)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		points, err := sweepQuery(db, id, query, span, maxWorkers, reps)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, points...)
	}
	return out, nil
}

func sweepQuery(db *seqproc.DB, id, query string, span seq.Span, maxWorkers, reps int) ([]ParallelPoint, error) {
	q, err := db.Query(query)
	if err != nil {
		return nil, err
	}
	res, err := core.Optimize(q.Node(), span, core.Options{Parallelism: maxWorkers})
	if err != nil {
		return nil, err
	}
	costK := 1
	if res.Parallel.Parallel() {
		costK = res.Parallel.K
	}
	sc := parallel.Analyze(res.Plan)

	totalPages := func() (int64, error) {
		var sum int64
		for _, name := range db.Sequences() {
			s, err := db.PageStats(name)
			if err != nil {
				return 0, err
			}
			sum += s.Pages()
		}
		return sum, nil
	}
	// measure runs the evaluation reps times, returning the best
	// wall-clock, the row count, and the pages of a single run.
	measure := func(run func() (*seq.Materialized, error)) (int64, int, int64, error) {
		before, err := totalPages()
		if err != nil {
			return 0, 0, 0, err
		}
		var rows int
		best := int64(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			m, err := run()
			if err != nil {
				return 0, 0, 0, err
			}
			if ns := time.Since(start).Nanoseconds(); ns < best {
				best = ns
			}
			rows = m.Count()
		}
		after, err := totalPages()
		if err != nil {
			return 0, 0, 0, err
		}
		return best, rows, (after - before) / int64(reps), nil
	}

	mk := func(k int, forced bool, halo string, haloCost float64) ParallelPoint {
		return ParallelPoint{
			Experiment: id, Query: query, Span: span.String(),
			K: k, CostModelK: costK, Forced: forced,
			Halo: halo, HaloCostEst: haloCost,
		}
	}

	// Serial baseline.
	serialPt := mk(1, false, sc.Halo.String(), sc.HaloCost)
	if !sc.Partitionable {
		serialPt.SerialOnlyReason = sc.Reason
	}
	ns, rows, pages, err := measure(func() (*seq.Materialized, error) {
		return exec.Run(res.Plan, res.RunSpan)
	})
	if err != nil {
		return nil, err
	}
	serialPt.NsPerOp, serialPt.Rows, serialPt.PagesTotal = ns, rows, pages
	serialPt.SpeedupVsSerial = 1.0
	points := []ParallelPoint{serialPt}

	// Forced worker counts plus the cost model's own pick; splitting a
	// serial-only plan is still exact, just not advisable, so those are
	// skipped rather than forced.
	if !sc.Partitionable {
		return points, nil
	}
	ks := []int{2, 4}
	if costK > 1 && costK != 2 && costK != 4 {
		ks = append(ks, costK)
	}
	for _, k := range ks {
		if int64(k) > span.Len() {
			continue
		}
		d := res.Parallel
		forced := false
		if !(costK == k && d.Parallel()) {
			d, err = parallel.ForceK(res.Plan, res.RunSpan, k)
			if err != nil {
				return nil, err
			}
			forced = true
		}
		pt := mk(k, forced, d.Halo.String(), d.HaloCost)
		ns, rows, pages, err := measure(func() (*seq.Materialized, error) {
			return parallel.Run(res.Plan, res.RunSpan, d)
		})
		if err != nil {
			return nil, err
		}
		if rows != serialPt.Rows {
			return nil, fmt.Errorf("K=%d returned %d rows, serial returned %d", k, rows, serialPt.Rows)
		}
		pt.NsPerOp, pt.Rows, pt.PagesTotal = ns, rows, pages
		pt.SpeedupVsSerial = float64(serialPt.NsPerOp) / float64(ns)
		pt.HaloPagesOverhead = pages - serialPt.PagesTotal
		points = append(points, pt)
	}
	return points, nil
}

// RenderParallel formats sweep points as the table seqbench prints next
// to the JSON artifact.
func RenderParallel(points []ParallelPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-4s %-7s %-12s %-9s %-12s %-10s %s\n",
		"exp", "K", "costK", "ns/op", "speedup", "pages", "halo-pg", "note")
	for _, p := range points {
		note := ""
		if p.SerialOnlyReason != "" {
			note = "serial-only: " + p.SerialOnlyReason
		} else if p.K > 1 && !p.Forced {
			note = "cost-model pick"
		}
		fmt.Fprintf(&b, "%-4s %-4d %-7d %-12d %-9.2f %-12d %-10d %s\n",
			p.Experiment, p.K, p.CostModelK, p.NsPerOp, p.SpeedupVsSerial,
			p.PagesTotal, p.HaloPagesOverhead, note)
	}
	return b.String()
}
