package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/seq"
	"repro/internal/storage"
)

// E5 reproduces Figure 5.B: Cache-Strategy-B for value offsets.
//
// The derived sequence #3 = select(compose(IBM, HP), ibm.close >
// hp.close) feeds a Previous operator. The naive algorithm walks
// backward from each position, *recomputing* the derived sequence at
// every probed position, so its cost explodes as matches get rarer ("if
// the close of IBM is usually greater than the close of HP, a large
// number of IBM and HP records may need to be accessed"). The paper's
// example has frequent matches; we sweep the match probability downward
// to expose the blow-up. Cache-Strategy-B instead caches the previous
// output: one scan, one cache slot.
func E5() (*Table, error) { return e5(20_000, []float64{0.5, 0.1, 0.02, 0.005}) }

// E5Quick is E5 at test sizes.
func E5Quick() (*Table, error) { return e5(2_000, []float64{0.5, 0.05}) }

func e5(n int64, matchProbs []float64) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Previous over a filtered join: naive walk vs Cache-Strategy-B",
		Claim: "naive backward probing recomputes the derived input and blows up as matches get rarer; Cache-B stays one scan",
		Header: []string{
			"P(match)", "naive_pages", "naive_ms", "cacheB_pages", "cacheB_ms",
			"page_ratio", "cacheB_peak_slots",
		},
	}
	closeSchema := seq.MustSchema(seq.Field{Name: "close", Type: seq.TFloat})
	span := seq.NewSpan(1, n)
	var firstRatio, lastRatio float64
	for _, p := range matchProbs {
		// l.close ~ U(0,1); r.close = 1-p  =>  P(l.close > r.close) = p.
		rng := rand.New(rand.NewSource(int64(p*1e6) + 7))
		var le, re []seq.Entry
		for pos := span.Start; pos <= span.End; pos++ {
			le = append(le, seq.Entry{Pos: pos, Rec: seq.Record{seq.Float(rng.Float64())}})
			re = append(re, seq.Entry{Pos: pos, Rec: seq.Record{seq.Float(1 - p)}})
		}
		lm := seq.MustMaterialized(closeSchema, le)
		rm := seq.MustMaterialized(closeSchema, re)

		build := func(incremental bool) (int64, time.Duration, int, int, error) {
			ls, err := storage.FromMaterialized(lm, storage.KindDense, 0)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			rs, err := storage.FromMaterialized(rm, storage.KindDense, 0)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			schema, err := closeSchema.Concat(closeSchema, "ibm", "hp")
			if err != nil {
				return 0, 0, 0, 0, err
			}
			lc, err := expr.NewCol(schema, "ibm.close")
			if err != nil {
				return 0, 0, 0, 0, err
			}
			rc, err := expr.NewCol(schema, "hp.close")
			if err != nil {
				return 0, 0, 0, 0, err
			}
			pred, err := expr.NewBin(expr.OpGt, lc, rc)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			join, err := exec.NewCompose(
				exec.NewLeaf("ibm", ls, seq.AllSpan),
				exec.NewLeaf("hp", rs, seq.AllSpan),
				pred, schema, exec.ComposeLockStep)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			outSpan := seq.NewSpan(seq.ClampPos(span.Start+1), span.End)
			var prev exec.Plan
			if incremental {
				prev, err = exec.NewValueOffsetIncremental(join, -1, outSpan)
			} else {
				prev, err = exec.NewValueOffsetNaive(join, -1, outSpan)
			}
			if err != nil {
				return 0, 0, 0, 0, err
			}
			start := time.Now()
			out, err := exec.Run(prev, outSpan)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			elapsed := time.Since(start)
			pages := ls.Stats().Snapshot().Pages() + rs.Stats().Snapshot().Pages()
			return pages, elapsed, out.Count(), exec.PeakCacheResidency(prev), nil
		}

		naivePages, naiveTime, naiveCount, _, err := build(false)
		if err != nil {
			return nil, err
		}
		cachePages, cacheTime, cacheCount, peak, err := build(true)
		if err != nil {
			return nil, err
		}
		if naiveCount != cacheCount {
			return nil, fmt.Errorf("e5: strategies disagree at p=%g: %d vs %d", p, naiveCount, cacheCount)
		}
		r := float64(naivePages) / float64(max64(cachePages, 1))
		if firstRatio == 0 {
			firstRatio = r
		}
		lastRatio = r
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", p),
			itoa(naivePages), ms(naiveTime),
			itoa(cachePages), ms(cacheTime),
			ratio(float64(naivePages), float64(cachePages)),
			itoa(int64(peak)),
		})
	}
	if lastRatio > firstRatio*2 && firstRatio > 1 {
		t.Finding = fmt.Sprintf("naive cost explodes as matches get rarer (%.0fx -> %.0fx more pages than Cache-B, which holds one slot): matches Figure 5.B", firstRatio, lastRatio)
	} else {
		t.Finding = "MISMATCH: naive walk did not blow up relative to Cache-Strategy-B"
	}
	return t, nil
}
