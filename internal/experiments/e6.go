package experiments

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// E6 reproduces Figures 6–7 and Property 4.1: the complexity of the
// block-wise plan-generation algorithm.
//
// A single block of N positional joins is optimized for N = 2..12. The
// claim (Property 4.1): the number of join plans evaluated is
// O(N·2^(N-1)) — the left-deep DP evaluates exactly
// sum_{k=1}^{N-1} C(N,k)·(N-k) = N·2^(N-1) - N subset extensions — and
// the peak number of stored plans is O(C(N, ⌈N/2⌉)).
func E6() (*Table, error) { return e6(12) }

// E6Quick is E6 at test sizes.
func E6Quick() (*Table, error) { return e6(7) }

func e6(maxN int) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "plan-generation complexity vs number of join sources",
		Claim: "plans evaluated = N·2^(N-1) - N exactly; peak stored plans = O(C(N, ⌈N/2⌉))",
		Header: []string{
			"N", "plans_evaluated", "N*2^(N-1)-N", "peak_stored", "C(N,ceil(N/2))", "opt_ms",
		},
	}
	data, err := workload.Stock(workload.StockConfig{
		Name: "s", Span: seq.NewSpan(1, 64), Density: 1, Seed: 31,
	})
	if err != nil {
		return nil, err
	}
	exact := true
	for n := 2; n <= maxN; n++ {
		var q *algebra.Node
		for i := 0; i < n; i++ {
			store, err := storage.FromMaterialized(data, storage.KindDense, 0)
			if err != nil {
				return nil, err
			}
			leaf := algebra.Base(fmt.Sprintf("s%d", i), store)
			if q == nil {
				q = leaf
				continue
			}
			q, err = algebra.Compose(q, leaf, nil, "", "")
			if err != nil {
				return nil, err
			}
		}
		start := time.Now()
		res, err := core.Optimize(q, seq.NewSpan(1, 64), core.Options{})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		want := int64(n)*pow2(n-1) - int64(n)
		if res.Stats.JoinPlansEvaluated != want {
			exact = false
		}
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)),
			itoa(res.Stats.JoinPlansEvaluated),
			itoa(want),
			itoa(int64(res.Stats.PeakPlansStored)),
			itoa(binom(n, (n+1)/2)),
			ms(elapsed),
		})
	}
	if exact {
		t.Finding = "plans evaluated matches N·2^(N-1) - N exactly at every N; peak stored tracks the central binomial: matches Property 4.1"
	} else {
		t.Finding = "MISMATCH: plan counts deviate from Property 4.1"
	}
	return t, nil
}

func pow2(n int) int64 { return int64(1) << uint(n) }

func binom(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	out := int64(1)
	for i := 0; i < k; i++ {
		out = out * int64(n-i) / int64(i+1)
	}
	return out
}
