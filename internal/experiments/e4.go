package experiments

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/workload"
)

// E4 reproduces Figure 5.A: Cache-Strategy-A for windowed aggregates.
//
// A moving sum over the last w positions of a dense stock series is
// evaluated three ways:
//
//	naive:    each output position probes all w window positions
//	          (§4.1.2's naive algorithm; w probes per output)
//	cacheA:   one input scan feeding a FIFO window cache; each output
//	          aggregates over the cache (Figure 5.A; input touched once)
//	sliding:  cacheA plus O(1) incremental accumulator maintenance
//	          (this reproduction's extension, the E4 ablation)
//
// The claim: naive input accesses grow as w·n while cacheA stays at n,
// so the advantage grows linearly with w; sliding additionally removes
// the O(w) recomputation per output.
func E4() (*Table, error) { return e4(40_000, []int64{2, 8, 32, 128, 256}) }

// E4Quick is E4 at test sizes.
func E4Quick() (*Table, error) { return e4(4_000, []int64{4, 32}) }

func e4(n int64, windows []int64) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "moving sum strategies vs window size",
		Claim: "Cache-Strategy-A touches each input record once regardless of w; naive probing grows as w·n",
		Header: []string{
			"w", "naive_recs", "naive_ms", "cacheA_recs", "cacheA_ms",
			"sliding_ms", "rec_ratio", "naive/cacheA_time",
		},
	}
	span := seq.NewSpan(1, n)
	data, err := workload.Stock(workload.StockConfig{Name: "ibm", Span: span, Density: 1, Seed: 21})
	if err != nil {
		return nil, err
	}
	var firstRatio, lastRatio float64
	for _, w := range windows {
		spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 1, Window: algebra.Trailing(w), As: "sum"}
		outSpan := seq.NewSpan(span.Start, seq.ClampPos(span.End+w-1))

		run := func(mk func(in exec.Plan) (exec.Plan, error)) (int64, time.Duration, int, error) {
			store, err := storage.FromMaterialized(data, storage.KindDense, 0)
			if err != nil {
				return 0, 0, 0, err
			}
			leaf := exec.NewLeaf("ibm", store, seq.AllSpan)
			plan, err := mk(leaf)
			if err != nil {
				return 0, 0, 0, err
			}
			start := time.Now()
			out, err := exec.Run(plan, outSpan)
			if err != nil {
				return 0, 0, 0, err
			}
			elapsed := time.Since(start)
			st := store.Stats().Snapshot()
			return st.SeqRecords + st.ProbeRecords, elapsed, out.Count(), nil
		}

		naiveRecs, naiveTime, naiveCount, err := run(func(in exec.Plan) (exec.Plan, error) {
			return exec.NewAggNaive(in, spec, outSpan)
		})
		if err != nil {
			return nil, err
		}
		cacheRecs, cacheTime, cacheCount, err := run(func(in exec.Plan) (exec.Plan, error) {
			return exec.NewAggCached(in, spec, outSpan)
		})
		if err != nil {
			return nil, err
		}
		_, slideTime, slideCount, err := run(func(in exec.Plan) (exec.Plan, error) {
			return exec.NewAggSliding(in, spec, outSpan)
		})
		if err != nil {
			return nil, err
		}
		if naiveCount != cacheCount || cacheCount != slideCount {
			return nil, fmt.Errorf("e4: strategies disagree at w=%d: %d/%d/%d", w, naiveCount, cacheCount, slideCount)
		}
		r := float64(naiveRecs) / float64(max64(cacheRecs, 1))
		if firstRatio == 0 {
			firstRatio = r
		}
		lastRatio = r
		t.Rows = append(t.Rows, []string{
			itoa(w),
			itoa(naiveRecs), ms(naiveTime),
			itoa(cacheRecs), ms(cacheTime),
			ms(slideTime),
			ratio(float64(naiveRecs), float64(cacheRecs)),
			ratio(float64(naiveTime), float64(cacheTime)),
		})
	}
	if lastRatio > firstRatio && firstRatio > 1.5 {
		t.Finding = fmt.Sprintf("cacheA input accesses stay flat while naive grows with w (ratio %.0fx -> %.0fx): matches Figure 5.A", firstRatio, lastRatio)
	} else {
		t.Finding = "MISMATCH: Cache-Strategy-A advantage did not grow with window size"
	}
	return t, nil
}
