package experiments

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/seq"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wire"
	"repro/internal/workload"
)

// ServerPoint is one row of the seqd load sweep (seqbench -server): a
// fixed per-connection query workload measured at one connection count,
// with a background appender advancing the MVCC epoch throughout.
type ServerPoint struct {
	// Conns is the number of concurrent client connections.
	Conns int `json:"conns"`
	// Workers is the server's worker-pool bound during the sweep.
	Workers int `json:"workers"`
	// Queries is the total number of queries completed at this point.
	Queries int `json:"queries"`
	// Rows is the per-query result size (identical across the sweep; the
	// workload is fixed so latency differences are contention, not work).
	Rows int `json:"rows"`
	// QPS is queries per wall-clock second across all connections.
	QPS float64 `json:"qps"`
	// P50Ms/P99Ms/MaxMs summarize per-query wall latency as observed by
	// the client, queue wait included.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// QueueP99Ms is the 99th-percentile time requests waited for a
	// worker slot (server-reported); the signal that the pool, not the
	// engine, is the bottleneck.
	QueueP99Ms float64 `json:"queue_p99_ms"`
	// Appends is the number of epoch-advancing writes the background
	// appender landed during this point's measurement window.
	Appends int `json:"appends"`
	// Epoch is the server epoch when the point finished.
	Epoch int64 `json:"epoch"`
}

// serverSweepConns are the connection counts of the full sweep.
var serverSweepConns = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// serverSweepQuick is the CI-sized sweep.
var serverSweepQuick = []int{1, 2, 4, 8}

// ServerSweep measures seqd under concurrent load, 1→256 connections
// (quick: 1→8). With addr == "" it boots an in-process server on a
// loopback listener; otherwise it drives the daemon already listening at
// addr (which must serve a sparse sequence named "bench" — the in-process
// path creates it).
func ServerSweep(addr string, quick bool, workers int) ([]ServerPoint, error) {
	conns := serverSweepConns
	perConn := 40
	if quick {
		conns = serverSweepQuick
		perConn = 15
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var srv *server.Server
	if addr == "" {
		data, err := workload.Stock(workload.StockConfig{
			Name: "bench", Span: seq.NewSpan(1, 20000), Density: 0.8, Seed: 42,
		})
		if err != nil {
			return nil, err
		}
		srv = server.New(server.Config{Workers: workers})
		if err := srv.CreateSequence("bench", data, storage.KindSparse); err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go srv.Serve(ln)
		defer srv.Close()
		addr = ln.Addr().String()
	}

	// One warm-up connection discovers the schema and fixes the
	// expected row count.
	const query = "select(bench, close > 100.0)"
	const qStart, qEnd = 1, 5000
	warm, err := wire.Dial(addr, "seqbench-warmup")
	if err != nil {
		return nil, err
	}
	warmRes, err := warm.Query(query, qStart, qEnd)
	warm.Close()
	if err != nil {
		return nil, err
	}
	rows := len(warmRes.Entries)

	var points []ServerPoint
	for _, n := range conns {
		p, err := serverPoint(addr, n, perConn, query, rows)
		if err != nil {
			return nil, fmt.Errorf("%d conns: %w", n, err)
		}
		p.Workers = workers
		points = append(points, p)
	}
	return points, nil
}

// serverPoint runs one sweep point: n connections, each issuing perConn
// queries back-to-back, plus one appender connection writing throughout.
func serverPoint(addr string, n, perConn int, query string, wantRows int) (ServerPoint, error) {
	type connResult struct {
		lat   []time.Duration
		queue []time.Duration
		err   error
	}
	results := make([]connResult, n)
	var wg sync.WaitGroup

	// Background appender: epoch-advancing writes race the readers, so
	// the sweep measures MVCC the way production would see it. Append
	// positions start far above the base span; each point continues
	// where the last stopped (the daemon path keeps state across
	// points, so ask the server for its end).
	stopAppend := make(chan struct{})
	appendDone := make(chan int, 1)
	ac, err := wire.Dial(addr, "seqbench-appender")
	if err != nil {
		return ServerPoint{}, err
	}
	info, err := ac.Describe("bench")
	if err != nil {
		ac.Close()
		return ServerPoint{}, err
	}
	go func() {
		defer ac.Close()
		count := 0
		pos := info.End + 1
		for {
			select {
			case <-stopAppend:
				appendDone <- count
				return
			default:
			}
			if _, err := ac.Append("bench", pos, appendRecord(info.Fields)); err != nil {
				// A daemon shared across runs may refuse (e.g. dense
				// storage); the sweep is still valid without writes.
				appendDone <- count
				return
			}
			pos++
			count++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	start := time.Now()
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := wire.Dial(addr, fmt.Sprintf("seqbench-%d", i))
			if err != nil {
				results[i].err = err
				return
			}
			defer c.Close()
			for j := 0; j < perConn; j++ {
				qs := time.Now()
				res, err := c.Query(query, 1, 5000)
				if err != nil {
					results[i].err = err
					return
				}
				if len(res.Entries) != wantRows {
					results[i].err = fmt.Errorf("row drift: got %d, want %d", len(res.Entries), wantRows)
					return
				}
				results[i].lat = append(results[i].lat, time.Since(qs))
				results[i].queue = append(results[i].queue, time.Duration(res.QueueNs))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopAppend)
	appends := <-appendDone

	var lat, queue []time.Duration
	for _, r := range results {
		if r.err != nil {
			return ServerPoint{}, r.err
		}
		lat = append(lat, r.lat...)
		queue = append(queue, r.queue...)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })

	// Final epoch from a throwaway turn.
	ec, err := wire.Dial(addr, "seqbench-epoch")
	if err != nil {
		return ServerPoint{}, err
	}
	epoch := ec.Epoch()
	ec.Close()

	return ServerPoint{
		Conns:      n,
		Queries:    len(lat),
		Rows:       wantRows,
		QPS:        float64(len(lat)) / elapsed.Seconds(),
		P50Ms:      millis(percentile(lat, 50)),
		P99Ms:      millis(percentile(lat, 99)),
		MaxMs:      millis(lat[len(lat)-1]),
		QueueP99Ms: millis(percentile(queue, 99)),
		Appends:    appends,
		Epoch:      epoch,
	}, nil
}

// appendRecord builds a record conforming to the bench schema with
// arbitrary values.
func appendRecord(fields []seq.Field) seq.Record {
	rec := make(seq.Record, len(fields))
	for i, f := range fields {
		switch f.Type {
		case seq.TInt:
			rec[i] = seq.Int(1)
		case seq.TFloat:
			rec[i] = seq.Float(1)
		case seq.TString:
			rec[i] = seq.Str("x")
		default:
			rec[i] = seq.Bool(true)
		}
	}
	return rec
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx >= len(sorted) {
		idx = len(sorted)
	}
	if idx == 0 {
		idx = 1
	}
	return sorted[idx-1]
}

func millis(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// RenderServer formats the sweep as a table.
func RenderServer(points []ServerPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-8s %-9s %-9s %-9s %-9s %-10s %-8s %s\n",
		"conns", "queries", "qps", "p50-ms", "p99-ms", "max-ms", "queue99ms", "appends", "epoch")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6d %-8d %-9.0f %-9.2f %-9.2f %-9.2f %-10.2f %-8d %d\n",
			p.Conns, p.Queries, p.QPS, p.P50Ms, p.P99Ms, p.MaxMs, p.QueueP99Ms, p.Appends, p.Epoch)
	}
	b.WriteString("finding: QPS should rise with connections until the worker pool saturates,\n")
	b.WriteString("after which p99 latency grows with queue wait while p50 holds — snapshot\n")
	b.WriteString("isolation keeps readers running at full speed throughout the append stream.\n")
	return b.String()
}
