package experiments

import "testing"

// TestIVMRunCell drives one small benchmark cell in each mode and checks
// the accounting: incremental mode must stitch every (append, view)
// pair — the windows are sized so every append lands inside every view's
// halo — and invalidate mode must do no maintenance at all. Result
// correctness is asserted inside ivmRun (maintained view vs fresh
// recomputation).
func TestIVMRunCell(t *testing.T) {
	const n, nviews, rounds, perRound = 800, 3, 2, 3
	incr, err := ivmRun(n, nviews, rounds, perRound, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := nviews * rounds * perRound; incr.Stitches != want {
		t.Errorf("incremental stitches = %d, want %d (shrink %d inval %d noop %d)",
			incr.Stitches, want, incr.Shrinks, incr.Invalidates, incr.Noops)
	}
	if incr.Invalidates != 0 || incr.Shrinks != 0 {
		t.Errorf("incremental mode degraded: %d invalidates, %d shrinks", incr.Invalidates, incr.Shrinks)
	}
	inval, err := ivmRun(n, nviews, rounds, perRound, false)
	if err != nil {
		t.Fatal(err)
	}
	if inval.Stitches+inval.Shrinks+inval.Invalidates+inval.Noops != 0 {
		t.Errorf("invalidate mode reported maintenance actions: %+v", inval)
	}
	if incr.Appends != rounds*perRound || inval.Appends != rounds*perRound {
		t.Errorf("append counts = %d/%d, want %d", incr.Appends, inval.Appends, rounds*perRound)
	}
}

func BenchmarkIVMCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ivmRun(4000, 10, 3, 5, true); err != nil {
			b.Fatal(err)
		}
	}
}
