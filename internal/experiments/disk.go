package experiments

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/reopt"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/storage/disk"
)

// The durable-tier benchmark (seqbench -disk, BENCH_disk.json) answers
// three questions about the disk subsystem of docs/STORAGE.md:
//
//  1. What does the buffer pool buy? A cold/warm sweep runs the same
//     scans and probes against an empty pool (Checkpoint + DropCaches)
//     and a fully resident one, reporting wall time and the
//     hit/miss/page counters per run.
//  2. Does positional clustering beat an append-friendly layout for
//     sequence access? A dense sequence is stored both ways — the
//     page-file layout (records addressable by position, one page per
//     probe) against an experiments-local LSM-style layout of K sorted
//     append runs whose key ranges overlap (late-arriving records
//     land in whichever run was open). The LSM probe must consult a
//     page per candidate run; the head-to-head measures that read
//     amplification directly.
//  3. Do cold traces calibrate the cost model? EXPLAIN ANALYZE runs
//     over cold disk-backed stores feed a reopt.Calibration; the
//     regressed seq/rand constants are compared against the §4
//     defaults on held-out runs.

// diskBenchPageSize keeps pages small enough that even the quick sweep
// touches hundreds of them.
const diskBenchPageSize = 4096

// diskBenchPoolPages holds the largest sweep resident so the warm
// rounds measure pure pool hits (16 MiB at 4 KiB pages).
const diskBenchPoolPages = 4096

// diskLayoutRuns is K, the sorted-run count of the LSM-style layout.
const diskLayoutRuns = 8

// diskProbeStride scatters probe positions; prime, so the positions are
// distinct for every sweep size used here.
const diskProbeStride = 9973

// DiskPoint is one access pattern of the cold/warm sweep at one size.
// Ns values are per-operation (the whole run for a scan, one probe for
// probes); counters are totals over the run.
type DiskPoint struct {
	N      int64  `json:"n"`
	Access string `json:"access"` // "scan" | "probe"
	Ops    int    `json:"ops"`

	ColdNsPerOp int64 `json:"cold_ns_per_op"`
	WarmNsPerOp int64 `json:"warm_ns_per_op"`
	// Pages is the page touches of one run (sequential for scans,
	// random for probes) — identical cold and warm by construction.
	Pages      int64 `json:"pages"`
	ColdHits   int64 `json:"cold_pool_hits"`
	ColdMisses int64 `json:"cold_pool_misses"`
	WarmHits   int64 `json:"warm_pool_hits"`
	WarmMisses int64 `json:"warm_pool_misses"`
	// WarmSpeedup is cold-ns / warm-ns.
	WarmSpeedup float64 `json:"warm_speedup"`
}

// DiskLayoutPoint is the dense-sequence head-to-head at one size:
// the page-file layout against the K-run LSM-style append layout.
// Page counts are the like-for-like metric; wall times favor the
// experiments-local LSM, which skips the real tier's CRC verification,
// pool bookkeeping, and record decoding.
type DiskLayoutPoint struct {
	N    int64 `json:"n"`
	Runs int   `json:"runs"`
	Ops  int   `json:"ops"`

	PageProbeNsPerOp int64   `json:"page_probe_ns_per_op"`
	LSMProbeNsPerOp  int64   `json:"lsm_probe_ns_per_op"`
	PageProbePages   float64 `json:"page_probe_pages_per_op"`
	LSMProbePages    float64 `json:"lsm_probe_pages_per_op"`
	// ProbeReadAmp is LSM pages-per-probe over page-file
	// pages-per-probe — the read amplification positional clustering
	// avoids.
	ProbeReadAmp float64 `json:"probe_read_amp"`

	PageScanNs    int64 `json:"page_scan_ns"`
	LSMScanNs     int64 `json:"lsm_scan_ns"`
	PageScanPages int64 `json:"page_scan_pages"`
	LSMScanPages  int64 `json:"lsm_scan_pages"`
}

// DiskCalibration is the cold-trace calibration round: constants
// regressed from EXPLAIN ANALYZE runs over cold disk-backed stores,
// with the per-operator predicted-vs-actual error of the defaults and
// the regressed set on held-out runs (same methodology as the -reopt
// calibration, see ReoptCalibration).
type DiskCalibration struct {
	Samples       int64              `json:"samples"`
	Defaults      map[string]float64 `json:"default_constants"`
	Constants     map[string]float64 `json:"constants"`
	DefaultErr    float64            `json:"default_rel_err"`
	CalibratedErr float64            `json:"calibrated_rel_err"`
	Improved      bool               `json:"improved"`
}

// DiskBench is the BENCH_disk.json artifact.
type DiskBench struct {
	PageSize    int               `json:"page_size"`
	PoolPages   int               `json:"pool_pages"`
	Quick       bool              `json:"quick"`
	Sweep       []DiskPoint       `json:"cold_warm_sweep"`
	Layout      []DiskLayoutPoint `json:"layout_head_to_head"`
	Calibration *DiskCalibration  `json:"calibration"`
}

// diskBenchConfig is every benchmark database's configuration: small
// pages, a pool that holds the working set, no background checkpointer
// (the sweeps checkpoint explicitly to make DropCaches total).
func diskBenchConfig() disk.Config {
	return disk.Config{
		PageSize:           diskBenchPageSize,
		PoolPages:          diskBenchPoolPages,
		CheckpointInterval: -1,
	}
}

// diskDenseData builds n dense records at positions 1..n with one
// float column (reoptCloseSchema).
func diskDenseData(n int64) (*seq.Materialized, error) {
	entries := make([]seq.Entry, n)
	for i := range entries {
		p := int64(i) + 1
		entries[i] = seq.Entry{Pos: seq.Pos(p), Rec: seq.Record{seq.Float(float64(p%97) + 0.25)}}
	}
	return seq.NewMaterialized(reoptCloseSchema, entries)
}

// diskProbePositions returns ops distinct scattered positions in
// [1, n].
func diskProbePositions(n int64, ops int) []seq.Pos {
	ps := make([]seq.Pos, ops)
	for i := range ps {
		ps[i] = seq.Pos(1 + (int64(i)*diskProbeStride)%n)
	}
	return ps
}

// diskCold forces the next run to read from the page files: every
// dirty frame is checkpointed out, then every clean frame is dropped.
func diskCold(db *disk.DB) error {
	if err := db.Checkpoint(); err != nil {
		return err
	}
	db.DropCaches()
	return nil
}

// DiskSweep measures cold-vs-warm scans and probes per size.
func DiskSweep(quick bool) ([]DiskPoint, error) {
	sizes, ops := diskSizes(quick)
	var out []DiskPoint
	for _, n := range sizes {
		pts, err := diskSweepOne(n, ops)
		if err != nil {
			return nil, fmt.Errorf("disk sweep n=%d: %w", n, err)
		}
		out = append(out, pts...)
	}
	return out, nil
}

func diskSizes(quick bool) ([]int64, int) {
	if quick {
		return []int64{5_000}, 64
	}
	return []int64{50_000, 200_000}, 512
}

func diskSweepOne(n int64, ops int) ([]DiskPoint, error) {
	dir, err := os.MkdirTemp("", "seqbench-disk-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := disk.Open(dir, diskBenchConfig())
	if err != nil {
		return nil, err
	}
	defer db.Close()
	data, err := diskDenseData(n)
	if err != nil {
		return nil, err
	}
	if err := db.CreateSequence("d", data, storage.KindDense); err != nil {
		return nil, err
	}
	ds, ok := db.Seq("d")
	if !ok {
		return nil, fmt.Errorf("sequence vanished after create")
	}
	stats := &storage.Stats{}
	st := ds.Latest().Fork(stats)
	span := seq.NewSpan(1, seq.Pos(n))

	scan := func() error {
		rows, err := drainCursor(st.Scan(span))
		if err != nil {
			return err
		}
		if rows != n {
			return fmt.Errorf("scan returned %d of %d records", rows, n)
		}
		return nil
	}
	positions := diskProbePositions(n, ops)
	probe := func() error {
		for _, p := range positions {
			if _, err := st.Probe(p); err != nil {
				return err
			}
		}
		return nil
	}

	var out []DiskPoint
	for _, a := range []struct {
		access string
		ops    int
		run    func() error
	}{{"scan", 1, scan}, {"probe", ops, probe}} {
		pt := DiskPoint{N: n, Access: a.access, Ops: a.ops}
		if err := diskCold(db); err != nil {
			return nil, err
		}
		stats.SnapshotAndReset()
		coldNs, err := timeRun(a.run)
		if err != nil {
			return nil, err
		}
		cold := stats.SnapshotAndReset()
		// The cold run left the pool resident: measure warm directly.
		warmNs, err := timeRun(a.run)
		if err != nil {
			return nil, err
		}
		warm := stats.SnapshotAndReset()
		pt.ColdNsPerOp = coldNs / int64(a.ops)
		pt.WarmNsPerOp = warmNs / int64(a.ops)
		pt.Pages = warm.Pages()
		pt.ColdHits, pt.ColdMisses = cold.PoolHits, cold.PoolMisses
		pt.WarmHits, pt.WarmMisses = warm.PoolHits, warm.PoolMisses
		if warmNs > 0 {
			pt.WarmSpeedup = float64(coldNs) / float64(warmNs)
		}
		out = append(out, pt)
	}
	return out, nil
}

// drainCursor counts a cursor's entries without retaining them, so
// timed scans measure page delivery, not result allocation.
func drainCursor(c seq.Cursor) (int64, error) {
	defer c.Close()
	var rows int64
	for {
		if _, _, ok := c.Next(); !ok {
			break
		}
		rows++
	}
	return rows, c.Err()
}

func timeRun(fn func() error) (int64, error) {
	start := time.Now()
	if err := fn(); err != nil {
		return 0, err
	}
	return time.Since(start).Nanoseconds(), nil
}

// ---- LSM-style append layout (experiments-local) ----

// lsmRecSize is the fixed on-disk record: position int64 + value
// float64, both big-endian.
const lsmRecSize = 16

// lsmRun is one sorted run file with in-memory fence pointers (the
// first position of each page), the standard per-run index an LSM
// keeps so a point lookup costs one page read per candidate run.
type lsmRun struct {
	f     *os.File
	fence []seq.Pos
	count []int // records per page
}

// lsmLayout stores a sequence as K sorted append runs whose position
// ranges overlap — the shape an append-optimized store settles into
// when records arrive out of position order and compaction hasn't
// caught up. Probes and scans count real page reads (os.File.ReadAt).
type lsmLayout struct {
	runs    []*lsmRun
	perPage int
	reads   int64 // page reads since last takeReads
}

// buildLSM writes n dense records into K overlapping sorted runs:
// record at position p lands in run (p-1) mod K, so every run spans
// the whole position range.
func buildLSM(dir string, n int64, k, pageSize int) (*lsmLayout, error) {
	perPage := pageSize / lsmRecSize
	l := &lsmLayout{perPage: perPage}
	for r := 0; r < k; r++ {
		var recs []seq.Pos
		for p := int64(r + 1); p <= n; p += int64(k) {
			recs = append(recs, seq.Pos(p))
		}
		run := &lsmRun{}
		buf := make([]byte, 0, ((len(recs)+perPage-1)/perPage)*pageSize)
		for i, p := range recs {
			if i%perPage == 0 {
				run.fence = append(run.fence, p)
				run.count = append(run.count, 0)
			}
			run.count[len(run.count)-1]++
			var rec [lsmRecSize]byte
			binary.BigEndian.PutUint64(rec[:8], uint64(p))
			binary.BigEndian.PutUint64(rec[8:], math.Float64bits(float64(int64(p)%97)+0.25))
			buf = append(buf, rec[:]...)
			if (i+1)%perPage == 0 || i == len(recs)-1 {
				// Pad the page out to pageSize.
				pad := pageSize - (run.count[len(run.count)-1] * lsmRecSize)
				buf = append(buf, make([]byte, pad)...)
			}
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("run-%d.seg", r)))
		if err != nil {
			return nil, err
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return nil, err
		}
		run.f = f
		l.runs = append(l.runs, run)
	}
	return l, nil
}

func (l *lsmLayout) close() {
	for _, r := range l.runs {
		r.f.Close()
	}
}

func (l *lsmLayout) takeReads() int64 {
	n := l.reads
	l.reads = 0
	return n
}

// readPage reads page pi of run r, counting the read.
func (l *lsmLayout) readPage(r *lsmRun, pi int, buf []byte) ([]byte, error) {
	pageSize := l.perPage * lsmRecSize
	l.reads++
	if _, err := r.f.ReadAt(buf[:pageSize], int64(pi)*int64(pageSize)); err != nil {
		return nil, err
	}
	return buf[:r.count[pi]*lsmRecSize], nil
}

// probe finds pos: every run's fence pointers nominate a candidate
// page, and because run ranges overlap, absence is only learned by
// reading the page — the LSM read amplification.
func (l *lsmLayout) probe(pos seq.Pos, buf []byte) (float64, error) {
	for _, r := range l.runs {
		pi := sort.Search(len(r.fence), func(i int) bool { return r.fence[i] > pos }) - 1
		if pi < 0 {
			continue
		}
		page, err := l.readPage(r, pi, buf)
		if err != nil {
			return 0, err
		}
		// Records in a page are sorted: binary search.
		lo, hi := 0, r.count[pi]-1
		for lo <= hi {
			mid := (lo + hi) / 2
			p := seq.Pos(binary.BigEndian.Uint64(page[mid*lsmRecSize:]))
			switch {
			case p == pos:
				return math.Float64frombits(binary.BigEndian.Uint64(page[mid*lsmRecSize+8:])), nil
			case p < pos:
				lo = mid + 1
			default:
				hi = mid - 1
			}
		}
	}
	return 0, fmt.Errorf("lsm: position %d not found", pos)
}

// scan merges all runs in position order, reading each run's pages
// sequentially but interleaved across the K files.
func (l *lsmLayout) scan() (int64, error) {
	type cursor struct {
		run     *lsmRun
		page    []byte
		pi, ri  int
		current seq.Pos
		done    bool
	}
	pageSize := l.perPage * lsmRecSize
	var cs []*cursor
	for _, r := range l.runs {
		c := &cursor{run: r, page: make([]byte, pageSize)}
		if len(r.fence) == 0 {
			c.done = true
		} else {
			page, err := l.readPage(r, 0, c.page)
			if err != nil {
				return 0, err
			}
			c.page = c.page[:cap(c.page)]
			c.current = seq.Pos(binary.BigEndian.Uint64(page))
		}
		cs = append(cs, c)
	}
	var rows int64
	for {
		var best *cursor
		for _, c := range cs {
			if !c.done && (best == nil || c.current < best.current) {
				best = c
			}
		}
		if best == nil {
			return rows, nil
		}
		rows++
		best.ri++
		if best.ri == best.run.count[best.pi] {
			best.ri = 0
			best.pi++
			if best.pi == len(best.run.fence) {
				best.done = true
				continue
			}
			if _, err := l.readPage(best.run, best.pi, best.page); err != nil {
				return 0, err
			}
		}
		best.current = seq.Pos(binary.BigEndian.Uint64(best.page[best.ri*lsmRecSize:]))
	}
}

// DiskLayoutSweep runs the dense-sequence head-to-head per size.
func DiskLayoutSweep(quick bool) ([]DiskLayoutPoint, error) {
	sizes, ops := diskSizes(quick)
	var out []DiskLayoutPoint
	for _, n := range sizes {
		pt, err := diskLayoutOne(n, ops)
		if err != nil {
			return nil, fmt.Errorf("disk layout n=%d: %w", n, err)
		}
		out = append(out, *pt)
	}
	return out, nil
}

func diskLayoutOne(n int64, ops int) (*DiskLayoutPoint, error) {
	dir, err := os.MkdirTemp("", "seqbench-lsm-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Page-file side: the real disk tier, probed and scanned cold.
	db, err := disk.Open(filepath.Join(dir, "pagefile"), diskBenchConfig())
	if err != nil {
		return nil, err
	}
	defer db.Close()
	data, err := diskDenseData(n)
	if err != nil {
		return nil, err
	}
	if err := db.CreateSequence("d", data, storage.KindDense); err != nil {
		return nil, err
	}
	ds, _ := db.Seq("d")
	stats := &storage.Stats{}
	st := ds.Latest().Fork(stats)
	positions := diskProbePositions(n, ops)

	pt := &DiskLayoutPoint{N: n, Runs: diskLayoutRuns, Ops: ops}
	if err := diskCold(db); err != nil {
		return nil, err
	}
	stats.SnapshotAndReset()
	probeNs, err := timeRun(func() error {
		for _, p := range positions {
			if _, err := st.Probe(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	snap := stats.SnapshotAndReset()
	pt.PageProbeNsPerOp = probeNs / int64(ops)
	pt.PageProbePages = float64(snap.RandPages) / float64(ops)

	if err := diskCold(db); err != nil {
		return nil, err
	}
	stats.SnapshotAndReset()
	pt.PageScanNs, err = timeRun(func() error {
		_, err := drainCursor(st.Scan(seq.NewSpan(1, seq.Pos(n))))
		return err
	})
	if err != nil {
		return nil, err
	}
	pt.PageScanPages = stats.SnapshotAndReset().Pages()

	// LSM side: same records in K overlapping sorted append runs.
	lsm, err := buildLSM(dir, n, diskLayoutRuns, diskBenchPageSize)
	if err != nil {
		return nil, err
	}
	defer lsm.close()
	buf := make([]byte, diskBenchPageSize)
	lsmProbeNs, err := timeRun(func() error {
		for _, p := range positions {
			if _, err := lsm.probe(p, buf); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pt.LSMProbeNsPerOp = lsmProbeNs / int64(ops)
	pt.LSMProbePages = float64(lsm.takeReads()) / float64(ops)

	var rows int64
	pt.LSMScanNs, err = timeRun(func() error {
		rows, err = lsm.scan()
		return err
	})
	if err != nil {
		return nil, err
	}
	if rows != n {
		return nil, fmt.Errorf("lsm scan merged %d of %d records", rows, n)
	}
	pt.LSMScanPages = lsm.takeReads()
	if pt.PageProbePages > 0 {
		pt.ProbeReadAmp = pt.LSMProbePages / pt.PageProbePages
	}
	return pt, nil
}

// ---- cold-trace calibration ----

// diskCalShapes builds the calibration workloads over a disk-backed
// database: a full scan, a selection, a window aggregate, and a
// sparse-over-dense compose whose right leg is probed. Each shape
// contributes the counter-bearing nodes of its metrics tree as
// regression samples.
func diskCalShapes(db *disk.DB, n int64) (map[string]func() (*algebra.Node, error), error) {
	mk := func(name string, data *seq.Materialized, kind storage.Kind) (storage.Store, error) {
		if err := db.CreateSequence(name, data, kind); err != nil {
			return nil, err
		}
		ds, ok := db.Seq(name)
		if !ok {
			return nil, fmt.Errorf("sequence %q vanished after create", name)
		}
		return ds.Latest().Fork(&storage.Stats{}), nil
	}
	dense, err := diskDenseData(n)
	if err != nil {
		return nil, err
	}
	dst, err := mk(fmt.Sprintf("dense%d", n), dense, storage.KindDense)
	if err != nil {
		return nil, err
	}
	// The sparse left leg is thin enough (1/512) that composing it
	// against the dense leg prices probing below streaming — so the
	// compose trace carries real random-page I/O into the regression.
	var ses []seq.Entry
	for p := int64(1); p <= n; p += 512 {
		ses = append(ses, seq.Entry{Pos: seq.Pos(p), Rec: seq.Record{seq.Float(float64(p%89) + 0.5)}})
	}
	sparse, err := seq.NewMaterialized(reoptCloseSchema, ses)
	if err != nil {
		return nil, err
	}
	sst, err := mk(fmt.Sprintf("sparse%d", n), sparse, storage.KindSparse)
	if err != nil {
		return nil, err
	}

	denseBase := func() *algebra.Node { return algebra.Base("d", dst) }
	return map[string]func() (*algebra.Node, error){
		"scan": func() (*algebra.Node, error) { return denseBase(), nil },
		"select": func() (*algebra.Node, error) {
			c, err := expr.NewCol(reoptCloseSchema, "close")
			if err != nil {
				return nil, err
			}
			return algebra.Select(denseBase(), mustGt(c, 48))
		},
		"agg": func() (*algebra.Node, error) {
			return algebra.AggCol(denseBase(), algebra.AggSum, "close", algebra.Window{Lo: -7, Hi: 0}, "wsum")
		},
		"compose": func() (*algebra.Node, error) {
			left := algebra.Base("s", sst)
			right := denseBase()
			schema, err := algebra.ComposeSchema(left, right, "l", "r")
			if err != nil {
				return nil, err
			}
			lc, err := expr.NewCol(schema, "l.close")
			if err != nil {
				return nil, err
			}
			rc, err := expr.NewCol(schema, "r.close")
			if err != nil {
				return nil, err
			}
			pred, err := expr.NewBin(expr.OpLe, lc, rc)
			if err != nil {
				return nil, err
			}
			return algebra.Compose(left, right, pred, "l", "r")
		},
	}, nil
}

func mustGt(c expr.Expr, v float64) expr.Expr {
	e, err := expr.NewBin(expr.OpGt, c, expr.Literal(seq.Float(v)))
	if err != nil {
		panic(err)
	}
	return e
}

// DiskCalibrationRound regresses cost constants from cold-cache
// EXPLAIN ANALYZE traces and scores them against the defaults on a
// held-out cold round (the reopt methodology over real disk I/O).
func DiskCalibrationRound(quick bool) (*DiskCalibration, error) {
	sizes := []int64{30_000, 120_000}
	if quick {
		sizes = []int64{2_000, 6_000}
	}
	dir, err := os.MkdirTemp("", "seqbench-diskcal-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := disk.Open(dir, diskBenchConfig())
	if err != nil {
		return nil, err
	}
	defer db.Close()

	type shape struct {
		name  string
		n     int64
		build func() (*algebra.Node, error)
	}
	var shapes []shape
	for _, n := range sizes {
		byName, err := diskCalShapes(db, n)
		if err != nil {
			return nil, err
		}
		names := make([]string, 0, len(byName))
		for name := range byName {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			shapes = append(shapes, shape{name: name, n: n, build: byName[name]})
		}
	}

	run := func(s shape, opts core.Options) (*core.Analysis, error) {
		root, err := s.build()
		if err != nil {
			return nil, fmt.Errorf("%s/%d: %w", s.name, s.n, err)
		}
		res, err := core.Optimize(root, seq.NewSpan(1, seq.Pos(s.n)), opts)
		if err != nil {
			return nil, fmt.Errorf("%s/%d: %w", s.name, s.n, err)
		}
		if err := diskCold(db); err != nil {
			return nil, err
		}
		a, err := res.RunAnalyze()
		if err != nil {
			return nil, fmt.Errorf("%s/%d: %w", s.name, s.n, err)
		}
		return a, nil
	}

	cal := &reopt.Calibration{}
	for _, s := range shapes {
		a, err := run(s, core.Options{})
		if err != nil {
			return nil, err
		}
		cal.Observe(a.Root)
	}
	k, ok := cal.Constants()
	if !ok {
		return nil, fmt.Errorf("disk calibration underdetermined after %d samples", cal.Samples())
	}

	// Held-out round: fresh cold runs, both constant sets priced
	// against the same traces.
	defaults := core.DefaultCostParams()
	var defPred, defAct, calPred, calAct []float64
	for _, s := range shapes {
		a, err := run(s, core.Options{Calibration: cal})
		if err != nil {
			return nil, err
		}
		nodeFit(a.Root, defaults, &defPred, &defAct)
		nodeFit(a.Root, a.Params, &calPred, &calAct)
	}

	out := &DiskCalibration{
		Samples:   k.Samples,
		Constants: k.Map(),
		Defaults: map[string]float64{
			"rand_page":    defaults.RandPage,
			"per_record":   defaults.PerRecord,
			"cache_access": defaults.CacheAccess,
		},
		DefaultErr:    scaledRelErr(defPred, defAct),
		CalibratedErr: scaledRelErr(calPred, calAct),
	}
	out.Improved = out.CalibratedErr < out.DefaultErr
	return out, nil
}

// DiskBenchmark runs the full -disk artifact.
func DiskBenchmark(quick bool) (*DiskBench, error) {
	sweep, err := DiskSweep(quick)
	if err != nil {
		return nil, err
	}
	layout, err := DiskLayoutSweep(quick)
	if err != nil {
		return nil, err
	}
	cal, err := DiskCalibrationRound(quick)
	if err != nil {
		return nil, err
	}
	return &DiskBench{
		PageSize:    diskBenchPageSize,
		PoolPages:   diskBenchPoolPages,
		Quick:       quick,
		Sweep:       sweep,
		Layout:      layout,
		Calibration: cal,
	}, nil
}

// RenderDisk formats the artifact as the table seqbench prints next to
// the JSON.
func RenderDisk(b *DiskBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cold vs warm (page size %d, pool %d pages)\n", b.PageSize, b.PoolPages)
	fmt.Fprintf(&sb, "%-9s %-6s %-6s %-12s %-12s %-8s %-8s %-8s %s\n",
		"n", "access", "ops", "cold-ns/op", "warm-ns/op", "pages", "misses", "hits", "speedup")
	for _, p := range b.Sweep {
		fmt.Fprintf(&sb, "%-9d %-6s %-6d %-12d %-12d %-8d %-8d %-8d %.1f\n",
			p.N, p.Access, p.Ops, p.ColdNsPerOp, p.WarmNsPerOp, p.Pages, p.ColdMisses, p.WarmHits, p.WarmSpeedup)
	}
	fmt.Fprintf(&sb, "layout head-to-head: page file vs %d-run LSM-style append layout\n", diskLayoutRuns)
	fmt.Fprintf(&sb, "%-9s %-14s %-14s %-10s %-10s %-9s %-12s %s\n",
		"n", "page-probe-ns", "lsm-probe-ns", "pg-pages", "lsm-pages", "read-amp", "page-scan-ns", "lsm-scan-ns")
	for _, p := range b.Layout {
		fmt.Fprintf(&sb, "%-9d %-14d %-14d %-10.2f %-10.2f %-9.2f %-12d %d\n",
			p.N, p.PageProbeNsPerOp, p.LSMProbeNsPerOp, p.PageProbePages, p.LSMProbePages,
			p.ProbeReadAmp, p.PageScanNs, p.LSMScanNs)
	}
	c := b.Calibration
	fmt.Fprintf(&sb, "cold-trace calibration: %d samples, rel-err %.3f -> %.3f (improved=%v)\n",
		c.Samples, c.DefaultErr, c.CalibratedErr, c.Improved)
	keys := make([]string, 0, len(c.Constants))
	for k := range c.Constants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-14s %.6g", k, c.Constants[k])
		if d, ok := c.Defaults[k]; ok {
			fmt.Fprintf(&sb, " (default %.6g)", d)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
