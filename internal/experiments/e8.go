package experiments

import (
	"fmt"
	"time"

	seqproc "repro"
	"repro/internal/rewrite"
)

// E8 is the rewrite ablation (§3.1): the same query optimized with rule
// groups disabled one at a time. The paper proposes the transformations
// as a heuristic ("it is a good heuristic to propagate selections,
// projections and positional offsets as far down the query graph as
// possible") without measurements; the reproducible claims are that
// every transformation preserves semantics exactly (identical answers in
// every ablation), that offset push-down merges query blocks (visible in
// the block counts), and that rewriting never worsens page accesses.
// Wall-clock effects are modest on scanning plans — early filtering
// saves per-record CPU, not page I/O — and are reported informationally.
func E8() (*Table, error) { return e8(40) }

// E8Quick is E8 at test sizes.
func E8Quick() (*Table, error) { return e8(4) }

func e8(scale int64) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "rewrite-rule ablation on a mixed query",
		Claim: "transformations preserve semantics exactly; offset push-down merges blocks; pages never get worse",
		Header: []string{
			"rules", "fired", "blocks", "est_cost", "pages", "opt_ms", "run_ms", "answers",
		},
	}
	// A query exercising all rule families: a selection with one-sided
	// factors above a three-way join below an offset, and a narrow
	// projection on top.
	const query = `project(
	    select(offset(compose(dec, compose(ibm, hp) as ih), -3),
	           ibm.close > hp.close and dec.close > 103.0),
	    dec.close)`

	configs := []struct {
		label string
		opts  func() seqproc.Options
	}{
		{"all", func() seqproc.Options { return seqproc.Options{} }},
		{"no-selects", func() seqproc.Options { return seqproc.Options{Rules: rewrite.RulesExcept("selects")} }},
		{"no-projects", func() seqproc.Options { return seqproc.Options{Rules: rewrite.RulesExcept("projects")} }},
		{"no-offsets", func() seqproc.Options { return seqproc.Options{Rules: rewrite.RulesExcept("offsets")} }},
		{"none", func() seqproc.Options { return seqproc.Options{DisableRewrites: true} }},
	}

	span := seqproc.NewSpan(1, 750*scale)
	var answers []int
	var fullRun, noneRun time.Duration
	var fullPages, nonePages int64
	for _, cfg := range configs {
		db, err := table1DB(scale)
		if err != nil {
			return nil, err
		}
		db.SetOptions(cfg.opts())
		q, err := db.Query(query)
		if err != nil {
			return nil, err
		}
		optStart := time.Now()
		stats, err := q.Stats(span)
		if err != nil {
			return nil, err
		}
		optTime := time.Since(optStart)
		estCost, _, err := q.EstimatedCost(span)
		if err != nil {
			return nil, err
		}
		// Pages are deterministic: count them on one run. Timings at the
		// millisecond scale are noisy: take the best of several runs.
		db.ResetPageStats()
		var res *seqproc.ResultSet
		var runTime time.Duration
		var pages int64
		for rep := 0; rep < 5; rep++ {
			runStart := time.Now()
			r, err := q.Run(span)
			if err != nil {
				return nil, err
			}
			if d := time.Since(runStart); rep == 0 || d < runTime {
				runTime = d
			}
			if rep == 0 {
				res = r
				for _, name := range db.Sequences() {
					st, _ := db.TakePageStats(name)
					pages += st.Pages()
				}
			}
		}
		answers = append(answers, res.Count())
		switch cfg.label {
		case "all":
			fullRun, fullPages = runTime, pages
		case "none":
			noneRun, nonePages = runTime, pages
		}
		t.Rows = append(t.Rows, []string{
			cfg.label,
			itoa(int64(stats.RulesFired)),
			itoa(int64(stats.BlocksOptimized)),
			fmt.Sprintf("%.0f", estCost),
			itoa(pages),
			ms(optTime), ms(runTime),
			itoa(int64(res.Count())),
		})
	}
	for _, a := range answers[1:] {
		if a != answers[0] {
			return nil, fmt.Errorf("e8: ablations disagree on answers: %v", answers)
		}
	}
	switch {
	case fullPages > nonePages:
		t.Finding = "MISMATCH: full rewriting accessed more pages than no rewriting"
	default:
		// Cost *estimates* are not comparable across differently
		// rewritten trees (densities are estimated at different places),
		// and wall-clock differences at this scale are CPU noise; the
		// deterministic observables are answer identity and pages.
		t.Finding = fmt.Sprintf("identical answers in every ablation; pages %d rewritten vs %d unrewritten; run time %s vs %s ms (CPU effect, informational)",
			fullPages, nonePages, ms(fullRun), ms(noneRun))
	}
	return t, nil
}
