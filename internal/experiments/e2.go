package experiments

import (
	"fmt"
	"time"

	seqproc "repro"
	"repro/internal/exec"
)

// E2 reproduces Table 1 / Figure 3: bidirectional span propagation.
//
// The query joins DEC [1,350]·s with the join of IBM [200,500]·s and HP
// [1,750]·s (Table 1 spans, scaled). With span propagation the optimizer
// restricts every base access to the intersection [200,350]·s; without
// it (the Figure 3.A plan) each input is scanned over its full valid
// range. The claim: pages touched drop roughly in proportion to the span
// reduction, identical answers.
func E2() (*Table, error) { return e2([]int64{10, 40, 160}) }

// E2Quick is E2 at test sizes.
func E2Quick() (*Table, error) { return e2([]int64{4}) }

func e2(scales []int64) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "span propagation on the Table 1 stock sequences",
		Claim: "restricting spans to the intersection [200,350] cuts base-sequence pages proportionally",
		Header: []string{
			"scale", "span_all", "span_used", "answers",
			"pages_noprop", "ms_noprop", "pages_prop", "ms_prop", "page_ratio",
		},
	}
	const query = "project(compose(dec, select(compose(ibm, hp), ibm.close > hp.close) as ih), dec.close)"
	var worst float64 = 1e9
	for _, scale := range scales {
		run := func(disable bool) (int64, int, time.Duration, error) {
			db, err := table1DB(scale)
			if err != nil {
				return 0, 0, 0, err
			}
			// Force lock-step joins in both configurations: Figure 3
			// contrasts *scanning* plans (3.A scans full valid ranges,
			// 3.B the restricted ones). Probe-based strategies would
			// blur the contrast because probes are position-targeted
			// whether or not spans were propagated.
			lock := exec.ComposeLockStep
			db.SetOptions(seqproc.Options{
				DisableSpanPropagation: disable,
				ForceComposeStrategy:   &lock,
			})
			q, err := db.Query(query)
			if err != nil {
				return 0, 0, 0, err
			}
			db.ResetPageStats()
			start := time.Now()
			res, err := q.Run(seqproc.NewSpan(1, 750*scale))
			if err != nil {
				return 0, 0, 0, err
			}
			elapsed := time.Since(start)
			var pages int64
			for _, name := range db.Sequences() {
				st, err := db.TakePageStats(name)
				if err != nil {
					return 0, 0, 0, err
				}
				pages += st.Pages()
			}
			return pages, res.Count(), elapsed, nil
		}
		pagesNo, countNo, timeNo, err := run(true)
		if err != nil {
			return nil, err
		}
		pagesYes, countYes, timeYes, err := run(false)
		if err != nil {
			return nil, err
		}
		if countNo != countYes {
			return nil, fmt.Errorf("e2: answers differ with/without span propagation: %d vs %d", countNo, countYes)
		}
		r := float64(pagesNo) / float64(max64(pagesYes, 1))
		if r < worst {
			worst = r
		}
		t.Rows = append(t.Rows, []string{
			itoa(scale),
			fmt.Sprintf("[1, %d]", 750*scale),
			fmt.Sprintf("[%d, %d]", 200*scale, 350*scale),
			itoa(int64(countYes)),
			itoa(pagesNo), ms(timeNo),
			itoa(pagesYes), ms(timeYes),
			ratio(float64(pagesNo), float64(pagesYes)),
		})
	}
	if worst > 1.2 {
		t.Finding = fmt.Sprintf("span propagation reduced pages at every scale (worst ratio %.1fx): matches Figure 3", worst)
	} else {
		t.Finding = "MISMATCH: span propagation did not reduce page accesses"
	}
	return t, nil
}

// table1DB loads the Table 1 sequences at the given scale.
func table1DB(scale int64) (*seqproc.DB, error) {
	db := seqproc.New()
	// Mixed representations: dense for the fully dense HP, sparse for
	// the gappy IBM and DEC — matching how a system would store them.
	ibm, dec, hp, err := workloadTable1(scale)
	if err != nil {
		return nil, err
	}
	if err := db.CreateSequence("ibm", ibm, seqproc.Sparse); err != nil {
		return nil, err
	}
	if err := db.CreateSequence("dec", dec, seqproc.Sparse); err != nil {
		return nil, err
	}
	if err := db.CreateSequence("hp", hp, seqproc.Dense); err != nil {
		return nil, err
	}
	return db, nil
}
