package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/workload"

	"repro/internal/algebra"
)

// E7 reproduces Theorem 3.1 / Definition 3.2: the stream-access
// property. A pipeline with sequential fixed-size (effective) scopes —
// previous over a filtered positional join, feeding a trailing-window
// sum — is evaluated over growing inputs. The claim: the evaluation is
// cache-finite (peak operator-cache residency is a constant independent
// of input size) and performs a single scan (time grows linearly).
func E7() (*Table, error) { return e7([]int64{10_000, 40_000, 160_000, 640_000}, 16) }

// E7Quick is E7 at test sizes.
func E7Quick() (*Table, error) { return e7([]int64{2_000, 8_000}, 8) }

func e7(sizes []int64, window int64) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "cache-finiteness of stream-access evaluation",
		Claim: "caches sized by operator scopes: peak residency constant in input length, runtime linear",
		Header: []string{
			"n", "records_out", "peak_cache_slots", "ms", "ns_per_pos",
		},
	}
	const src = "sum(prev(select(compose(a, b), a.close > b.close)), a.close, %d)"
	var peaks []int
	var perPos []float64
	for _, n := range sizes {
		span := seq.NewSpan(1, n)
		a, err := workload.Stock(workload.StockConfig{Name: "a", Span: span, Density: 0.9, Seed: 41})
		if err != nil {
			return nil, err
		}
		b, err := workload.Stock(workload.StockConfig{Name: "b", Span: span, Density: 0.9, Seed: 42})
		if err != nil {
			return nil, err
		}
		sa, err := storage.FromMaterialized(a, storage.KindSparse, 0)
		if err != nil {
			return nil, err
		}
		sb, err := storage.FromMaterialized(b, storage.KindSparse, 0)
		if err != nil {
			return nil, err
		}
		cat := parser.CatalogFunc(func(name string) (*algebra.Node, bool) {
			switch name {
			case "a":
				return algebra.Base("a", sa), true
			case "b":
				return algebra.Base("b", sb), true
			}
			return nil, false
		})
		q, err := parser.Bind(fmt.Sprintf(src, window), cat)
		if err != nil {
			return nil, err
		}
		// Cache-Strategy-A uses the FIFO caches this experiment counts.
		res, err := core.Optimize(q, span, core.Options{DisableSlidingAggregates: true})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		out, err := res.Run()
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		peak := exec.PeakCacheResidency(res.Plan)
		peaks = append(peaks, peak)
		npp := float64(elapsed.Nanoseconds()) / float64(n)
		perPos = append(perPos, npp)
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(int64(out.Count())), itoa(int64(peak)),
			ms(elapsed), fmt.Sprintf("%.0f", npp),
		})
	}
	constant := true
	for _, p := range peaks[1:] {
		if p != peaks[0] {
			constant = false
		}
	}
	linear := perPos[len(perPos)-1] < perPos[0]*3
	switch {
	case constant && linear:
		t.Finding = fmt.Sprintf("peak cache residency is %d slots at every size and per-position time is flat: the plan is cache-finite with a single scan (Theorem 3.1)", peaks[0])
	case constant:
		t.Finding = "caches stayed constant but runtime grew super-linearly"
	default:
		t.Finding = "MISMATCH: cache residency grew with input size"
	}
	return t, nil
}
