package experiments

import (
	"strings"
	"testing"
)

// Each experiment's Quick variant must run, produce rows, and report a
// finding that matches the paper's claim (no "MISMATCH").
func TestQuickExperimentsMatchClaims(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Quick()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: no rows", e.ID)
			}
			if strings.Contains(tbl.Finding, "MISMATCH") {
				t.Errorf("%s: %s\n%s", e.ID, tbl.Finding, tbl.Render())
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("%s: ragged row %v", e.ID, row)
				}
			}
			out := tbl.Render()
			if !strings.Contains(out, tbl.ID) || !strings.Contains(out, "claim:") {
				t.Errorf("%s: render missing metadata:\n%s", e.ID, out)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e1"); !ok {
		t.Error("e1 must exist")
	}
	if _, ok := Lookup("e99"); ok {
		t.Error("e99 must not exist")
	}
	if len(All()) != 8 {
		t.Errorf("experiments = %d, want 8", len(All()))
	}
}
