package experiments

import (
	"fmt"
	"strings"

	seqproc "repro"
	"repro/internal/exec"
	"repro/internal/seq"
	"repro/internal/workload"
)

// Analyze runs a representative query of the experiment under EXPLAIN
// ANALYZE and returns the per-node predicted-vs-actual report (see
// OBSERVABILITY.md). Where the experiment compares strategies, every
// strategy is analyzed — E3 shows all three compose strategies plus the
// optimizer's own pick, E4/E5 show the naive and cached evaluators —
// so the page-access difference the experiment measures is visible
// operator by operator.
func Analyze(id string, quick bool) (string, error) {
	f, ok := analyzers[strings.ToLower(id)]
	if !ok {
		return "", fmt.Errorf("experiments: no analyzer for %q", id)
	}
	return f(quick)
}

var analyzers = map[string]func(quick bool) (string, error){
	"e1": analyzeE1,
	"e2": analyzeE2,
	"e3": analyzeE3,
	"e4": analyzeE4,
	"e5": analyzeE5,
	"e6": analyzeE6,
	"e7": analyzeE7,
	"e8": analyzeE8,
}

// section renders one analyzed variant with a heading.
func section(b *strings.Builder, label string, db *seqproc.DB, query string, span seqproc.Span) error {
	q, err := db.Query(query)
	if err != nil {
		return err
	}
	text, err := q.ExplainAnalyze(span)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "-- %s --\n%s\n%s\n\n", label, query, text)
	return nil
}

func analyzeE1(quick bool) (string, error) {
	n := 4000
	if quick {
		n = 500
	}
	span := seq.NewSpan(1, int64(n)*4)
	quakes, volcanos, err := workload.Monitoring(span, n, n/10, int64(n))
	if err != nil {
		return "", err
	}
	db := seqproc.New()
	db.MustCreateSequence("quakes", quakes, seqproc.Sparse)
	db.MustCreateSequence("volcanos", volcanos, seqproc.Sparse)
	var b strings.Builder
	err = section(&b, "E1: Example 1.1 volcano/earthquake query", db,
		"project(select(compose(volcanos, prev(quakes)), strength > 7.0), name)", span)
	return b.String(), err
}

func analyzeE2(quick bool) (string, error) {
	scale := int64(40)
	if quick {
		scale = 4
	}
	span := seqproc.NewSpan(1, 750*scale)
	const query = "project(compose(dec, select(compose(ibm, hp), ibm.close > hp.close) as ih), dec.close)"
	lock := exec.ComposeLockStep
	var b strings.Builder
	for _, v := range []struct {
		label   string
		disable bool
	}{
		{"E2: span propagation disabled (Figure 3.A, full scans)", true},
		{"E2: span propagation enabled (Figure 3.B, restricted scans)", false},
	} {
		db, err := table1DB(scale)
		if err != nil {
			return "", err
		}
		db.SetOptions(seqproc.Options{DisableSpanPropagation: v.disable, ForceComposeStrategy: &lock})
		if err := section(&b, v.label, db, query, span); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func analyzeE3(quick bool) (string, error) {
	n := int64(50_000)
	d1 := 0.02
	if quick {
		n = 4_000
		d1 = 0.05
	}
	span := seq.NewSpan(1, n)
	left, err := workload.Stock(workload.StockConfig{Name: "left", Span: span, Density: d1, Seed: 11})
	if err != nil {
		return "", err
	}
	right, err := workload.Stock(workload.StockConfig{Name: "right", Span: span, Density: 1.0, Seed: 12})
	if err != nil {
		return "", err
	}
	const query = "select(compose(l, r), l.close > r.close)"
	var b strings.Builder
	variants := []struct {
		label string
		force *exec.ComposeStrategy
	}{
		{"E3: forced stream-left (stream sparse, probe dense)", strategyPtr(exec.ComposeStreamLeft)},
		{"E3: forced stream-right (stream dense, probe sparse)", strategyPtr(exec.ComposeStreamRight)},
		{"E3: forced lockstep (stream both)", strategyPtr(exec.ComposeLockStep)},
		{"E3: optimizer choice", nil},
	}
	for _, v := range variants {
		db := seqproc.New()
		if err := db.CreateSequence("l", left, seqproc.Sparse); err != nil {
			return "", err
		}
		if err := db.CreateSequence("r", right, seqproc.Dense); err != nil {
			return "", err
		}
		db.SetOptions(seqproc.Options{ForceComposeStrategy: v.force})
		if err := section(&b, v.label, db, query, span); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func strategyPtr(s exec.ComposeStrategy) *exec.ComposeStrategy { return &s }

func analyzeE4(quick bool) (string, error) {
	n := int64(50_000)
	if quick {
		n = 4_000
	}
	span := seq.NewSpan(1, n)
	data, err := workload.Stock(workload.StockConfig{Name: "ibm", Span: span, Density: 1, Seed: 21})
	if err != nil {
		return "", err
	}
	const query = "sum(ibm, close, 32)"
	var b strings.Builder
	for _, v := range []struct {
		label string
		opts  seqproc.Options
	}{
		{"E4: naive windowed aggregate (forced)", seqproc.Options{ForceNaiveAggregates: true}},
		{"E4: Cache-Strategy-A (forced, sliding disabled)", seqproc.Options{DisableSlidingAggregates: true}},
		{"E4: optimizer choice", seqproc.Options{}},
	} {
		db := seqproc.New()
		if err := db.CreateSequence("ibm", data, seqproc.Dense); err != nil {
			return "", err
		}
		db.SetOptions(v.opts)
		if err := section(&b, v.label, db, query, span); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func analyzeE5(quick bool) (string, error) {
	n := int64(20_000)
	if quick {
		n = 2_000
	}
	span := seq.NewSpan(1, n)
	l, err := workload.Stock(workload.StockConfig{Name: "l", Span: span, Density: 1, Seed: 51})
	if err != nil {
		return "", err
	}
	r, err := workload.Stock(workload.StockConfig{Name: "r", Span: span, Density: 1, Seed: 52})
	if err != nil {
		return "", err
	}
	const query = "prev(select(compose(l, r), l.close > r.close))"
	var b strings.Builder
	for _, v := range []struct {
		label string
		opts  seqproc.Options
	}{
		{"E5: naive backward walk (forced)", seqproc.Options{ForceNaiveValueOffsets: true}},
		{"E5: Cache-Strategy-B", seqproc.Options{}},
	} {
		db := seqproc.New()
		if err := db.CreateSequence("l", l, seqproc.Dense); err != nil {
			return "", err
		}
		if err := db.CreateSequence("r", r, seqproc.Dense); err != nil {
			return "", err
		}
		db.SetOptions(v.opts)
		if err := section(&b, v.label, db, query, span); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

func analyzeE6(quick bool) (string, error) {
	span := seq.NewSpan(1, 64)
	db := seqproc.New()
	for _, name := range []string{"a", "b", "c", "d"} {
		data, err := workload.Stock(workload.StockConfig{Name: name, Span: span, Density: 1, Seed: 31})
		if err != nil {
			return "", err
		}
		if err := db.CreateSequence(name, data, seqproc.Dense); err != nil {
			return "", err
		}
	}
	var b strings.Builder
	err := section(&b, "E6: four-way join block (DP-chosen order and strategies)", db,
		"compose(a, compose(b, compose(c, d)))", span)
	return b.String(), err
}

func analyzeE7(quick bool) (string, error) {
	n := int64(20_000)
	if quick {
		n = 2_000
	}
	span := seq.NewSpan(1, n)
	a, err := workload.Stock(workload.StockConfig{Name: "a", Span: span, Density: 0.9, Seed: 41})
	if err != nil {
		return "", err
	}
	bb, err := workload.Stock(workload.StockConfig{Name: "b", Span: span, Density: 0.9, Seed: 42})
	if err != nil {
		return "", err
	}
	db := seqproc.New()
	if err := db.CreateSequence("a", a, seqproc.Sparse); err != nil {
		return "", err
	}
	if err := db.CreateSequence("b", bb, seqproc.Sparse); err != nil {
		return "", err
	}
	var b strings.Builder
	err = section(&b, "E7: stream-access pipeline (bounded caches over one scan)", db,
		"sum(prev(select(compose(a, b), a.close > b.close)), a.close, 16)", span)
	return b.String(), err
}

func analyzeE8(quick bool) (string, error) {
	scale := int64(40)
	if quick {
		scale = 4
	}
	db, err := table1DB(scale)
	if err != nil {
		return "", err
	}
	span := seqproc.NewSpan(1, 750*scale)
	const query = `project(
	    select(offset(compose(dec, compose(ibm, hp) as ih), -3),
	           ibm.close > hp.close and dec.close > 103.0),
	    dec.close)`
	var b strings.Builder
	for _, v := range []struct {
		label string
		opts  seqproc.Options
	}{
		{"E8: rewrites enabled", seqproc.Options{}},
		{"E8: rewrites disabled", seqproc.Options{DisableRewrites: true}},
	} {
		db.SetOptions(v.opts)
		if err := section(&b, v.label, db, query, span); err != nil {
			return "", err
		}
	}
	return b.String(), err
}
