// Package parallel implements span-partitioned parallel evaluation of
// physical plans: the multi-worker execution subsystem layered on the
// paper's operator-scope model.
//
// The legality argument comes straight from §2.3/§3: every physical
// operator's stream output at a position is a deterministic function of
// the base data within its composed effective scope around that position
// (Proposition 2.1 bounds the composition; Definition 3.3 broadens
// value offsets to an effective scope). Consequently Scan(sub-span)
// equals the restriction of Scan(full-span) to that sub-span, and a
// bounded span can be split into K contiguous partitions whose results,
// concatenated in order, are exactly the serial result. Each worker's
// operator scans internally widen into the neighboring partitions by at
// most the composed effective scope — the partition's halo — which the
// planner charges as re-read overhead when choosing K.
//
// Partition workers never share mutable operator state: each gets a
// deep ClonePlan copy with private caches (Theorem 3.1's cache-finite
// state, times K), and instrumented runs additionally fork the base
// stores' statistics so per-worker page attribution stays exact under
// concurrency. The planner falls back to serial (K=1) for plans whose
// scopes it cannot bound usefully — left-unbounded cumulative windows,
// value offsets over inputs of unknown density, probed-mode compose
// legs, materialization points — and whenever the §4 cost model with
// the parallelism term (startup plus halo re-reads versus divided
// per-partition work) prefers it.
package parallel

import (
	"fmt"
	"math"
	"runtime"
	"strings"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/seq"
	"repro/internal/storage"
)

// Params weight the parallelism term of the cost model, in the same
// sequential-page units as the rest of §4.1.
type Params struct {
	// Startup is the fixed per-worker overhead: goroutine launch, plan
	// cloning, result merging.
	Startup float64
	// MinSpanPerWorker floors the partition length; spans shorter than
	// 2× this never split.
	MinSpanPerWorker int64
}

// DefaultParams returns the standard parallelism weights. Startup is
// deliberately conservative: small interactive spans should never pay
// cloning and merging overhead for a few pages of work.
func DefaultParams() Params {
	return Params{Startup: 12.0, MinSpanPerWorker: 512}
}

// Scope is the partitionability verdict for a plan: whether contiguous
// span partitions are worth considering, the composed effective-scope
// hull each partition must be able to re-read around its boundaries
// (the halo), and the estimated cost of those boundary re-reads.
type Scope struct {
	// Partitionable reports that every operator's effective scope is
	// usefully bounded, so partitioned evaluation does not degenerate
	// into re-reading unbounded history per worker.
	Partitionable bool
	// Reason names the first disqualifying operator when not
	// partitionable.
	Reason string
	// Halo is the hull of the composed per-leaf effective scopes: a
	// partition evaluating [a, b] may read base positions within
	// [a+Halo.Lo, b+Halo.Hi].
	Halo algebra.Window
	// HaloCost estimates the page cost one extra partition boundary adds
	// (prefix re-reads, history-walk probes), in cost units.
	HaloCost float64
}

// Analyze walks the physical plan composing per-node effective scopes
// (Prop. 2.1: relative windows add along root-to-leaf paths) into the
// partition halo, and classifies the plan as partitionable or
// serial-only.
func Analyze(p exec.Plan) Scope {
	s := Scope{Partitionable: true}
	analyzeNode(p, algebra.Range(0, 0), &s)
	return s
}

func analyzeNode(p exec.Plan, acc algebra.Window, s *Scope) {
	if !s.Partitionable {
		return
	}
	switch op := p.(type) {
	case *exec.Leaf:
		s.Halo = haloHull(s.Halo, acc)
		rpp := int64(storage.DefaultRecordsPerPage)
		if st, ok := op.Seq.(storage.Store); ok {
			if c := st.AccessCosts(); c.RecordsPerPage > 0 {
				rpp = int64(c.RecordsPerPage)
			}
		}
		// Each partition boundary re-reads the halo width once,
		// sequentially.
		s.HaloCost += float64(acc.Hi-acc.Lo) / float64(rpp)
	case *exec.Rename:
		analyzeNode(op.In, acc, s)
	case *exec.SelectOp:
		analyzeNode(op.In, acc, s)
	case *exec.ProjectOp:
		analyzeNode(op.In, acc, s)
	case *exec.PosOffsetOp:
		analyzeNode(op.In, addWin(acc, algebra.Range(op.Offset, op.Offset)), s)
	case *exec.AggNaive:
		analyzeAgg(op.In, op.Spec.Window, acc, s)
	case *exec.AggCached:
		analyzeAgg(op.In, op.Spec.Window, acc, s)
	case *exec.AggSliding:
		analyzeAgg(op.In, op.Spec.Window, acc, s)
	case *exec.AggCumulative:
		s.disqualify("cumulative aggregate has a left-unbounded scope")
	case *exec.ValueOffsetNaive:
		analyzeValueOffset(op.In, op.Offset, acc, s)
	case *exec.ValueOffsetIncremental:
		analyzeValueOffset(op.In, op.Offset, acc, s)
	case *exec.ComposeOp:
		if op.Strategy != exec.ComposeLockStep {
			s.disqualify("compose with a probed-mode inner leg (" + op.Strategy.String() + ")")
			return
		}
		analyzeNode(op.L, acc, s)
		analyzeNode(op.R, acc, s)
	case *exec.Materialize:
		s.disqualify("materialization point (per-worker re-materialization)")
	case *exec.CollapseOp:
		// Affine scope: output j reads inputs {jk .. jk+k-1}, so a
		// relative window [lo, hi] around the output maps to the input
		// hull [lo·k, hi·k+k-1].
		analyzeNode(op.In, algebra.Range(acc.Lo*op.Factor, acc.Hi*op.Factor+op.Factor-1), s)
	case *exec.ExpandOp:
		// Affine scope {floor(i/k)}: the input hull of a relative output
		// window shrinks by the factor (one extra position covers the
		// flooring).
		analyzeNode(op.In, algebra.Range(algebra.FloorDiv(acc.Lo, op.Factor), algebra.FloorDiv(acc.Hi, op.Factor)+1), s)
	default:
		s.disqualify(fmt.Sprintf("unknown operator %s", p.Label()))
	}
}

func analyzeAgg(in exec.Plan, w algebra.Window, acc algebra.Window, s *Scope) {
	if w.LoUnbounded || w.HiUnbounded {
		s.disqualify(fmt.Sprintf("aggregate over unbounded window %s", w))
		return
	}
	analyzeNode(in, addWin(acc, w), s)
}

func analyzeValueOffset(in exec.Plan, offset int64, acc algebra.Window, s *Scope) {
	density := in.Info().Density
	if density <= 0 {
		s.disqualify("value offset over input of unknown density")
		return
	}
	// Definition 3.3 effective-scope broadening: the |l|-th non-Null
	// neighbor lies an expected |l|/density positions away. Evaluation
	// stays exact regardless (the operator walks or re-scans as far as
	// the data requires); the estimate sizes the halo and prices the
	// per-boundary history walk as probes.
	need := offset
	if need < 0 {
		need = -need
	}
	est := int64(math.Ceil(float64(need) / density))
	win := algebra.Range(-est, 0)
	if offset > 0 {
		win = algebra.Range(0, est)
	}
	// The history walk probes ~|l|/density positions per boundary; a
	// probe costs roughly a random page (4 sequential-page units, the
	// classical gap the cost model uses).
	s.HaloCost += float64(need) / density * 4.0
	analyzeNode(in, addWin(acc, win), s)
}

func (s *Scope) disqualify(reason string) {
	if s.Partitionable {
		s.Partitionable = false
		s.Reason = reason
	}
}

func haloHull(a, b algebra.Window) algebra.Window {
	out := a
	if b.Lo < out.Lo {
		out.Lo = b.Lo
	}
	if b.Hi > out.Hi {
		out.Hi = b.Hi
	}
	return out
}

func addWin(a, b algebra.Window) algebra.Window {
	return algebra.Range(a.Lo+b.Lo, a.Hi+b.Hi)
}

// Decision is the partition planner's output for one evaluation: the
// chosen degree of parallelism (K == 1 means serial, with Reason saying
// why), the contiguous sub-spans, the halo, and the cost-model numbers
// behind the choice.
type Decision struct {
	// K is the chosen number of partitions (and workers).
	K int
	// Partitions are the contiguous ascending sub-spans; their union is
	// exactly Span. Empty when K == 1.
	Partitions []seq.Span
	// Span is the full evaluation span the decision covers.
	Span seq.Span
	// Halo is the composed effective-scope hull per partition.
	Halo algebra.Window
	// HaloCost is the estimated cost one partition boundary adds.
	HaloCost float64
	// SerialCost is the optimizer's stream-cost estimate for K=1;
	// ParallelCost the modeled cost at the chosen K.
	SerialCost   float64
	ParallelCost float64
	// MaxWorkers is the worker bound the decision was made under.
	MaxWorkers int
	// Reason explains a serial decision (unpartitionable operator, or
	// "cost model" when splitting simply does not pay).
	Reason string
	// Forced marks decisions built by ForceK, which bypass the cost
	// model (differential tests force specific partition counts).
	Forced bool
}

// Parallel reports whether the decision actually splits the span.
func (d *Decision) Parallel() bool {
	return d != nil && d.K > 1 && len(d.Partitions) > 1
}

// String renders the decision for EXPLAIN output.
func (d *Decision) String() string {
	if d == nil {
		return ""
	}
	if !d.Parallel() {
		if d.Reason != "" {
			return fmt.Sprintf("parallel: serial (%s)", d.Reason)
		}
		return "parallel: serial"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "parallel: K=%d halo=%s cost %.2f vs serial %.2f, partitions", d.K, d.Halo, d.ParallelCost, d.SerialCost)
	for _, p := range d.Partitions {
		b.WriteByte(' ')
		b.WriteString(p.String())
	}
	return b.String()
}

// Plan decides the degree of parallelism for evaluating p over span:
// it analyzes partitionability, then minimizes the §4 cost model
// extended with the parallelism term
//
//	cost(K) = serial/K + K·startup + (K-1)·halo
//
// over K in [1, maxWorkers]. maxWorkers <= 0 selects GOMAXPROCS. The
// returned decision always explains a serial outcome.
func Plan(p exec.Plan, span seq.Span, serialCost float64, maxWorkers int, params Params) *Decision {
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	d := &Decision{K: 1, Span: span, SerialCost: serialCost, ParallelCost: serialCost, MaxWorkers: maxWorkers}
	if !span.Bounded() {
		d.Reason = "unbounded or empty span"
		return d
	}
	sc := Analyze(p)
	d.Halo = sc.Halo
	if !sc.Partitionable {
		d.Reason = sc.Reason
		return d
	}
	if maxWorkers == 1 {
		d.Reason = "parallelism disabled (max workers 1)"
		return d
	}
	if params.MinSpanPerWorker <= 0 {
		params.MinSpanPerWorker = DefaultParams().MinSpanPerWorker
	}
	halo := sc.HaloCost
	d.HaloCost = halo
	kMax := maxWorkers
	if byLen := span.Len() / params.MinSpanPerWorker; byLen < int64(kMax) {
		kMax = int(byLen)
	}
	bestK, bestCost := 1, serialCost
	for k := 2; k <= kMax; k++ {
		c := serialCost/float64(k) + float64(k)*params.Startup + float64(k-1)*halo
		if c < bestCost {
			bestK, bestCost = k, c
		}
	}
	d.K = bestK
	d.ParallelCost = bestCost
	if bestK == 1 {
		d.Reason = "cost model prefers serial"
		return d
	}
	d.Partitions = SplitSpan(span, bestK)
	d.K = len(d.Partitions)
	return d
}

// ForceK builds a decision with exactly k partitions regardless of what
// the cost model would choose, for differential testing: partitioned
// evaluation must agree with serial evaluation record for record on any
// clonable plan, including ones the planner would deem not worth (or
// not advisable) to split. Plans that cannot be cloned (unknown
// operator types with hidden state) are refused.
func ForceK(p exec.Plan, span seq.Span, k int) (*Decision, error) {
	if !span.Bounded() {
		return nil, fmt.Errorf("parallel: cannot partition unbounded span %s", span)
	}
	if k < 2 {
		return nil, fmt.Errorf("parallel: forced K must be at least 2, got %d", k)
	}
	if _, _, err := exec.ClonePlan(p); err != nil {
		return nil, fmt.Errorf("parallel: plan is not clonable: %w", err)
	}
	parts := SplitSpan(span, k)
	sc := Analyze(p)
	return &Decision{
		K: len(parts), Partitions: parts, Span: span, Halo: sc.Halo,
		MaxWorkers: k, Forced: true,
	}, nil
}

// SplitSpan splits a bounded span into at most k contiguous ascending
// sub-spans of near-equal length whose union is exactly the span.
func SplitSpan(span seq.Span, k int) []seq.Span {
	if !span.Bounded() || k < 1 {
		return nil
	}
	n := span.Len()
	if int64(k) > n {
		k = int(n)
	}
	parts := make([]seq.Span, 0, k)
	base := n / int64(k)
	rem := n % int64(k)
	start := span.Start
	for i := 0; i < k; i++ {
		length := base
		if int64(i) < rem {
			length++
		}
		end := start + length - 1
		parts = append(parts, seq.Span{Start: start, End: end})
		start = end + 1
	}
	return parts
}
