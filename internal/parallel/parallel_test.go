package parallel

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/exec"
	"repro/internal/seq"
	"repro/internal/storage"
)

var floatSchema = seq.MustSchema(seq.Field{Name: "v", Type: seq.TFloat})

// sparseStore builds a sparse store over [1, n] holding a record at
// every stride-th position (density 1/stride).
func sparseStore(t *testing.T, n, stride int64) storage.Store {
	t.Helper()
	var es []seq.Entry
	for p := int64(1); p <= n; p += stride {
		es = append(es, seq.Entry{Pos: p, Rec: seq.Record{seq.Float(float64(p))}})
	}
	m, err := seq.NewMaterialized(floatSchema, es)
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.FromMaterialized(m, storage.KindSparse, 8)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// fixture is a representative stateful stream plan: trailing-window
// aggregate over a backward value offset over a sparse base.
func fixture(t *testing.T, n int64) exec.Plan {
	t.Helper()
	lf := exec.NewLeaf("s", sparseStore(t, n, 2), seq.AllSpan)
	vo, err := exec.NewValueOffsetIncremental(lf, -1, seq.NewSpan(1, n))
	if err != nil {
		t.Fatal(err)
	}
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Trailing(4), As: "sum"}
	agg, err := exec.NewAggCached(vo, spec, seq.NewSpan(1, n))
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

func TestSplitSpan(t *testing.T) {
	for _, tc := range []struct {
		span seq.Span
		k    int
		want int
	}{
		{seq.NewSpan(1, 100), 4, 4},
		{seq.NewSpan(-10, 10), 3, 3},
		{seq.NewSpan(5, 7), 8, 3}, // k capped at span length
		{seq.NewSpan(1, 1), 2, 1},
	} {
		parts := SplitSpan(tc.span, tc.k)
		if len(parts) != tc.want {
			t.Fatalf("SplitSpan(%s, %d) = %d parts, want %d", tc.span, tc.k, len(parts), tc.want)
		}
		next := tc.span.Start
		for _, p := range parts {
			if p.Start != next || p.IsEmpty() {
				t.Fatalf("SplitSpan(%s, %d): bad partition %s (want start %d)", tc.span, tc.k, p, next)
			}
			next = p.End + 1 //seqvet:ignore spanarith partitions of a bounded test span
		}
		if next != tc.span.End+1 {
			t.Fatalf("SplitSpan(%s, %d) union ends at %d", tc.span, tc.k, next-1)
		}
		// Near-equal: lengths differ by at most one.
		lo, hi := parts[0].Len(), parts[0].Len()
		for _, p := range parts {
			if p.Len() < lo {
				lo = p.Len()
			}
			if p.Len() > hi {
				hi = p.Len()
			}
		}
		if hi-lo > 1 {
			t.Fatalf("SplitSpan(%s, %d): uneven lengths %d..%d", tc.span, tc.k, lo, hi)
		}
	}
	if parts := SplitSpan(seq.AllSpan, 4); parts != nil {
		t.Fatalf("unbounded span split into %v", parts)
	}
}

// unknownDensity is a sequence whose Info reports no density estimate.
type unknownDensity struct{ seq.Sequence }

func (u unknownDensity) Info() seq.Info {
	i := u.Sequence.Info()
	i.Density = 0
	return i
}

func TestAnalyzeVerdicts(t *testing.T) {
	n := int64(4096)
	lf := func() exec.Plan { return exec.NewLeaf("s", sparseStore(t, n, 2), seq.AllSpan) }
	spec := algebra.AggSpec{Func: algebra.AggSum, Arg: 0, Window: algebra.Trailing(4), As: "sum"}

	t.Run("leaf", func(t *testing.T) {
		s := Analyze(lf())
		if !s.Partitionable || s.Halo != algebra.Range(0, 0) {
			t.Fatalf("leaf: %+v", s)
		}
	})
	t.Run("agg-trailing", func(t *testing.T) {
		agg, err := exec.NewAggCached(lf(), spec, seq.NewSpan(1, n))
		if err != nil {
			t.Fatal(err)
		}
		s := Analyze(agg)
		if !s.Partitionable || s.Halo != algebra.Range(-3, 0) {
			t.Fatalf("agg: %+v", s)
		}
	})
	t.Run("posoffset-composes", func(t *testing.T) {
		agg, err := exec.NewAggCached(exec.NewPosOffset(lf(), 2), spec, seq.NewSpan(1, n))
		if err != nil {
			t.Fatal(err)
		}
		s := Analyze(agg)
		if !s.Partitionable || s.Halo != algebra.Range(-1, 2) {
			t.Fatalf("posoffset under agg: %+v", s)
		}
	})
	t.Run("voffset-known-density", func(t *testing.T) {
		vo, err := exec.NewValueOffsetIncremental(lf(), -1, seq.NewSpan(1, n))
		if err != nil {
			t.Fatal(err)
		}
		s := Analyze(vo)
		if !s.Partitionable || s.Halo.Lo >= 0 {
			t.Fatalf("voffset: %+v", s)
		}
	})
	t.Run("voffset-unknown-density", func(t *testing.T) {
		in := exec.NewLeaf("u", unknownDensity{sparseStore(t, n, 2)}, seq.AllSpan)
		vo, err := exec.NewValueOffsetIncremental(in, -1, seq.NewSpan(1, n))
		if err != nil {
			t.Fatal(err)
		}
		if s := Analyze(vo); s.Partitionable {
			t.Fatalf("unknown density must be serial-only: %+v", s)
		}
	})
	t.Run("cumulative", func(t *testing.T) {
		cum, err := exec.NewAggCumulative(lf(), algebra.AggSpec{
			Func: algebra.AggSum, Arg: 0,
			Window: algebra.Window{LoUnbounded: true, Hi: 0}, As: "sum",
		}, seq.NewSpan(1, n))
		if err != nil {
			t.Fatal(err)
		}
		if s := Analyze(cum); s.Partitionable {
			t.Fatalf("cumulative must be serial-only: %+v", s)
		}
	})
	t.Run("compose-lockstep", func(t *testing.T) {
		schema := seq.MustSchema(
			seq.Field{Name: "l", Type: seq.TFloat}, seq.Field{Name: "r", Type: seq.TFloat})
		j, err := exec.NewCompose(lf(), exec.NewPosOffset(lf(), -1), nil, schema, exec.ComposeLockStep)
		if err != nil {
			t.Fatal(err)
		}
		s := Analyze(j)
		if !s.Partitionable || s.Halo != algebra.Range(-1, 0) {
			t.Fatalf("lockstep compose: %+v", s)
		}
	})
	t.Run("compose-probed", func(t *testing.T) {
		schema := seq.MustSchema(
			seq.Field{Name: "l", Type: seq.TFloat}, seq.Field{Name: "r", Type: seq.TFloat})
		j, err := exec.NewCompose(lf(), lf(), nil, schema, exec.ComposeStreamLeft)
		if err != nil {
			t.Fatal(err)
		}
		if s := Analyze(j); s.Partitionable {
			t.Fatalf("probed compose must be serial-only: %+v", s)
		}
	})
	t.Run("materialize", func(t *testing.T) {
		m, err := exec.NewMaterialize(lf(), seq.NewSpan(1, n))
		if err != nil {
			t.Fatal(err)
		}
		if s := Analyze(m); s.Partitionable {
			t.Fatalf("materialize must be serial-only: %+v", s)
		}
	})
	t.Run("collapse-affine", func(t *testing.T) {
		col, err := exec.NewCollapse(lf(), 4, algebra.AggSpec{Func: algebra.AggSum, Arg: 0, As: "sum"}, seq.NewSpan(0, n/4))
		if err != nil {
			t.Fatal(err)
		}
		s := Analyze(col)
		if !s.Partitionable || s.Halo != algebra.Range(0, 3) {
			t.Fatalf("collapse: %+v", s)
		}
	})
}

func TestPlanCostModel(t *testing.T) {
	n := int64(32 * 1024)
	p := fixture(t, n)
	span := seq.NewSpan(1, n)

	t.Run("cheap-stays-serial", func(t *testing.T) {
		d := Plan(p, span, 20.0, 8, DefaultParams())
		if d.Parallel() || d.Reason != "cost model prefers serial" {
			t.Fatalf("cheap query: %s", d)
		}
	})
	t.Run("expensive-splits", func(t *testing.T) {
		d := Plan(p, span, 1000.0, 4, DefaultParams())
		if d.K != 4 {
			t.Fatalf("want K=4, got %s", d)
		}
		if d.ParallelCost >= d.SerialCost {
			t.Fatalf("parallel cost %f must beat serial %f", d.ParallelCost, d.SerialCost)
		}
		if len(d.Partitions) != 4 {
			t.Fatalf("partitions: %v", d.Partitions)
		}
	})
	t.Run("halo-overhead-caps-k", func(t *testing.T) {
		// A huge per-boundary overhead makes extra workers net-negative.
		params := DefaultParams()
		params.Startup = 400
		d := Plan(p, span, 1000.0, 8, params)
		if d.K > 1 {
			t.Fatalf("want serial under extreme startup, got %s", d)
		}
	})
	t.Run("short-span-stays-serial", func(t *testing.T) {
		d := Plan(p, seq.NewSpan(1, 600), 1000.0, 8, DefaultParams())
		if d.Parallel() {
			t.Fatalf("600-position span must not split: %s", d)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		d := Plan(p, span, 1000.0, 1, DefaultParams())
		if d.Parallel() || d.Reason != "parallelism disabled (max workers 1)" {
			t.Fatalf("disabled: %s", d)
		}
	})
	t.Run("unbounded-span", func(t *testing.T) {
		if d := Plan(p, seq.AllSpan, 1000.0, 8, DefaultParams()); d.Parallel() {
			t.Fatalf("unbounded span: %s", d)
		}
	})
	t.Run("serial-only-plan", func(t *testing.T) {
		m, err := exec.NewMaterialize(fixture(t, n), seq.NewSpan(1, n))
		if err != nil {
			t.Fatal(err)
		}
		d := Plan(m, span, 1000.0, 8, DefaultParams())
		if d.Parallel() || d.Reason == "" {
			t.Fatalf("serial-only plan: %s", d)
		}
	})
}

func entriesEqual(t *testing.T, got, want []seq.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Pos != want[i].Pos {
			t.Fatalf("entry %d at position %d, want %d", i, got[i].Pos, want[i].Pos)
		}
		if len(got[i].Rec) != len(want[i].Rec) {
			t.Fatalf("entry %d arity %d, want %d", i, len(got[i].Rec), len(want[i].Rec))
		}
		for j := range want[i].Rec {
			if got[i].Rec[j] != want[i].Rec[j] {
				t.Fatalf("entry %d field %d = %v, want %v", i, j, got[i].Rec[j], want[i].Rec[j])
			}
		}
	}
}

func TestRunMatchesSerial(t *testing.T) {
	n := int64(4096)
	p := fixture(t, n)
	span := seq.NewSpan(1, n)
	want, err := exec.Run(p, span)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 7} {
		d, err := ForceK(p, span, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(p, span, d)
		if err != nil {
			t.Fatal(err)
		}
		entriesEqual(t, got.Entries(), want.Entries())
	}
}

func TestRunFallsBackOnSerialDecision(t *testing.T) {
	n := int64(2048)
	p := fixture(t, n)
	span := seq.NewSpan(1, n)
	d := Plan(p, span, 1.0, 8, DefaultParams()) // cost model says serial
	got, err := Run(p, span, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(p, span)
	if err != nil {
		t.Fatal(err)
	}
	entriesEqual(t, got.Entries(), want.Entries())
}

func TestForceKValidation(t *testing.T) {
	p := fixture(t, 1024)
	if _, err := ForceK(p, seq.AllSpan, 2); err == nil {
		t.Fatal("unbounded span must be rejected")
	}
	if _, err := ForceK(p, seq.NewSpan(1, 100), 1); err == nil {
		t.Fatal("K=1 must be rejected")
	}
	instr, _ := exec.Instrument(p, nil)
	if _, err := ForceK(instr, seq.NewSpan(1, 100), 2); err == nil {
		t.Fatal("unclonable plan must be rejected")
	}
}

func TestRunAnalyzePartitions(t *testing.T) {
	n := int64(4096)
	p := fixture(t, n)
	span := seq.NewSpan(1, n)
	d, err := ForceK(p, span, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(p, span)
	if err != nil {
		t.Fatal(err)
	}
	stores := exec.PlanStores(p)
	if len(stores) != 1 {
		t.Fatalf("fixture has %d stores", len(stores))
	}
	before := stores[0].Stats().Snapshot()

	out, root, parts, err := RunAnalyze(p, span, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := stores[0].Stats().Snapshot()
	entriesEqual(t, out.Entries(), want.Entries())

	if len(parts) != 3 {
		t.Fatalf("got %d partition records", len(parts))
	}
	var rows int64
	var pages storage.StatsSnapshot
	for i, pm := range parts {
		if pm.Span != d.Partitions[i] {
			t.Errorf("partition %d span %s, want %s", i, pm.Span, d.Partitions[i])
		}
		rows += pm.Rows
		pages = pages.Add(pm.Pages)
	}
	if rows != int64(out.Count()) {
		t.Errorf("partition rows sum %d, output rows %d", rows, out.Count())
	}
	// The fold-back step must re-credit every worker's fork accesses to
	// the shared store counters: the shared movement across the analyzed
	// run equals the per-partition sum exactly.
	if got := after.Sub(before); pages != got {
		t.Errorf("per-partition pages sum %v, shared movement %v", pages, got)
	}
	// The merged metrics tree mirrors the plan and sums worker rows.
	if root.Label != p.Label() {
		t.Errorf("merged root label %q", root.Label)
	}
	if root.ScanRows != int64(out.Count()) {
		t.Errorf("merged root rows %d, want %d", root.ScanRows, out.Count())
	}
	if root.ScanCalls != 3 {
		t.Errorf("merged root scans %d, want 3", root.ScanCalls)
	}
}
