package parallel

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/seq"
	"repro/internal/storage"
)

var symSchema = seq.MustSchema(
	seq.Field{Name: "sym", Type: seq.TString},
	seq.Field{Name: "v", Type: seq.TFloat},
)

// symPlan is a select over a high-duplication string store: every worker
// interns the same handful of symbols into its private table, which is
// what the -race runs of this file are after.
func symPlan(t *testing.T, n int64) exec.Plan {
	t.Helper()
	syms := []string{"aa", "bb", "cc"}
	var es []seq.Entry
	for p := int64(1); p <= n; p++ {
		es = append(es, seq.Entry{Pos: p, Rec: seq.Record{
			seq.Str(syms[int(p)%len(syms)]), seq.Float(float64(p)),
		}})
	}
	m, err := seq.NewMaterialized(symSchema, es)
	if err != nil {
		t.Fatal(err)
	}
	st, err := storage.FromMaterialized(m, storage.KindSparse, 8)
	if err != nil {
		t.Fatal(err)
	}
	v, err := expr.NewCol(symSchema, "v")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := expr.NewBin(expr.OpGt, v, expr.Literal(seq.Float(2)))
	if err != nil {
		t.Fatal(err)
	}
	return exec.NewSelect(exec.NewLeaf("s", st, seq.AllSpan), pred)
}

func TestRunBatchMatchesRun(t *testing.T) {
	n := int64(4096)
	span := seq.NewSpan(1, n)
	for _, k := range []int{2, 3, 7} {
		p := fixture(t, n)
		d, err := ForceK(p, span, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(p, span, d)
		if err != nil {
			t.Fatal(err)
		}
		ctx := seq.NewBatchCtx()
		got, err := RunBatch(p, span, d, ctx)
		if err != nil {
			t.Fatal(err)
		}
		entriesEqual(t, got.Entries(), want.Entries())
		if ctx.Batches == 0 || ctx.Rows == 0 {
			t.Fatalf("K=%d: no batch counters absorbed (batches=%d rows=%d)", k, ctx.Batches, ctx.Rows)
		}
	}
}

func TestRunBatchInternPrivacy(t *testing.T) {
	// Workers intern concurrently into forked tables; run it a few times
	// so the -race job in CI gets real interleavings to bite on.
	n := int64(2048)
	span := seq.NewSpan(1, n)
	p := symPlan(t, n)
	want, err := exec.Run(p, span)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ForceK(p, span, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ctx := seq.NewBatchCtx()
		got, err := RunBatch(p, span, d, ctx)
		if err != nil {
			t.Fatal(err)
		}
		entriesEqual(t, got.Entries(), want.Entries())
		st := ctx.Intern.Stats()
		// 3 distinct symbols per worker table, 4 workers.
		if st.StrMisses != 12 {
			t.Fatalf("run %d: %d intern misses across forks, want 12 (stats %+v)", i, st.StrMisses, st)
		}
		if st.StrHits == 0 {
			t.Fatalf("run %d: no intern hits on a 3-symbol column", i)
		}
	}
}

func TestRunAnalyzeBatchPartitions(t *testing.T) {
	n := int64(4096)
	p := fixture(t, n)
	span := seq.NewSpan(1, n)
	d, err := ForceK(p, span, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.Run(p, span)
	if err != nil {
		t.Fatal(err)
	}
	ctx := seq.NewBatchCtx()
	out, root, parts, err := RunAnalyzeBatch(p, span, d, nil, ctx)
	if err != nil {
		t.Fatal(err)
	}
	entriesEqual(t, out.Entries(), want.Entries())
	if len(parts) != 3 {
		t.Fatalf("got %d partition records", len(parts))
	}
	var rows int64
	for i, pm := range parts {
		if pm.Span != d.Partitions[i] {
			t.Errorf("partition %d span %s, want %s", i, pm.Span, d.Partitions[i])
		}
		rows += pm.Rows
	}
	if rows != int64(out.Count()) {
		t.Errorf("partition rows sum %d, output rows %d", rows, out.Count())
	}
	if root == nil {
		t.Fatal("no merged metrics root")
	}
	if root.Batches == 0 || root.BatchRows == 0 {
		t.Errorf("merged root recorded no batches (batches=%d rows=%d)", root.Batches, root.BatchRows)
	}
	if ctx.Batches == 0 || ctx.Rows != int64(out.Count()) {
		t.Errorf("run counters batches=%d rows=%d, output rows %d", ctx.Batches, ctx.Rows, out.Count())
	}
	// A serial decision is the caller's bug.
	if _, _, _, err := RunAnalyzeBatch(p, span, &Decision{}, nil, ctx); err == nil {
		t.Error("serial decision accepted")
	}
}
