package parallel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/seq"
	"repro/internal/storage"
)

// CloneWorkers deep-copies the plan once per partition. Every copy has
// private operator caches and materialization state; the invariant
// verifier checks the copies share no mutable cache with each other or
// with the original.
func CloneWorkers(p exec.Plan, k int) ([]exec.Plan, error) {
	clones := make([]exec.Plan, k)
	for i := range clones {
		c, _, err := exec.ClonePlan(p)
		if err != nil {
			return nil, err
		}
		clones[i] = c
	}
	return clones, nil
}

// Run evaluates the plan over the decision's partitions on one worker
// goroutine per partition and concatenates the per-partition results —
// in partition order, so the merged output is exactly the serial
// Scan(span) stream — into one materialized result. A serial decision
// (or a plan that turns out not to be clonable) falls back to exec.Run.
func Run(p exec.Plan, span seq.Span, d *Decision) (*seq.Materialized, error) {
	if !d.Parallel() {
		return exec.Run(p, span)
	}
	clones, err := CloneWorkers(p, len(d.Partitions))
	if err != nil {
		return exec.Run(p, span)
	}
	results := make([][]seq.Entry, len(d.Partitions))
	errs := make([]error, len(d.Partitions))
	var wg sync.WaitGroup
	for i, part := range d.Partitions {
		wg.Add(1)
		go func(i int, part seq.Span) {
			defer wg.Done()
			results[i], errs[i] = seq.Collect(clones[i].Scan(part))
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeEntries(p, results)
}

func mergeEntries(p exec.Plan, results [][]seq.Entry) (*seq.Materialized, error) {
	total := 0
	for _, r := range results {
		total += len(r)
	}
	all := make([]seq.Entry, 0, total)
	for _, r := range results {
		all = append(all, r...)
	}
	return seq.NewMaterialized(p.Info().Schema, all)
}

// PartitionMetrics is the execution record of one partition worker in
// an instrumented parallel run.
type PartitionMetrics struct {
	// Span is the partition's sub-span.
	Span seq.Span
	// Rows is the number of records the partition emitted.
	Rows int64
	// Pages is the base-store page movement attributed to this worker
	// (exact: each worker meters private stats forks).
	Pages storage.StatsSnapshot
	// Elapsed is the worker's wall-clock time.
	Elapsed time.Duration
}

// statsFork records one worker-private stats block and the shared block
// it must be folded back into on completion.
type statsFork struct {
	shared *storage.Stats
	priv   *storage.Stats
}

// RunAnalyze evaluates the decision's partitions with per-worker
// exec.Instrument shards and merges them deterministically: the result
// entries concatenate in partition order, the per-node metric shards
// sum into one tree mirroring the plan, and each worker's page accesses
// — metered against worker-private forks of the base stores, so
// concurrent attribution stays exact — are folded back into the shared
// store counters at completion. pred supplies the optimizer's per-node
// estimates keyed by the ORIGINAL plan's nodes; the clone mapping
// carries them onto each shard.
func RunAnalyze(p exec.Plan, span seq.Span, d *Decision, pred func(exec.Plan) exec.PredictedCost) (*seq.Materialized, *exec.NodeMetrics, []PartitionMetrics, error) {
	if !d.Parallel() {
		return nil, nil, nil, fmt.Errorf("parallel: RunAnalyze requires a parallel decision")
	}
	if pred == nil {
		pred = func(exec.Plan) exec.PredictedCost { return exec.PredictedCost{} }
	}
	k := len(d.Partitions)
	results := make([][]seq.Entry, k)
	errs := make([]error, k)
	roots := make([]*exec.NodeMetrics, k)
	parts := make([]PartitionMetrics, k)
	forks := make([][]statsFork, k)
	var wg sync.WaitGroup
	for i, part := range d.Partitions {
		clone, orig, err := exec.ClonePlan(p)
		if err != nil {
			return nil, nil, nil, err
		}
		// Swap each base store for a fork counting into worker-private
		// statistics, so the Metered delta-snapshot attribution inside
		// Instrument never races with the other workers.
		exec.ReplaceLeafSeqs(clone, func(l *exec.Leaf) {
			if st, ok := l.Seq.(storage.StatsForker); ok {
				priv := &storage.Stats{}
				forks[i] = append(forks[i], statsFork{shared: st.Stats(), priv: priv})
				l.Seq = st.Fork(priv)
			}
		})
		predClone := func(cp exec.Plan) exec.PredictedCost {
			if o, ok := orig[cp]; ok {
				return pred(o)
			}
			return exec.PredictedCost{}
		}
		instr, root := exec.Instrument(clone, predClone)
		roots[i] = root
		wg.Add(1)
		go func(i int, part seq.Span) {
			defer wg.Done()
			start := time.Now()
			results[i], errs[i] = seq.Collect(instr.Scan(part))
			parts[i] = PartitionMetrics{Span: part, Rows: int64(len(results[i])), Elapsed: time.Since(start)}
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	// Merge step: fold worker fork counters back into the shared store
	// statistics, finalize and sum the metric shards, concatenate the
	// partition outputs in order.
	for i := range parts {
		var pages storage.StatsSnapshot
		for _, f := range forks[i] {
			snap := f.priv.Snapshot()
			pages = pages.Add(snap)
			f.shared.AddSnapshot(snap)
		}
		parts[i].Pages = pages
		roots[i].Finalize()
	}
	merged := roots[0]
	for _, r := range roots[1:] {
		if err := merged.Merge(r); err != nil {
			return nil, nil, nil, err
		}
	}
	out, err := mergeEntries(p, results)
	if err != nil {
		return nil, nil, nil, err
	}
	return out, merged, parts, nil
}
