package parallel

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/seq"
	"repro/internal/storage"
)

// RunBatch is the vectorized counterpart of Run: each partition worker
// drives the batch pipeline over its sub-span with a private forked
// context — same batch size, its own intern table, so handle spaces
// never cross goroutines — and the per-worker batch and intern counters
// are folded back into ctx after the join. The legality argument is
// unchanged (batch evaluation produces the identical record stream, so
// partition concatenation still reconstructs the serial scan); a serial
// decision or an uncloneable plan falls back to single-context batch
// evaluation.
func RunBatch(p exec.Plan, span seq.Span, d *Decision, ctx *seq.BatchCtx) (*seq.Materialized, error) {
	if !d.Parallel() {
		return exec.RunBatch(p, span, ctx)
	}
	clones, err := CloneWorkers(p, len(d.Partitions))
	if err != nil {
		return exec.RunBatch(p, span, ctx)
	}
	k := len(d.Partitions)
	results := make([][]seq.Entry, k)
	errs := make([]error, k)
	wctxs := make([]*seq.BatchCtx, k)
	var wg sync.WaitGroup
	for i, part := range d.Partitions {
		wctxs[i] = ctx.Fork()
		wg.Add(1)
		go func(i int, part seq.Span) {
			defer wg.Done()
			results[i], errs[i] = exec.CollectBatchesIn(exec.BatchScanOf(clones[i], part, wctxs[i]), wctxs[i], part)
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, w := range wctxs {
		ctx.AbsorbCounters(w)
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	all := make([]seq.Entry, 0, total)
	for _, r := range results {
		all = append(all, r...)
	}
	// Partition outputs are disjoint ascending sub-spans concatenated in
	// order, so the merged stream is already sorted and verified.
	return seq.FromSortedEntries(p.Info().Schema, all)
}

// RunAnalyzeBatch is the vectorized counterpart of RunAnalyze: per-worker
// instrumentation shards, per-worker stats forks for exact concurrent
// page attribution, and per-worker batch contexts whose counters — batch
// tallies and intern hit/miss totals — fold into ctx at the merge, so a
// partitioned EXPLAIN ANALYZE reports run-wide interning behavior.
func RunAnalyzeBatch(p exec.Plan, span seq.Span, d *Decision, pred func(exec.Plan) exec.PredictedCost, ctx *seq.BatchCtx) (*seq.Materialized, *exec.NodeMetrics, []PartitionMetrics, error) {
	if !d.Parallel() {
		return nil, nil, nil, fmt.Errorf("parallel: RunAnalyzeBatch requires a parallel decision")
	}
	if pred == nil {
		pred = func(exec.Plan) exec.PredictedCost { return exec.PredictedCost{} }
	}
	k := len(d.Partitions)
	results := make([][]seq.Entry, k)
	errs := make([]error, k)
	roots := make([]*exec.NodeMetrics, k)
	parts := make([]PartitionMetrics, k)
	forks := make([][]statsFork, k)
	wctxs := make([]*seq.BatchCtx, k)
	var wg sync.WaitGroup
	for i, part := range d.Partitions {
		clone, orig, err := exec.ClonePlan(p)
		if err != nil {
			return nil, nil, nil, err
		}
		exec.ReplaceLeafSeqs(clone, func(l *exec.Leaf) {
			if st, ok := l.Seq.(storage.StatsForker); ok {
				priv := &storage.Stats{}
				forks[i] = append(forks[i], statsFork{shared: st.Stats(), priv: priv})
				l.Seq = st.Fork(priv)
			}
		})
		predClone := func(cp exec.Plan) exec.PredictedCost {
			if o, ok := orig[cp]; ok {
				return pred(o)
			}
			return exec.PredictedCost{}
		}
		instr, root := exec.Instrument(clone, predClone)
		roots[i] = root
		wctxs[i] = ctx.Fork()
		wg.Add(1)
		go func(i int, part seq.Span) {
			defer wg.Done()
			start := time.Now()
			results[i], errs[i] = exec.CollectBatchesIn(exec.BatchScanOf(instr, part, wctxs[i]), wctxs[i], part)
			parts[i] = PartitionMetrics{Span: part, Rows: int64(len(results[i])), Elapsed: time.Since(start)}
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	for i := range parts {
		var pages storage.StatsSnapshot
		for _, f := range forks[i] {
			snap := f.priv.Snapshot()
			pages = pages.Add(snap)
			f.shared.AddSnapshot(snap)
		}
		parts[i].Pages = pages
		roots[i].Finalize()
	}
	for _, w := range wctxs {
		ctx.AbsorbCounters(w)
	}
	merged := roots[0]
	for _, r := range roots[1:] {
		if err := merged.Merge(r); err != nil {
			return nil, nil, nil, err
		}
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	all := make([]seq.Entry, 0, total)
	for _, r := range results {
		all = append(all, r...)
	}
	out, err := seq.FromSortedEntries(p.Info().Schema, all)
	if err != nil {
		return nil, nil, nil, err
	}
	return out, merged, parts, nil
}
