// Package reopt implements mid-run adaptive reoptimization: the ROADMAP
// item "compare predicted vs. actual per-node costs mid-run and switch
// access mode for the remaining span".
//
// A monitored run drains the stream plan through the EXPLAIN ANALYZE
// instrumentation layer and, at every checkpoint interval of consumed
// positions, compares each node's accumulated actual cost (pages, cache
// operations, records — exec.NodeMetrics.ActualCost) against its
// §4.1.2/§4.1.3 prediction pro-rated to the span consumed. When the
// relative error exceeds the configured threshold the run stops, asks a
// Planner (implemented by internal/core) to re-run the per-block plan
// generator for the *remaining* span with observed densities substituted
// for the estimates, and splices the new plan in: a stream↔probed,
// Cache-Strategy-A↔B or parallelism-K switch realized mid-run.
//
// The splice is legal by the stream-access property (Thm. 3.1): a scan
// of a sub-span equals the restriction of the full scan to that
// sub-span, so evaluating [start, p] with the old plan and [p+1, end]
// with the new one concatenates to exactly the static result. Operator
// caches are finite and rebuilt per segment, so the consumed prefix is
// never re-read and no cache state crosses the switch (the planlint
// reopt/* invariants check both properties). One more condition is
// required of the Planner: the rebuilt tail must keep the original
// request's evaluation universe (meta.AnnotateSubSpan) — the universe
// is part of the query's semantics, and re-deriving it from the
// remaining span alone would confine universe-dependent operators to a
// smaller hull and change the function being computed.
package reopt

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/seq"
)

// DefaultCheckEvery is the checkpoint interval (in positions) when the
// config does not set one.
const DefaultCheckEvery = 1024

// DefaultThreshold is the relative-error trigger when the config leaves
// Threshold negative (a zero threshold is meaningful: it triggers at
// every checkpoint).
const DefaultThreshold = 0.5

// Config tunes the monitored run.
type Config struct {
	// Enabled turns mid-run reoptimization on (core.Options.Reopt).
	Enabled bool
	// CheckEvery is the checkpoint interval in consumed positions;
	// <= 0 selects DefaultCheckEvery.
	CheckEvery int64
	// Threshold is the relative error |actual − prediction·frac| /
	// max(prediction·frac, 1) beyond which a node triggers a replan.
	// Zero triggers at every checkpoint (the forced-reopt fuzz mode).
	Threshold float64
	// ForceAt, when set, forces one replan decision at the first
	// consumed position ≥ *ForceAt, regardless of interval or
	// threshold — the adversarial-midpoint test hook.
	ForceAt *seq.Pos
	// MaxSwitches caps the number of splices per run; 0 is unlimited.
	MaxSwitches int
	// TailK, when ≥ 2, forces the replanned tail to run span-partitioned
	// at K = TailK where the plan allows it (test hook for the revised-
	// parallelism switch); 0 lets the cost model pick.
	TailK int
}

func (c Config) interval() int64 {
	if c.CheckEvery <= 0 {
		return DefaultCheckEvery
	}
	return c.CheckEvery
}

// Segment is a spliced continuation the Planner produced: a plan for
// exactly the remaining span, its predicted costs, and the partition
// decision for running it.
type Segment struct {
	// Plan evaluates the remaining span.
	Plan exec.Plan
	// Span is the remaining span the plan covers — exactly
	// [consumed+1, end] of the segment being replaced.
	Span seq.Span
	// Pred supplies per-node predicted costs for instrumenting the new
	// plan (nil means no estimates).
	Pred func(exec.Plan) exec.PredictedCost
	// Decision is the partition planner's choice for the tail; a
	// parallel decision ends monitoring and runs the tail on workers.
	Decision *parallel.Decision
	// Mode is the strategy signature of the new plan (StrategySignature).
	Mode string
}

// Planner replans the remaining span when a checkpoint triggers.
// internal/core implements it over the per-block plan generator with
// observed densities substituted for the Step-2 estimates.
type Planner interface {
	// Replan receives the remaining span, the span the current segment
	// has consumed, and the live metrics of the current segment's run.
	// A nil Segment (with nil error) declines the splice: the rebuilt
	// plan would not change mode or parallelism, so the current segment
	// keeps running. force demands a Segment regardless (the ForceAt
	// and threshold-0 fuzz modes, which exercise the splice machinery
	// itself).
	Replan(remaining, consumed seq.Span, metrics *exec.NodeMetrics, force bool) (*Segment, error)
}

// Trigger records why a checkpoint fired.
type Trigger struct {
	// Node is the label of the plan node with the worst relative error.
	Node string
	// Predicted is the node's cumulative predicted stream cost pro-rated
	// to the consumed fraction of the segment span.
	Predicted float64
	// Actual is the node's accumulated actual cost in the same units.
	Actual float64
	// RelErr is |Actual − Predicted| / max(Predicted, 1).
	RelErr float64
	// Forced marks a ForceAt trigger (threshold not consulted).
	Forced bool
}

// Switch records one splice.
type Switch struct {
	// At is the last position the old segment consumed; the new plan
	// starts at At+1.
	At      seq.Pos
	Trigger Trigger
	// OldMode and NewMode are the strategy signatures on each side.
	OldMode, NewMode string
	// NewK is the partition count of the spliced tail (1 = serial).
	NewK int
}

// SegmentReport describes one executed segment of the run.
type SegmentReport struct {
	Span seq.Span
	// Plan is the (uninstrumented) plan the segment ran.
	Plan exec.Plan
	Mode string
	K    int
	Rows int64
	// Metrics is the finalized metrics tree of a monitored (serial)
	// segment; nil for a parallel tail.
	Metrics *exec.NodeMetrics
}

// Report is the reoptimization record of one run.
type Report struct {
	Checkpoints int
	Switches    []Switch
	Segments    []SegmentReport
}

// Switched reports whether the run spliced at least once.
func (r *Report) Switched() bool { return len(r.Switches) > 0 }

// Render returns the report as stable text (counter-derived numbers
// only, no wall-clock), one "reopt:" line per fact, ending with a
// newline. EXPLAIN ANALYZE embeds it.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reopt: %d checkpoint(s), %d switch(es)\n", r.Checkpoints, len(r.Switches))
	for _, s := range r.Switches {
		forced := ""
		if s.Trigger.Forced {
			forced = " forced"
		}
		fmt.Fprintf(&b, "reopt: switch at pos=%d trigger=%s observed=%.2f predicted=%.2f err=%.2f%s: %s -> %s",
			s.At, s.Trigger.Node, s.Trigger.Actual, s.Trigger.Predicted, s.Trigger.RelErr, forced,
			s.OldMode, s.NewMode)
		if s.NewK > 1 {
			fmt.Fprintf(&b, " K=%d", s.NewK)
		}
		b.WriteByte('\n')
	}
	for i, seg := range r.Segments {
		fmt.Fprintf(&b, "reopt: segment %d/%d span=%s rows=%d mode=%s",
			i+1, len(r.Segments), seg.Span, seg.Rows, seg.Mode)
		if seg.K > 1 {
			fmt.Fprintf(&b, " K=%d", seg.K)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StrategySignature summarizes the strategy-bearing operators of a plan
// (compose strategies, value-offset and aggregate algorithms,
// materialization points) in preorder — the old→new mode description of
// a switch.
func StrategySignature(p exec.Plan) string {
	var parts []string
	var walk func(n exec.Plan)
	walk = func(n exec.Plan) {
		l := n.Label()
		if strings.HasPrefix(l, "compose-") || strings.HasPrefix(l, "voffset-") ||
			strings.HasPrefix(l, "agg-") || strings.HasPrefix(l, "materialize") {
			parts = append(parts, l)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	if len(parts) == 0 {
		return p.Label()
	}
	return strings.Join(parts, ",")
}

// Run executes the plan over the span under checkpoint monitoring,
// splicing in the planner's replacements when triggers fire, and
// returns the materialized output with the reoptimization report. pred
// supplies the optimizer's per-node estimates for the initial plan; w
// prices the observed counters in the same units.
//
// Checkpoints land exactly after an emitted entry, so a splice always
// divides the segment span into [start, p] (consumed, already emitted)
// and [p+1, end] (handed to the new plan): by Thm. 3.1 the
// concatenation is record-for-record the static evaluation.
func Run(p exec.Plan, span seq.Span, cfg Config, pred func(exec.Plan) exec.PredictedCost,
	w exec.CostWeights, planner Planner) (*seq.Materialized, *Report, error) {
	rep := &Report{}
	schema := p.Info().Schema
	if span.IsEmpty() {
		out, err := exec.Run(p, span)
		return out, rep, err
	}
	if !span.Bounded() {
		return nil, nil, fmt.Errorf("reopt: monitored run over unbounded span %v", span)
	}
	interval := cfg.interval()
	var entries []seq.Entry
	curPlan, curSpan, curPred := p, span, pred
	curMode := StrategySignature(p)
	forcedPending := cfg.ForceAt != nil

	for {
		instr, root := exec.Instrument(curPlan, curPred)
		cur := instr.Scan(curSpan)
		consumed := curSpan.Start - 1
		nextCheck := curSpan.Start + interval - 1
		segStartRows := len(entries)
		var spliced *Segment
		var trig Trigger
		for {
			pos, rec, ok := cur.Next()
			if !ok {
				break
			}
			entries = append(entries, seq.Entry{Pos: pos, Rec: rec.Clone()})
			consumed = pos
			force := forcedPending && pos >= *cfg.ForceAt
			check := consumed >= nextCheck
			if !force && !check {
				continue
			}
			if check {
				rep.Checkpoints++
				for nextCheck <= consumed {
					nextCheck += interval
				}
			}
			if consumed >= curSpan.End {
				continue // nothing remains to replan
			}
			if cfg.MaxSwitches > 0 && len(rep.Switches) >= cfg.MaxSwitches {
				continue
			}
			t, hit := evaluate(root, curSpan, consumed, w, cfg.Threshold)
			if force {
				t.Forced, hit = true, true
			}
			if !hit {
				continue
			}
			if force {
				forcedPending = false
			}
			remaining := seq.Span{Start: consumed + 1, End: curSpan.End}
			prefix := seq.Span{Start: curSpan.Start, End: consumed}
			mustSplice := t.Forced || cfg.Threshold == 0
			seg, err := planner.Replan(remaining, prefix, root, mustSplice)
			if err != nil {
				cur.Close()
				return nil, nil, fmt.Errorf("reopt: replanning %v: %w", remaining, err)
			}
			if seg == nil {
				continue // planner declined: same mode, keep streaming
			}
			spliced, trig = seg, t
			break
		}
		err := cur.Err()
		cur.Close()
		if err != nil {
			return nil, nil, err
		}
		root.Finalize()
		if spliced == nil {
			rep.Segments = append(rep.Segments, SegmentReport{
				Span: curSpan, Plan: curPlan, Mode: curMode, K: 1,
				Rows: int64(len(entries) - segStartRows), Metrics: root,
			})
			break
		}
		prefix := seq.Span{Start: curSpan.Start, End: consumed}
		rep.Segments = append(rep.Segments, SegmentReport{
			Span: prefix, Plan: curPlan, Mode: curMode, K: 1,
			Rows: int64(len(entries) - segStartRows), Metrics: root,
		})
		newK := 1
		if spliced.Decision.Parallel() {
			newK = spliced.Decision.K
		}
		rep.Switches = append(rep.Switches, Switch{
			At: consumed, Trigger: trig,
			OldMode: curMode, NewMode: spliced.Mode, NewK: newK,
		})
		if newK > 1 {
			// A revised-parallelism switch: the tail runs span-partitioned
			// on workers; monitoring ends (workers have private metric
			// shards, not a single live tree to checkpoint).
			out, err := parallel.Run(spliced.Plan, spliced.Span, spliced.Decision)
			if err != nil {
				return nil, nil, err
			}
			tail := out.Entries()
			entries = append(entries, tail...)
			rep.Segments = append(rep.Segments, SegmentReport{
				Span: spliced.Span, Plan: spliced.Plan, Mode: spliced.Mode,
				K: newK, Rows: int64(len(tail)),
			})
			break
		}
		curPlan, curSpan, curPred, curMode = spliced.Plan, spliced.Span, spliced.Pred, spliced.Mode
	}
	out, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// evaluate walks the live metrics tree and returns the worst-error
// trigger at or beyond the threshold. The prediction side is each
// node's cumulative predicted stream cost pro-rated to the fraction of
// the segment span consumed; the actual side prices the node's
// accumulated counters. A zero threshold always triggers (on the node
// with the largest relative error).
func evaluate(root *exec.NodeMetrics, span seq.Span, consumed seq.Pos,
	w exec.CostWeights, threshold float64) (Trigger, bool) {
	if threshold < 0 {
		threshold = DefaultThreshold
	}
	done := seq.Span{Start: span.Start, End: consumed}
	frac := float64(done.Len()) / float64(span.Len())
	if frac > 1 {
		frac = 1
	}
	var best Trigger
	hit := false
	root.Walk(func(n *exec.NodeMetrics, _ int) {
		if !n.Predicted.Known {
			return
		}
		predFrac := n.Predicted.Stream * frac
		actual := n.ActualCost(w)
		denom := predFrac
		if denom < 1 {
			denom = 1
		}
		rel := math.Abs(actual-predFrac) / denom
		if rel > threshold || threshold == 0 {
			if !hit || rel > best.RelErr {
				best = Trigger{Node: n.Label, Predicted: predFrac, Actual: actual, RelErr: rel}
				hit = true
			}
		}
	})
	return best, hit
}
