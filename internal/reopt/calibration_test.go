package reopt

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/storage"
)

// syntheticMetrics fabricates a finalized metrics node whose exclusive
// time follows exact per-unit costs, so the regression has a known
// ground truth to recover.
func syntheticMetrics(rng *rand.Rand, seqNs, randNs, recNs, cacheNs float64) *exec.NodeMetrics {
	seqPages := int64(rng.Intn(200) + 1)
	randPages := int64(rng.Intn(50))
	rows := int64(rng.Intn(2000))
	cacheOps := int64(rng.Intn(20000))
	ns := float64(seqPages)*seqNs + float64(randPages)*randNs +
		float64(rows)*recNs + float64(cacheOps)*cacheNs
	return &exec.NodeMetrics{
		Label:     "synthetic",
		Pages:     storage.StatsSnapshot{SeqPages: seqPages, RandPages: randPages},
		HasPages:  true,
		ScanRows:  rows,
		ScanTime:  time.Duration(ns),
		CachePuts: cacheOps,
	}
}

func TestCalibrationRecoversKnownConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := &Calibration{}
	// Ground truth: seq page 1000ns, rand page 6000ns, record 12ns,
	// cache op 4ns — deliberately NOT the default ratios the ridge
	// uses as its prior, so recovery proves the data overrides the
	// prior, not that the prior echoes back.
	for i := 0; i < 400; i++ {
		c.Observe(syntheticMetrics(rng, 1000, 6000, 12, 4))
	}
	if !c.Ready() {
		t.Fatalf("not ready after %d samples", c.Samples())
	}
	k, ok := c.Constants()
	if !ok {
		t.Fatal("constants not derivable")
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"rand_page", k.RandPage, 6.0},
		{"per_record", k.PerRecord, 0.012},
		{"cache_access", k.CacheAccess, 0.004},
		{"ns_per_unit", k.NsPerUnit, 1000},
	}
	for _, ck := range checks {
		if rel := math.Abs(ck.got-ck.want) / ck.want; rel > 0.05 {
			t.Errorf("%s = %v, want %v (±5%%)", ck.name, ck.got, ck.want)
		}
	}
}

func TestCalibrationTooFewSamples(t *testing.T) {
	c := &Calibration{}
	rng := rand.New(rand.NewSource(1))
	c.Observe(syntheticMetrics(rng, 1000, 4000, 5, 2))
	if c.Ready() {
		t.Errorf("ready with %d samples, min is %d", c.Samples(), minSamples)
	}
	if _, ok := c.Constants(); ok {
		t.Error("constants derived from a single observation")
	}
}

func TestCalibrationSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := &Calibration{}
	for i := 0; i < 100; i++ {
		c.Observe(syntheticMetrics(rng, 900, 3500, 4, 3))
	}
	want, ok := c.Constants()
	if !ok {
		t.Fatal("constants not derivable before save")
	}
	path := filepath.Join(t.TempDir(), "calibration.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Samples() != c.Samples() {
		t.Errorf("samples = %d, want %d", loaded.Samples(), c.Samples())
	}
	got, ok := loaded.Constants()
	if !ok {
		t.Fatal("constants not derivable after load")
	}
	if got != want {
		t.Errorf("constants drifted across round trip:\n got %+v\nwant %+v", got, want)
	}
	// The regression continues from the loaded state.
	loaded.Observe(syntheticMetrics(rng, 900, 3500, 4, 3))
	if loaded.Samples() != c.Samples()+1 {
		t.Errorf("loaded store did not keep accumulating")
	}
}

func TestCalibrationLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCalibration(bad); err == nil {
		t.Error("parse error not reported")
	}
	if _, err := LoadCalibration(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file not reported")
	}
}

// TestCalibrationConcurrent hammers one Calibration from concurrent
// runs — observers folding traces while readers derive constants and
// save snapshots. Run under -race in CI.
func TestCalibrationConcurrent(t *testing.T) {
	c := &Calibration{}
	dir := t.TempDir()
	var wg sync.WaitGroup
	const writers, readers, rounds = 8, 4, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				c.Observe(syntheticMetrics(rng, 1000, 4000, 5, 2))
			}
		}(int64(w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			path := filepath.Join(dir, "cal.json")
			for i := 0; i < rounds; i++ {
				if k, ok := c.Constants(); ok {
					if math.IsNaN(k.RandPage) || k.RandPage <= 0 {
						t.Errorf("mid-run constants degenerate: %+v", k)
						return
					}
				}
				c.Samples()
				if i%50 == 0 {
					if err := c.Save(path); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if got, want := c.Samples(), int64(writers*rounds); got != want {
		t.Errorf("samples = %d, want %d (lost updates)", got, want)
	}
	k, ok := c.Constants()
	if !ok {
		t.Fatal("constants not derivable after concurrent load")
	}
	if rel := math.Abs(k.RandPage-4.0) / 4.0; rel > 0.05 {
		t.Errorf("rand_page after concurrent observes = %v, want ≈4", k.RandPage)
	}
}
