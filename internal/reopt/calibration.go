package reopt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/exec"
)

// nFeatures is the regression arity: sequential pages, random pages,
// records moved, cache operations — the per-node exclusive counters the
// EXPLAIN ANALYZE layer attributes.
const nFeatures = 4

// minSamples is the observation count below which Constants refuses to
// derive anything (the normal equations are too ill-conditioned to
// trust).
const minSamples = 8

// ridgeLambda is the shrinkage applied to the standardized normal
// equations (unit diagonal), trading a fraction of a percent of bias
// on well-conditioned fits for stability under collinear counters.
const ridgeLambda = 1e-2

// priorConstants are the §4 default cost constants — SeqPage 1,
// RandPage 4, PerRecord 0.005, CacheAccess 0.002 — used as the ridge
// prior: directions of the feature space the traces do not identify
// (collinear or unobserved counters) shrink toward the defaults scaled
// to the data, not toward zero, so a thin or degenerate sample leaves
// the cost model where it started instead of blowing it up.
var priorConstants = [nFeatures]float64{1, 4.0, 0.005, 0.002}

// Calibration regresses the cost-model constants from completed runs'
// EXPLAIN ANALYZE traces: each finalized metrics node contributes one
// observation "exclusive wall time ≈ a·seqPages + b·randPages +
// c·records + d·cacheOps", accumulated as normal equations so the store
// is O(1) in space no matter how many runs feed it. The derived
// constants are relative to the sequential-page unit (SeqPage stays 1,
// the paper's §4 convention), so they slot directly into CostParams;
// NsPerUnit converts predicted cost units back to nanoseconds.
//
// All methods are safe for concurrent use: runs observe and queries
// derive under one mutex.
//
// mu is a leaf in the declared lock order: critical sections are pure
// accumulator arithmetic.
//
//seqvet:lockorder leaf reopt.Calibration.mu
type Calibration struct {
	mu  sync.Mutex
	xtx [nFeatures][nFeatures]float64
	xty [nFeatures]float64
	n   int64
}

// Constants are the regressed cost-model weights, relative to one
// sequential page read (SeqPage ≡ 1).
type Constants struct {
	RandPage    float64 `json:"rand_page"`
	PerRecord   float64 `json:"per_record"`
	CacheAccess float64 `json:"cache_access"`
	// NsPerUnit is the regressed wall time of one cost unit.
	NsPerUnit float64 `json:"ns_per_unit"`
	// Samples is the observation count behind the fit.
	Samples int64 `json:"samples"`
}

// Map returns the constants keyed by name, the form the planlint
// reopt/calibration-finite invariant checks.
func (k Constants) Map() map[string]float64 {
	return map[string]float64{
		"rand_page":    k.RandPage,
		"per_record":   k.PerRecord,
		"cache_access": k.CacheAccess,
		"ns_per_unit":  k.NsPerUnit,
	}
}

// Observe folds one finalized metrics tree into the regression. Call it
// after Finalize (the exported counters must be populated); nodes with
// no attributable work contribute nothing.
func (c *Calibration) Observe(root *exec.NodeMetrics) {
	type row struct {
		x [nFeatures]float64
		y float64
	}
	var rows []row
	root.Walk(func(n *exec.NodeMetrics, _ int) {
		x := [nFeatures]float64{
			float64(n.Pages.SeqPages),
			float64(n.Pages.RandPages),
			float64(n.ScanRows + n.ProbeRows),
			float64(n.CachePuts + n.CacheHits + n.CacheMisses),
		}
		if x[0] == 0 && x[1] == 0 && x[2] == 0 && x[3] == 0 {
			return
		}
		rows = append(rows, row{x: x, y: float64(n.ExclusiveTime().Nanoseconds())})
	})
	if len(rows) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range rows {
		for i := 0; i < nFeatures; i++ {
			for j := 0; j < nFeatures; j++ {
				c.xtx[i][j] += r.x[i] * r.x[j]
			}
			c.xty[i] += r.x[i] * r.y
		}
		c.n++
	}
}

// Samples returns the number of per-node observations accumulated.
func (c *Calibration) Samples() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Ready reports whether enough observations exist to derive constants.
func (c *Calibration) Ready() bool { return c.Samples() >= minSamples }

// Constants solves the accumulated normal equations (ridge-regularized
// least squares) and returns the cost constants relative to the
// sequential-page unit, clamped positive and finite. ok is false when
// fewer than minSamples observations exist or the system is degenerate.
func (c *Calibration) Constants() (Constants, bool) {
	c.mu.Lock()
	xtx, xty, n := c.xtx, c.xty, c.n
	c.mu.Unlock()
	if n < minSamples {
		return Constants{}, false
	}
	maxDiag := 0.0
	for i := 0; i < nFeatures; i++ {
		if xtx[i][i] > maxDiag {
			maxDiag = xtx[i][i]
		}
	}
	if maxDiag <= 0 {
		return Constants{}, false
	}
	// Anchor the prior to the data's clock: the best global ns-per-unit
	// scale s for the default constants (a one-dimensional least-squares
	// fit computable from the accumulated normal equations alone).
	var xmY, xmXm float64
	for i := 0; i < nFeatures; i++ {
		xmY += priorConstants[i] * xty[i]
		for j := 0; j < nFeatures; j++ {
			xmXm += priorConstants[i] * xtx[i][j] * priorConstants[j]
		}
	}
	if xmXm <= 0 {
		return Constants{}, false
	}
	s := xmY / xmXm
	if !(s > 0) {
		return Constants{}, false
	}
	// Ridge toward the scaled prior with per-feature standardization:
	// directions the traces identify move to the data, collinear or
	// unobserved directions stay at the defaults. Without the prior,
	// collinear counters — records moved tracks sequential pages times
	// the records-per-page factor — let the unregularized solve assign
	// the whole cost to one of them with an arbitrary sign.
	a, b := xtx, xty
	for i := 0; i < nFeatures; i++ {
		lam := ridgeLambda * xtx[i][i]
		if xtx[i][i] <= 0 {
			lam = ridgeLambda * maxDiag
		}
		a[i][i] += lam
		b[i] += lam * s * priorConstants[i]
	}
	beta, ok := solve(a, b)
	if !ok {
		return Constants{}, false
	}
	// A coefficient the fit drives to zero or negative is
	// indistinguishable from free at timer granularity (simulated page
	// reads cost no wall time beyond the records they deliver); snap it
	// back to the scaled default instead of a vanishing floor, so one
	// collapsed coefficient cannot blow up every ratio derived from it.
	maxBeta := maxOf(beta[:])
	if maxBeta <= 0 || math.IsNaN(maxBeta) || math.IsInf(maxBeta, 0) {
		return Constants{}, false
	}
	floor := 1e-9 * maxBeta
	for i := range beta {
		if !(beta[i] > floor) { // also catches NaN
			beta[i] = s * priorConstants[i]
		}
	}
	k := Constants{
		RandPage:    clampRatio(beta[1] / beta[0]),
		PerRecord:   clampRatio(beta[2] / beta[0]),
		CacheAccess: clampRatio(beta[3] / beta[0]),
		NsPerUnit:   beta[0],
		Samples:     n,
	}
	return k, true
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// clampRatio bounds a derived relative constant to a sane positive
// finite range (planlint reopt/calibration-finite rechecks downstream).
func clampRatio(r float64) float64 {
	if math.IsNaN(r) || r < 1e-9 {
		return 1e-9
	}
	if r > 1e9 || math.IsInf(r, 1) {
		return 1e9
	}
	return r
}

// solve performs Gaussian elimination with partial pivoting on the
// (small, symmetric) system A·x = b.
func solve(a [nFeatures][nFeatures]float64, b [nFeatures]float64) ([nFeatures]float64, bool) {
	for col := 0; col < nFeatures; col++ {
		pivot := col
		for r := col + 1; r < nFeatures; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-300 {
			return b, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < nFeatures; r++ {
			f := a[r][col] / a[col][col]
			for k := col; k < nFeatures; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	var x [nFeatures]float64
	for i := nFeatures - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < nFeatures; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, true
}

// calibrationState is the JSON persistence format: the raw normal
// equations (so later runs continue the same regression) plus the
// derived constants at save time for human inspection.
type calibrationState struct {
	XtX       [nFeatures][nFeatures]float64 `json:"xtx"`
	XtY       [nFeatures]float64            `json:"xty"`
	N         int64                         `json:"n"`
	Constants *Constants                    `json:"constants,omitempty"`
}

// Save writes the calibration state as JSON. The file sits next to the
// store it calibrates; Load resumes the regression from it.
func (c *Calibration) Save(path string) error {
	var st calibrationState
	c.mu.Lock()
	st.XtX, st.XtY, st.N = c.xtx, c.xty, c.n
	c.mu.Unlock()
	if k, ok := c.Constants(); ok {
		st.Constants = &k
	}
	data, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCalibration reads a calibration state saved by Save.
func LoadCalibration(path string) (*Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st calibrationState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("reopt: parsing calibration %s: %w", path, err)
	}
	if st.N < 0 {
		return nil, fmt.Errorf("reopt: calibration %s has negative sample count %d", path, st.N)
	}
	c := &Calibration{xtx: st.XtX, xty: st.XtY, n: st.N}
	return c, nil
}
