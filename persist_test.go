package seqproc_test

import (
	"testing"

	seqproc "repro"
)

func persistData(t *testing.T, n int) *seqproc.SequenceData {
	t.Helper()
	schema := seqproc.MustSchema(seqproc.Field{Name: "v", Type: seqproc.TInt})
	entries := make([]seqproc.Entry, n)
	for i := range entries {
		entries[i] = seqproc.Entry{Pos: seqproc.Pos(i + 1), Rec: seqproc.Record{seqproc.Int(int64(i + 1))}}
	}
	data, err := seqproc.NewData(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The satellite round-trip: create, append, materialize a view, close,
// reopen — sequences, the appended record and the view all survive, and
// the recovered view serves matching queries.
func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := seqproc.Open(dir, &seqproc.DiskOptions{PageSize: 512, PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Persistent(); !ok {
		t.Fatal("Open'd database must report persistent")
	}
	if err := db.CreateSequence("s", persistData(t, 30), seqproc.Sparse); err != nil {
		t.Fatal(err)
	}
	if err := db.Append("s", 31, seqproc.Record{seqproc.Int(31)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("big", "select(s, v > 10)", seqproc.NewSpan(1, 40)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := seqproc.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Sequences(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("sequences after reopen = %v", got)
	}
	q, err := db2.Query("select(s, v > 28)")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := q.Run(seqproc.NewSpan(1, 40))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Count() != 3 {
		t.Fatalf("after reopen: %d rows, want 3 (29, 30, 31)", rs.Count())
	}
	views := db2.ListViews()
	if len(views) != 1 || views[0].Name != "big" {
		t.Fatalf("views after reopen = %+v", views)
	}
	// The recovered view answers a matching query.
	q2, err := db2.Query("select(s, v > 10)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Run(seqproc.NewSpan(1, 40)); err != nil {
		t.Fatal(err)
	}
	if views = db2.ListViews(); views[0].Hits == 0 {
		t.Fatalf("recovered view unused: %+v", views[0])
	}
}

// Appending after a view is materialized drops the view durably: it
// must not resurrect on reopen. Reorganize survives too.
func TestOpenInvalidationAndReorganize(t *testing.T) {
	dir := t.TempDir()
	db, err := seqproc.Open(dir, &seqproc.DiskOptions{PageSize: 512, PoolPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSequence("s", persistData(t, 16), seqproc.Sparse); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize("v1", "select(s, v > 3)", seqproc.NewSpan(1, 20)); err != nil {
		t.Fatal(err)
	}
	if err := db.Append("s", 17, seqproc.Record{seqproc.Int(17)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Reorganize("s", seqproc.Dense); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := seqproc.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if views := db2.ListViews(); len(views) != 0 {
		t.Fatalf("stale view resurrected: %+v", views)
	}
	info, err := db2.Describe("s")
	if err != nil {
		t.Fatal(err)
	}
	if info.Span.End != 17 {
		t.Fatalf("span after reopen = %v, want end 17", info.Span)
	}
	// The reorganized representation survived: O(1) probes mean the
	// optimizer sees a dense store; check via page stats of a probe.
	q, err := db2.Query("s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Probe(seqproc.NewSpan(1, 17), []seqproc.Pos{9}); err != nil {
		t.Fatal(err)
	}
	st, err := db2.TakePageStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.RandPages != 1 {
		t.Fatalf("dense probe touched %d random pages, want 1 (got %s)", st.RandPages, st)
	}
}

// DropSequence and DropView persist; GC reclaims superseded versions.
func TestOpenDropAndGC(t *testing.T) {
	dir := t.TempDir()
	db, err := seqproc.Open(dir, &seqproc.DiskOptions{PageSize: 512, PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSequence("a", persistData(t, 8), seqproc.Sparse); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSequence("b", persistData(t, 8), seqproc.Sparse); err != nil {
		t.Fatal(err)
	}
	for i := 9; i < 25; i++ {
		if err := db.Append("a", seqproc.Pos(i), seqproc.Record{seqproc.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := db.GC(); v == 0 {
		t.Fatal("GC reclaimed nothing after 16 appends")
	}
	if err := db.DropSequence("b"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := seqproc.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Sequences(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("sequences after drop+reopen = %v", got)
	}
	q, err := db2.Query("a")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := q.Run(seqproc.NewSpan(1, 30))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Count() != 24 {
		t.Fatalf("recovered %d records, want 24", rs.Count())
	}
}

// In-memory databases keep their semantics: Close and GC are no-ops,
// Checkpoint errors, Persistent is false.
func TestInMemoryDiskAPINoOps(t *testing.T) {
	db := seqproc.New()
	if _, ok := db.Persistent(); ok {
		t.Fatal("in-memory database claims persistence")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("in-memory Checkpoint must error")
	}
	if v, p := db.GC(); v != 0 || p != 0 {
		t.Fatalf("in-memory GC = %d, %d", v, p)
	}
}
