package seqproc

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Images and
// reference-style links are not used in this repo.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// mdHeading matches ATX headings, whose GitHub anchor slugs intra-repo
// fragment links resolve against.
var mdHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+)$`)

// TestDocLinks walks every markdown file in the repository and verifies
// each intra-repo link: the target file exists, and when the link
// carries a #fragment, the target contains a heading with that GitHub
// anchor slug. External links (scheme-qualified) are out of scope.
func TestDocLinks(t *testing.T) {
	var pages []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "bin" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			pages = append(pages, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("no markdown files found; is the test running from the repo root?")
	}

	anchors := map[string]map[string]bool{} // file -> slug set, lazily built
	anchorsOf := func(file string) map[string]bool {
		if got, ok := anchors[file]; ok {
			return got
		}
		set := map[string]bool{}
		if raw, err := os.ReadFile(file); err == nil {
			set = headingAnchors(string(raw))
		}
		anchors[file] = set
		return set
	}

	for _, page := range pages {
		raw, err := os.ReadFile(page)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, fragment, _ := strings.Cut(target, "#")
			resolved := page // self-link
			if file != "" {
				resolved = filepath.Join(filepath.Dir(page), file)
				if info, err := os.Stat(resolved); err != nil {
					t.Errorf("%s links to %q: %v", page, target, err)
					continue
				} else if info.IsDir() {
					continue // directory links render fine on GitHub
				}
			}
			if fragment != "" && strings.EqualFold(filepath.Ext(resolved), ".md") {
				if !anchorsOf(resolved)[fragment] {
					t.Errorf("%s links to %q: no heading in %s has anchor #%s",
						page, target, resolved, fragment)
				}
			}
		}
	}
}

// headingAnchors returns the set of anchors a markdown document
// exposes, including GitHub's disambiguation rule for repeated
// headings: the second occurrence of a slug gets a -1 suffix, the
// third -2, and so on.
func headingAnchors(raw string) map[string]bool {
	set := map[string]bool{}
	count := map[string]int{}
	for _, m := range mdHeading.FindAllStringSubmatch(raw, -1) {
		slug := anchorSlug(m[1])
		if n := count[slug]; n > 0 {
			set[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			set[slug] = true
		}
		count[slug]++
	}
	return set
}

func TestHeadingAnchorDuplicates(t *testing.T) {
	got := headingAnchors("# Setup\n\n## Example\n\ntext\n\n## Example\n\n## Example\n\n## Tear Down\n")
	for _, want := range []string{"setup", "example", "example-1", "example-2", "tear-down"} {
		if !got[want] {
			t.Errorf("anchor %q missing from %v", want, got)
		}
	}
	if got["example-3"] {
		t.Error("anchor example-3 should not exist for three occurrences")
	}
}

// anchorSlug reproduces GitHub's heading-to-anchor rule: strip inline
// formatting, lowercase, drop everything but letters, digits, spaces
// and hyphens, then turn spaces into hyphens.
func anchorSlug(heading string) string {
	heading = strings.ReplaceAll(heading, "`", "")
	heading = strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
