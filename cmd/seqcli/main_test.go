package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	seqproc "repro"
)

func newTestCLI() (*cli, *bytes.Buffer) {
	var buf bytes.Buffer
	return &cli{db: seqproc.New(), out: &buf}, &buf
}

func TestCLIGenListDescribe(t *testing.T) {
	c, buf := newTestCLI()
	if err := c.exec("gen table1 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.exec("list"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ibm", "dec", "hp", "density"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := c.exec("describe ibm"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "span=[200, 500]") {
		t.Errorf("describe = %q", buf.String())
	}
	if err := c.exec("describe"); err == nil {
		t.Error("describe without name must fail")
	}
	if err := c.exec("describe ghost"); err == nil {
		t.Error("describe unknown must fail")
	}
}

func TestCLIGenStockAndEvents(t *testing.T) {
	c, buf := newTestCLI()
	if err := c.exec("gen stock acme 1 100 0.5 7"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "created acme") {
		t.Errorf("gen output = %q", buf.String())
	}
	if err := c.exec("gen events ticks 1 100 0.3"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"gen", "gen nothing x 1 2 3", "gen stock x", "gen stock x a b c",
		"gen table1", "gen table1 x", "gen stock x 1 100 0.5 seed",
	} {
		if err := c.exec(bad); err == nil {
			t.Errorf("%q must fail", bad)
		}
	}
}

func TestCLIQueryAndExplain(t *testing.T) {
	c, buf := newTestCLI()
	if err := c.exec("gen table1 1"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := c.exec("select(compose(ibm, hp), ibm.close > hp.close) over 1 750"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rows)") || !strings.Contains(out, "ibm.close") {
		t.Errorf("query output = %q", out)
	}
	buf.Reset()
	if err := c.exec("explain sum(ibm, close, 6) over 200 500"); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "stream cost") || !strings.Contains(out, "agg-") {
		t.Errorf("explain output = %q", out)
	}
	// Errors.
	if err := c.exec("select(ghost, x > 1) over 1 10"); err == nil {
		t.Error("unknown sequence must fail")
	}
	if err := c.exec("ibm"); err == nil {
		t.Error("missing range must fail")
	}
	if err := c.exec("ibm over 1"); err == nil {
		t.Error("incomplete range must fail")
	}
	if err := c.exec("ibm over a b"); err == nil {
		t.Error("non-numeric range must fail")
	}
}

func TestCLIRowLimit(t *testing.T) {
	c, buf := newTestCLI()
	if err := c.exec("gen stock big 1 200 1.0"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := c.exec("big over 1 200"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "more rows") {
		t.Errorf("expected row-limit marker:\n%s", buf.String())
	}
}

func TestCLIHelp(t *testing.T) {
	c, buf := newTestCLI()
	if err := c.exec("help"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SEQL operators") {
		t.Error("help output missing operator list")
	}
}

func TestSplitOver(t *testing.T) {
	src, span, err := splitOver("select(a, x > 1) over 10 20")
	if err != nil || src != "select(a, x > 1)" || span != seqproc.NewSpan(10, 20) {
		t.Errorf("splitOver = %q %v %v", src, span, err)
	}
	// "over" inside the query text: last occurrence wins.
	src, _, err = splitOver("select(rollover, x > 1) over 1 2")
	if err != nil || !strings.Contains(src, "rollover") {
		t.Errorf("splitOver = %q %v", src, err)
	}
}

func TestCLILoadSave(t *testing.T) {
	dir := t.TempDir()
	src := dir + "/in.csv"
	if err := os.WriteFile(src, []byte("pos,close\n1,10.5\n2,11.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, buf := newTestCLI()
	if err := c.exec("load ticks " + src); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "loaded ticks: 2 records") {
		t.Errorf("load output = %q", buf.String())
	}
	buf.Reset()
	if err := c.exec("select(ticks, close > 11.0) over 1 2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(1 rows)") {
		t.Errorf("query output = %q", buf.String())
	}
	dst := dir + "/out.csv"
	if err := c.exec("save ticks " + dst); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(out), "pos,close") {
		t.Errorf("saved = %q", out)
	}
	// Errors.
	if err := c.exec("load x"); err == nil {
		t.Error("load without file must fail")
	}
	if err := c.exec("load y /nonexistent.csv"); err == nil {
		t.Error("missing file must fail")
	}
	if err := c.exec("save ghost " + dst); err == nil {
		t.Error("saving unknown sequence must fail")
	}
	if err := c.exec("save"); err == nil {
		t.Error("save without args must fail")
	}
}

func TestCLIMaterializedViews(t *testing.T) {
	c, buf := newTestCLI()
	if err := c.exec("gen table1 1"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := c.exec("materialize crosses as select(compose(ibm, hp), ibm.close > hp.close) over 1 750"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "materialized crosses:") {
		t.Errorf("materialize output = %q", buf.String())
	}
	buf.Reset()
	// A repeated query is answered through the view; EXPLAIN shows it.
	if err := c.exec("explain select(compose(ibm, hp), ibm.close > hp.close) over 1 750"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `scan "crosses"`) {
		t.Errorf("explain does not use the view:\n%s", buf.String())
	}
	if err := c.exec("select(compose(ibm, hp), ibm.close > hp.close) over 1 750"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := c.exec("show views"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "crosses") || !strings.Contains(out, "hits=") {
		t.Errorf("show views = %q", out)
	}
	buf.Reset()
	if err := c.exec("drop view crosses"); err != nil {
		t.Fatal(err)
	}
	if err := c.exec("show views"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no materialized views") {
		t.Errorf("after drop: %q", buf.String())
	}
	// Errors.
	for _, bad := range []string{
		"materialize v as ibm",         // missing range
		"materialize as ibm over 1 10", // missing name
		"materialize two words as ibm over 1 10",
		"drop view ghost",
		"drop view",
		"show",
	} {
		if err := c.exec(bad); err == nil {
			t.Errorf("%q must fail", bad)
		}
	}
}

// The durable-database round trip: open, create data and a view, close,
// reopen — everything recovers, and epoch-validity rules carry over (a
// view invalidated by an append before close stays gone).
func TestCLIOpenCloseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, buf := newTestCLI()
	if err := c.exec("open " + dir); err != nil {
		t.Fatal(err)
	}
	if err := c.exec("open " + dir); err == nil {
		t.Error("double open must fail")
	}
	for _, cmd := range []string{
		"gen stock acme 1 200 0.8 7",
		"gen stock beta 1 200 0.8 9",
		"materialize keep as select(acme, close > 0.0) over 1 200",
		"materialize stale as select(beta, close > 0.0) over 1 200",
		"append beta 201 1.2 1.5 100",
		"checkpoint",
	} {
		if err := c.exec(cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	buf.Reset()
	if err := c.exec("close"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "closed "+dir) {
		t.Errorf("close output = %q", buf.String())
	}
	if err := c.exec("close"); err == nil {
		t.Error("close without open database must fail")
	}

	buf.Reset()
	if err := c.exec("open " + dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2 sequence(s), 1 view(s)") {
		t.Errorf("reopen summary = %q", buf.String())
	}
	buf.Reset()
	if err := c.exec("show views"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "keep") {
		t.Errorf("view %q missing after reopen: %q", "keep", out)
	}
	if strings.Contains(out, "stale") {
		t.Errorf("invalidated view resurrected: %q", out)
	}
	// The appended record survived.
	buf.Reset()
	if err := c.exec("describe beta"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "201") {
		t.Errorf("describe beta after reopen = %q", buf.String())
	}
	c.shutdown()
}
