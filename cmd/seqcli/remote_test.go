package main

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"repro/internal/seq"
	"repro/internal/server"
	"repro/internal/storage"
)

// startRemote boots an in-process seqd engine on a loopback listener.
func startRemote(t *testing.T) string {
	t.Helper()
	schema, err := seq.NewSchema(seq.Field{Name: "v", Type: seq.TInt})
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]seq.Entry, 20)
	for i := range entries {
		entries[i] = seq.Entry{Pos: seq.Pos(i + 1), Rec: seq.Record{seq.Int(int64(i + 1))}}
	}
	data, err := seq.NewMaterialized(schema, entries)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Verify: true})
	if err := srv.CreateSequence("s", data, storage.KindSparse); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// TestConnectRepl drives the full remote shell through one scripted
// session: catalog, query, append, views, options, errors.
func TestConnectRepl(t *testing.T) {
	addr := startRemote(t)
	script := strings.Join([]string{
		"help",
		"list",
		"describe s",
		"select(s, v > 15) over 1 20",
		"append s 21 21",
		"select(s, v > 15) over 1 30",
		"explain select(s, v > 15) over 1 20",
		"explain analyze select(s, v > 15) over 1 20",
		"materialize hot as select(s, v > 5) over 1 20",
		"show views",
		"set parallelism 2",
		"set views off",
		"drop view hot",
		"epoch",
		"subscribe select(s, v > 15) over 1 100",
		"deltas", // nothing queued beyond the drained snapshot
		"append s 22 22",
		"deltas", // the append's delta arrived during the append turn
		"unsubscribe 1",
		"describe nope",        // error, stays usable
		"select(s, nope) over", // parse error of the shell itself
		"list",
		"quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := connectRepl(addr, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"connected to seqd",
		"remote commands",
		"s: schema=(v int)",
		"(5 rows @epoch 0",                  // first query, pre-append
		"visible from epoch 1",              // append ack
		"(6 rows @epoch 1",                  // second query sees the append
		"plan @epoch",                       // explain
		"server counters:",                  // explain analyze counter block
		`materialized "hot"`,                // materialize ack
		"valid from epoch",                  // show views
		"parallelism = 2",                   // set option
		"views = false",                     // set option
		`dropped view "hot"`,                // drop ack
		"epoch 1 (as of the last response)", // epoch command
		"subscription 1 (v int) at epoch 1; initial content follows",
		"delta sub=1 epoch=1 region=[1,100]: 6 record(s)", // initial snapshot
		"no pending deltas",                               // idle deltas command
		"delta sub=1 epoch=2 region=[22,22]: 1 record(s)", // the append's delta
		"unsubscribed 1",
		`error: seqd: not-found`,            // server-side error surfaced
		"error: expected",                   // local parse error
	} {
		if !strings.Contains(got, want) {
			t.Errorf("session output missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full session:\n%s", got)
	}
}
