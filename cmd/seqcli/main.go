// Command seqcli is an interactive shell for the sequence database: it
// generates synthetic base sequences, runs SEQL queries over ranges, and
// explains the optimizer's plans.
//
//	$ seqcli
//	seq> gen table1 1
//	seq> list
//	seq> select(compose(ibm, hp), ibm.close > hp.close) over 1 750
//	seq> explain sum(ibm, close, 6) over 200 500
//	seq> describe ibm
//	seq> quit
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	seqproc "repro"
	"repro/internal/reopt"
	"repro/internal/seq"
	"repro/internal/workload"
)

func main() {
	// `seqcli connect host:port` attaches to a running seqd daemon
	// instead of the in-process database (see remote.go).
	if len(os.Args) == 3 && os.Args[1] == "connect" {
		if err := connectRepl(os.Args[2], os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "seqcli: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: seqcli [connect host:port]")
		os.Exit(1)
	}
	cli := &cli{db: seqproc.New(), out: os.Stdout}
	fmt.Println("seqcli — sequence query processing (SIGMOD 1994 reproduction)")
	fmt.Println(`type "help" for commands`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("seq> ")
		if !scanner.Scan() {
			cli.shutdown()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			cli.shutdown()
			return
		}
		if err := cli.exec(line); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

type cli struct {
	db   *seqproc.DB
	out  io.Writer
	opts seqproc.Options
	// reoptThresholdSet distinguishes an explicit "set reopt threshold 0"
	// (replan at every checkpoint) from the unset zero value.
	reoptThresholdSet bool
}

// shutdown checkpoints and closes any open durable database before the
// shell exits, so a clean quit never needs WAL replay on the next open.
func (c *cli) shutdown() {
	if _, ok := c.db.Persistent(); ok {
		if err := c.db.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "seqcli: close: %v\n", err)
		}
	}
}

func (c *cli) exec(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		c.help()
		return nil
	case "list":
		for _, name := range c.db.Sequences() {
			info, _ := c.db.Describe(name)
			fmt.Fprintf(c.out, "%-12s %v span=%v density=%.2f\n",
				name, info.Schema, info.Span, info.Density)
		}
		return nil
	case "describe":
		if len(fields) != 2 {
			return fmt.Errorf("usage: describe <name>")
		}
		info, err := c.db.Describe(fields[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(c.out, "%s: schema=%v span=%v density=%.3f\n",
			fields[1], info.Schema, info.Span, info.Density)
		return nil
	case "materialize":
		return c.materialize(strings.TrimSpace(strings.TrimPrefix(line, "materialize")))
	case "show":
		if len(fields) == 2 && fields[1] == "views" {
			return c.showViews()
		}
		return fmt.Errorf("usage: show views")
	case "drop":
		if len(fields) == 3 && fields[1] == "view" {
			if err := c.db.DropView(fields[2]); err != nil {
				return err
			}
			fmt.Fprintf(c.out, "dropped view %s\n", fields[2])
			return nil
		}
		return fmt.Errorf("usage: drop view <name>")
	case "set":
		return c.set(fields[1:])
	case "gen":
		return c.gen(fields[1:])
	case "load":
		return c.load(fields[1:])
	case "save":
		return c.save(fields[1:])
	case "append":
		return c.append(fields[1:])
	case "open":
		return c.open(fields[1:])
	case "close":
		return c.closeDB(fields[1:])
	case "checkpoint":
		if len(fields) != 1 {
			return fmt.Errorf("usage: checkpoint")
		}
		if err := c.db.Checkpoint(); err != nil {
			return err
		}
		fmt.Fprintln(c.out, "checkpointed")
		return nil
	case "explain":
		rest := strings.TrimSpace(strings.TrimPrefix(line, "explain"))
		analyze := false
		if strings.HasPrefix(rest, "analyze ") {
			analyze = true
			rest = strings.TrimSpace(strings.TrimPrefix(rest, "analyze"))
		}
		src, span, err := splitOver(rest)
		if err != nil {
			return err
		}
		q, err := c.db.Query(src)
		if err != nil {
			return err
		}
		var text string
		if analyze {
			text, err = q.ExplainAnalyze(span)
		} else {
			text, err = q.Explain(span)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(c.out, text)
		return nil
	default:
		src, span, err := splitOver(line)
		if err != nil {
			return err
		}
		return c.run(src, span)
	}
}

func (c *cli) help() {
	fmt.Fprint(c.out, `commands:
  gen stock <name> <start> <end> <density> [seed]   generate a stock series
  gen events <name> <start> <end> <rate> [seed]     generate an event sequence
  gen table1 <scale>                                load the paper's Table 1 data
  load <name> <file.csv>                            load a sequence from CSV (needs a "pos" column)
  save <name> <file.csv>                            write a sequence to CSV
  append <name> <pos> <value...>                    append a record past the end of a sparse sequence
  open <dir>                                        open a durable on-disk database (created if absent)
  close                                             checkpoint and close the open database
  checkpoint                                        force a checkpoint of the open database
  set parallelism <n>                               bound span-partitioned workers (0 = auto, 1 = serial)
  set reopt on|off                                  monitor runs and replan mid-stream on cost divergence
  set reopt interval <n>                            positions between reoptimization checkpoints
  set reopt threshold <x>                           relative cost error that triggers a replan (0 = every checkpoint)
  list                                              list sequences
  describe <name>                                   show schema and meta-data
  materialize <name> as <seql> over <start> <end>   store a query result as a reusable view
  show views                                        list materialized views with hit/miss counters
  drop view <name>                                  remove a materialized view
  <seql> over <start> <end>                         run a query
  explain <seql> over <start> <end>                 show the chosen plan
  explain analyze <seql> over <start> <end>         run with per-operator metrics (see OBSERVABILITY.md)
  quit

SEQL operators:
  select(S, pred)        project(S, expr [as name], ...)
  compose(A, B [, pred]) offset(S, n)   prev(S [,k])   next(S [,k])
  sum|avg|min|max(S, col [, w | lo, hi])   count(S [, w])
  rsum|ravg|rmin|rmax(S, col)  rcount(S)      (running aggregates)
  collapse(S, avg(col), k)  expand(S, k)       (ordering domains)
  scalar functions: abs, min, max, floor, ceil, round
`)
}

// set adjusts session options: the worker bound of the span-partitioned
// executor and the mid-run reoptimizer's knobs.
func (c *cli) set(args []string) error {
	if len(args) >= 1 && args[0] == "reopt" {
		return c.setReopt(args[1:])
	}
	if len(args) != 2 || args[0] != "parallelism" {
		return fmt.Errorf("usage: set parallelism <n> | set reopt on|off|interval <n>|threshold <x>")
	}
	n, err := strconv.Atoi(args[1])
	if err != nil || n < 0 {
		return fmt.Errorf("parallelism must be a non-negative integer, got %q", args[1])
	}
	c.opts.Parallelism = n
	c.db.SetOptions(c.opts)
	switch n {
	case 0:
		fmt.Fprintln(c.out, "parallelism: automatic (bounded by GOMAXPROCS)")
	case 1:
		fmt.Fprintln(c.out, "parallelism: serial")
	default:
		fmt.Fprintf(c.out, "parallelism: up to %d workers (cost model decides)\n", n)
	}
	return nil
}

// setReopt toggles and tunes mid-run adaptive reoptimization; runs
// under "reopt on" are monitored and may splice in a replanned tail
// when predicted-vs-actual costs diverge at a checkpoint.
func (c *cli) setReopt(args []string) error {
	usage := fmt.Errorf("usage: set reopt on|off | set reopt interval <n> | set reopt threshold <x>")
	switch {
	case len(args) == 1 && (args[0] == "on" || args[0] == "off"):
		c.opts.Reopt.Enabled = args[0] == "on"
		// A zero threshold means "replan at every checkpoint" (the fuzz
		// mode), so enabling defaults it unless the user set one.
		if c.opts.Reopt.Enabled && !c.reoptThresholdSet {
			c.opts.Reopt.Threshold = reopt.DefaultThreshold
		}
		if c.opts.Reopt.Enabled {
			fmt.Fprintf(c.out, "reopt: on (checkpoint every %d positions, threshold %g)\n",
				c.reoptInterval(), c.opts.Reopt.Threshold)
		} else {
			fmt.Fprintln(c.out, "reopt: off")
		}
	case len(args) == 2 && args[0] == "interval":
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 1 {
			return fmt.Errorf("reopt interval must be a positive integer, got %q", args[1])
		}
		c.opts.Reopt.CheckEvery = int64(n)
		fmt.Fprintf(c.out, "reopt: checkpoint every %d positions\n", n)
	case len(args) == 2 && args[0] == "threshold":
		x, err := strconv.ParseFloat(args[1], 64)
		if err != nil || x < 0 {
			return fmt.Errorf("reopt threshold must be a non-negative number, got %q", args[1])
		}
		c.opts.Reopt.Threshold = x
		c.reoptThresholdSet = true
		if x == 0 {
			fmt.Fprintln(c.out, "reopt: replan at every checkpoint")
		} else {
			fmt.Fprintf(c.out, "reopt: replan when relative cost error exceeds %g\n", x)
		}
	default:
		return usage
	}
	c.db.SetOptions(c.opts)
	return nil
}

func (c *cli) reoptInterval() int64 {
	if c.opts.Reopt.CheckEvery > 0 {
		return c.opts.Reopt.CheckEvery
	}
	return reopt.DefaultCheckEvery
}

// materialize parses "<name> as <seql> over <start> <end>" and registers
// the query result as a view; later queries over covered ranges reuse it
// when the cost model prefers the view to recomputation.
func (c *cli) materialize(rest string) error {
	name, q, ok := strings.Cut(rest, " as ")
	name = strings.TrimSpace(name)
	if !ok || name == "" || strings.ContainsAny(name, " \t") {
		return fmt.Errorf("usage: materialize <name> as <seql> over <start> <end>")
	}
	src, span, err := splitOver(strings.TrimSpace(q))
	if err != nil {
		return err
	}
	vc, err := c.db.Materialize(name, src, span)
	if err != nil {
		return err
	}
	fmt.Fprintf(c.out, "materialized %s: %d records over %v (density %.3f)\n",
		vc.Name, vc.Records, vc.Span, vc.Density)
	return nil
}

func (c *cli) showViews() error {
	views := c.db.ListViews()
	if len(views) == 0 {
		fmt.Fprintln(c.out, "no materialized views")
		return nil
	}
	for _, v := range views {
		fmt.Fprintf(c.out, "%-12s span=%v records=%d density=%.3f hits=%d misses=%d\n",
			v.Name, v.Span, v.Records, v.Density, v.Hits, v.Misses)
	}
	return nil
}

func (c *cli) gen(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gen stock|events|table1 ...")
	}
	switch args[0] {
	case "table1":
		if len(args) != 2 {
			return fmt.Errorf("usage: gen table1 <scale>")
		}
		scale, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return err
		}
		ibm, dec, hp, err := workload.Table1(scale)
		if err != nil {
			return err
		}
		for name, data := range map[string]*seq.Materialized{"ibm": ibm, "dec": dec, "hp": hp} {
			kind := seqproc.Sparse
			if name == "hp" {
				kind = seqproc.Dense
			}
			if err := c.db.CreateSequence(name, data, kind); err != nil {
				return err
			}
		}
		fmt.Fprintln(c.out, "created ibm, dec, hp")
		return nil
	case "stock", "events":
		if len(args) < 5 {
			return fmt.Errorf("usage: gen %s <name> <start> <end> <density> [seed]", args[0])
		}
		start, err1 := strconv.ParseInt(args[2], 10, 64)
		end, err2 := strconv.ParseInt(args[3], 10, 64)
		density, err3 := strconv.ParseFloat(args[4], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad numeric arguments")
		}
		var seed int64 = 1
		if len(args) > 5 {
			if seed, err1 = strconv.ParseInt(args[5], 10, 64); err1 != nil {
				return err1
			}
		}
		var data *seq.Materialized
		var err error
		if args[0] == "stock" {
			data, err = workload.Stock(workload.StockConfig{
				Name: args[1], Span: seq.NewSpan(start, end), Density: density, Seed: seed,
			})
		} else {
			data, err = workload.Events(seq.NewSpan(start, end), density, nil, seed)
		}
		if err != nil {
			return err
		}
		if err := c.db.CreateSequence(args[1], data, seqproc.Sparse); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "created %s with %d records\n", args[1], data.Count())
		return nil
	default:
		return fmt.Errorf("unknown generator %q", args[0])
	}
}

// load reads a CSV file into a new sparse base sequence.
func (c *cli) load(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: load <name> <file.csv>")
	}
	f, err := os.Open(args[1])
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := seqproc.ReadCSV(f)
	if err != nil {
		return err
	}
	if err := c.db.CreateSequence(args[0], data, seqproc.Sparse); err != nil {
		return err
	}
	info := data.Info()
	fmt.Fprintf(c.out, "loaded %s: %d records, span %v, schema %v\n",
		args[0], data.Count(), info.Span, info.Schema)
	return nil
}

// append adds one record past the end of a sparse sequence, parsing
// each value against the sequence's schema.
func (c *cli) append(args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: append <name> <pos> <value...>")
	}
	name := args[0]
	pos, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return fmt.Errorf("position must be an integer, got %q", args[1])
	}
	info, err := c.db.Describe(name)
	if err != nil {
		return err
	}
	schemaFields := info.Schema.Fields()
	if len(args)-2 != len(schemaFields) {
		return fmt.Errorf("sequence %s wants %d value(s) for %v, got %d",
			name, len(schemaFields), info.Schema, len(args)-2)
	}
	rec := make(seqproc.Record, len(schemaFields))
	for i, f := range schemaFields {
		v, err := parseFieldValue(f, args[2+i])
		if err != nil {
			return err
		}
		rec[i] = v
	}
	if err := c.db.Append(name, seqproc.Pos(pos), rec); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "appended %s@%d\n", name, pos)
	return nil
}

// parseFieldValue converts one command-line token to the field's type.
func parseFieldValue(f seqproc.Field, s string) (seqproc.Value, error) {
	switch f.Type {
	case seqproc.TInt:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return seqproc.Value{}, fmt.Errorf("field %s wants an integer, got %q", f.Name, s)
		}
		return seqproc.Int(n), nil
	case seqproc.TFloat:
		x, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return seqproc.Value{}, fmt.Errorf("field %s wants a number, got %q", f.Name, s)
		}
		return seqproc.Float(x), nil
	case seqproc.TBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return seqproc.Value{}, fmt.Errorf("field %s wants true/false, got %q", f.Name, s)
		}
		return seqproc.Bool(b), nil
	default:
		return seqproc.Str(s), nil
	}
}

// open switches the shell to a durable database rooted at dir
// (created when absent, recovered when present): everything created,
// appended or materialized afterwards persists across sessions.
func (c *cli) open(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: open <dir>")
	}
	if dir, ok := c.db.Persistent(); ok {
		return fmt.Errorf("database %s is open; run close first", dir)
	}
	db, err := seqproc.Open(args[0], nil)
	if err != nil {
		return err
	}
	db.SetOptions(c.opts)
	c.db = db
	fmt.Fprintf(c.out, "opened %s: %d sequence(s), %d view(s)\n",
		args[0], len(db.Sequences()), len(db.ListViews()))
	return nil
}

// closeDB checkpoints and closes the open durable database, returning
// the shell to a fresh in-memory database.
func (c *cli) closeDB(args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("usage: close")
	}
	dir, ok := c.db.Persistent()
	if !ok {
		return fmt.Errorf("no durable database open")
	}
	if err := c.db.Close(); err != nil {
		return err
	}
	c.db = seqproc.New()
	c.db.SetOptions(c.opts)
	fmt.Fprintf(c.out, "closed %s\n", dir)
	return nil
}

// save writes a base sequence to a CSV file.
func (c *cli) save(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: save <name> <file.csv>")
	}
	q, err := c.db.Query(args[0])
	if err != nil {
		return err
	}
	info, err := c.db.Describe(args[0])
	if err != nil {
		return err
	}
	res, err := q.Run(info.Span)
	if err != nil {
		return err
	}
	f, err := os.Create(args[1])
	if err != nil {
		return err
	}
	defer f.Close()
	if err := seqproc.WriteCSV(f, res.Materialized()); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "wrote %d records to %s\n", res.Count(), args[1])
	return nil
}

// splitOver separates "<seql> over <start> <end>".
func splitOver(line string) (string, seqproc.Span, error) {
	idx := strings.LastIndex(line, " over ")
	if idx < 0 {
		return "", seqproc.Span{}, fmt.Errorf(`expected "<query> over <start> <end>"`)
	}
	src := strings.TrimSpace(line[:idx])
	parts := strings.Fields(line[idx+len(" over "):])
	if len(parts) != 2 {
		return "", seqproc.Span{}, fmt.Errorf(`expected "over <start> <end>"`)
	}
	start, err1 := strconv.ParseInt(parts[0], 10, 64)
	end, err2 := strconv.ParseInt(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		return "", seqproc.Span{}, fmt.Errorf("bad range %q %q", parts[0], parts[1])
	}
	return src, seqproc.NewSpan(start, end), nil
}

func (c *cli) run(src string, span seqproc.Span) error {
	q, err := c.db.Query(src)
	if err != nil {
		return err
	}
	res, err := q.Run(span)
	if err != nil {
		return err
	}
	schema := res.Schema()
	fmt.Fprintf(c.out, "pos")
	for i := 0; i < schema.NumFields(); i++ {
		fmt.Fprintf(c.out, "\t%s", schema.Field(i).Name)
	}
	fmt.Fprintln(c.out)
	const maxRows = 50
	for i, e := range res.Entries() {
		if i == maxRows {
			fmt.Fprintf(c.out, "... (%d more rows)\n", res.Count()-maxRows)
			break
		}
		fmt.Fprintf(c.out, "%d", e.Pos)
		for _, v := range e.Rec {
			fmt.Fprintf(c.out, "\t%s", v.String())
		}
		fmt.Fprintln(c.out)
	}
	fmt.Fprintf(c.out, "(%d rows)\n", res.Count())
	return nil
}
