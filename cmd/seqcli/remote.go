package main

// The client mode of seqcli: `seqcli connect host:port` attaches the
// shell to a running seqd daemon over the wire protocol instead of an
// in-process database. The command set mirrors the local shell where the
// protocol supports it; data generation and CSV I/O stay local-only.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/seq"
	"repro/internal/wire"
)

// connectRepl runs the interactive remote shell against addr.
func connectRepl(addr string, in io.Reader, out io.Writer) error {
	c, err := wire.Dial(addr, "seqcli")
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(out, "connected to %s at %s (protocol v%d, epoch %d)\n",
		c.Server(), addr, c.Version(), c.Epoch())
	fmt.Fprintln(out, `type "help" for commands`)
	r := &remote{c: c, out: out}
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprintf(out, "%s> ", c.Server())
		if !scanner.Scan() {
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := r.exec(line); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	}
}

type remote struct {
	c   *wire.Client
	out io.Writer
}

func (r *remote) exec(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		r.help()
		return nil

	case "list":
		names, err := r.c.ListSeqs()
		if err != nil {
			return err
		}
		for _, name := range names {
			info, err := r.c.Describe(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(r.out, "%-12s %s span=[%d,%d] density=%.2f %s\n",
				name, fieldsString(info.Fields), info.Start, info.End, info.Density, info.Kind)
		}
		return nil

	case "describe":
		if len(fields) != 2 {
			return fmt.Errorf("usage: describe <name>")
		}
		info, err := r.c.Describe(fields[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "%s: schema=%s span=[%d,%d] density=%.3f kind=%s\n",
			info.Name, fieldsString(info.Fields), info.Start, info.End, info.Density, info.Kind)
		return nil

	case "epoch":
		fmt.Fprintf(r.out, "epoch %d (as of the last response)\n", r.c.Epoch())
		return nil

	case "append":
		return r.append(fields[1:])

	case "materialize":
		rest := strings.TrimSpace(strings.TrimPrefix(line, "materialize"))
		name, q, ok := strings.Cut(rest, " as ")
		if !ok {
			return fmt.Errorf("usage: materialize <name> as <seql> over <start> <end>")
		}
		src, span, err := splitOver(strings.TrimSpace(q))
		if err != nil {
			return err
		}
		note, err := r.c.Materialize(strings.TrimSpace(name), src, int64(span.Start), int64(span.End))
		if err != nil {
			return err
		}
		fmt.Fprintln(r.out, note)
		return nil

	case "show":
		if len(fields) == 2 && fields[1] == "views" {
			return r.showViews()
		}
		return fmt.Errorf("usage: show views")

	case "drop":
		if len(fields) == 3 && fields[1] == "view" {
			note, err := r.c.DropView(fields[2])
			if err != nil {
				return err
			}
			fmt.Fprintln(r.out, note)
			return nil
		}
		return fmt.Errorf("usage: drop view <name>")

	case "set":
		if len(fields) != 3 {
			return fmt.Errorf("usage: set <option> <value> (options: parallelism, reopt, views, verify)")
		}
		note, err := r.c.SetOption(fields[1], fields[2])
		if err != nil {
			return err
		}
		fmt.Fprintln(r.out, note)
		return nil

	case "subscribe":
		rest := strings.TrimSpace(strings.TrimPrefix(line, "subscribe"))
		src, span, err := splitOver(rest)
		if err != nil {
			return err
		}
		ack, err := r.c.Subscribe(src, int64(span.Start), int64(span.End))
		if err != nil {
			return err
		}
		fmt.Fprintf(r.out, "subscription %d %s at epoch %d; initial content follows\n",
			ack.SubID, fieldsString(ack.Fields), ack.Epoch)
		return r.drainDeltas()

	case "unsubscribe":
		if len(fields) != 2 {
			return fmt.Errorf("usage: unsubscribe <id>")
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad subscription id %q", fields[1])
		}
		note, err := r.c.Unsubscribe(id)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.out, note)
		return nil

	case "deltas":
		if len(fields) == 2 && fields[1] == "wait" {
			d, err := r.c.ReadDelta()
			if err != nil {
				return err
			}
			r.printDelta(d)
			return r.drainDeltas()
		}
		if len(fields) != 1 {
			return fmt.Errorf("usage: deltas [wait]")
		}
		if r.c.PendingDeltas() == 0 {
			fmt.Fprintln(r.out, "no pending deltas (try a query or epoch turn first, or: deltas wait)")
			return nil
		}
		return r.drainDeltas()

	case "explain":
		rest := strings.TrimSpace(strings.TrimPrefix(line, "explain"))
		analyze := false
		if strings.HasPrefix(rest, "analyze ") {
			analyze = true
			rest = strings.TrimSpace(strings.TrimPrefix(rest, "analyze"))
		}
		src, span, err := splitOver(rest)
		if err != nil {
			return err
		}
		var text string
		if analyze {
			text, err = r.c.Analyze(src, int64(span.Start), int64(span.End))
		} else {
			text, err = r.c.Explain(src, int64(span.Start), int64(span.End))
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(r.out, text)
		return nil

	default:
		src, span, err := splitOver(line)
		if err != nil {
			return err
		}
		return r.run(src, span)
	}
}

func (r *remote) append(args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: append <seq> <pos> <value>... (int, float, 'str', true/false)")
	}
	pos, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad position %q", args[1])
	}
	rec := make(seq.Record, 0, len(args)-2)
	for _, raw := range args[2:] {
		rec = append(rec, parseValue(raw))
	}
	epoch, err := r.c.Append(args[0], pos, rec)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "appended; visible from epoch %d\n", epoch)
	return nil
}

// parseValue guesses the atomic type of a literal: int, then float, then
// bool, then string (quotes optional).
func parseValue(raw string) seq.Value {
	if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return seq.Int(i)
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return seq.Float(f)
	}
	if raw == "true" || raw == "false" {
		return seq.Bool(raw == "true")
	}
	return seq.Str(strings.Trim(raw, `'"`))
}

func (r *remote) showViews() error {
	views, err := r.c.ListViews()
	if err != nil {
		return err
	}
	if len(views) == 0 {
		fmt.Fprintln(r.out, "no materialized views")
		return nil
	}
	for _, v := range views {
		validity := fmt.Sprintf("valid from epoch %d", v.FromEpoch)
		if v.InvalidFrom != 0 {
			validity = fmt.Sprintf("valid epochs [%d,%d)", v.FromEpoch, v.InvalidFrom)
		}
		fmt.Fprintf(r.out, "%-12s span=[%d,%d] records=%d density=%.2f hits=%d misses=%d %s\n",
			v.Name, v.Start, v.End, v.Records, v.Density, v.Hits, v.Misses, validity)
	}
	return nil
}

// drainDeltas prints every delta already queued on the client. Deltas
// arrive during any turn (they are the one push frame in the protocol),
// so this is how the shell surfaces what accumulated since the last
// command.
func (r *remote) drainDeltas() error {
	for r.c.PendingDeltas() > 0 {
		d, err := r.c.ReadDelta()
		if err != nil {
			return err
		}
		r.printDelta(d)
	}
	return nil
}

func (r *remote) printDelta(d *wire.Delta) {
	fmt.Fprintf(r.out, "delta sub=%d epoch=%d region=[%d,%d]: %d record(s)\n",
		d.SubID, d.Epoch, d.Start, d.End, len(d.Entries))
	const maxRows = 20
	for i, e := range d.Entries {
		if i == maxRows {
			fmt.Fprintf(r.out, "  ... (%d more)\n", len(d.Entries)-maxRows)
			break
		}
		fmt.Fprintf(r.out, "  %d", e.Pos)
		for _, v := range e.Rec {
			fmt.Fprintf(r.out, "\t%s", v.String())
		}
		fmt.Fprintln(r.out)
	}
}

func (r *remote) run(src string, span seq.Span) error {
	res, err := r.c.Query(src, int64(span.Start), int64(span.End))
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "pos")
	for _, f := range res.Fields {
		fmt.Fprintf(r.out, "\t%s", f.Name)
	}
	fmt.Fprintln(r.out)
	const maxRows = 50
	for i, e := range res.Entries {
		if i == maxRows {
			fmt.Fprintf(r.out, "... (%d more rows)\n", len(res.Entries)-maxRows)
			break
		}
		fmt.Fprintf(r.out, "%d", e.Pos)
		for _, v := range e.Rec {
			fmt.Fprintf(r.out, "\t%s", v.String())
		}
		fmt.Fprintln(r.out)
	}
	elapsed := time.Duration(res.ElapsedNs).Round(time.Microsecond)
	fmt.Fprintf(r.out, "(%d rows @epoch %d, %v exec", len(res.Entries), res.Epoch, elapsed)
	if res.QueueNs > 0 {
		fmt.Fprintf(r.out, ", %v queued", time.Duration(res.QueueNs).Round(time.Microsecond))
	}
	fmt.Fprintln(r.out, ")")
	return nil
}

func (r *remote) help() {
	fmt.Fprint(r.out, `remote commands (seqd session):
  list                                              list sequences on the server
  describe <name>                                   show schema and meta-data (snapshot view)
  epoch                                             show the server epoch from the last response
  append <seq> <pos> <value>...                     append one record (writes advance the epoch)
  set parallelism <n> | reopt on|off |              adjust this session's planner options
      views on|off | verify on|off
  materialize <name> as <seql> over <start> <end>   register a shared materialized view
  show views                                        list views with epoch validity windows
  drop view <name>                                  remove a view for every session
  subscribe <seql> over <start> <end>               register a standing query; deltas follow writes
  unsubscribe <id>                                  cancel a standing query
  deltas [wait]                                     print queued deltas (wait: block for the next)
  explain <seql> over <start> <end>                 show the plan without executing
  explain analyze <seql> over <start> <end>         run instrumented; includes server counters
  <seql> over <start> <end>                         run a query against a pinned snapshot
  quit
`)
}

func fieldsString(fs []seq.Field) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range fs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Name, f.Type)
	}
	b.WriteByte(')')
	return b.String()
}
