package main

import (
	"strings"
	"testing"

	"repro/internal/reopt"
)

func TestCLISetReopt(t *testing.T) {
	c, buf := newTestCLI()
	if err := c.exec("set reopt on"); err != nil {
		t.Fatal(err)
	}
	if !c.opts.Reopt.Enabled {
		t.Error("reopt not enabled")
	}
	// Enabling without an explicit threshold must not leave the zero
	// value, which would replan at every checkpoint.
	if c.opts.Reopt.Threshold != reopt.DefaultThreshold {
		t.Errorf("threshold defaulted to %g, want %g", c.opts.Reopt.Threshold, reopt.DefaultThreshold)
	}
	if !strings.Contains(buf.String(), "reopt: on") {
		t.Errorf("output = %q", buf.String())
	}
	buf.Reset()
	if err := c.exec("set reopt interval 128"); err != nil {
		t.Fatal(err)
	}
	if c.opts.Reopt.CheckEvery != 128 {
		t.Errorf("interval = %d, want 128", c.opts.Reopt.CheckEvery)
	}
	if err := c.exec("set reopt threshold 0.25"); err != nil {
		t.Fatal(err)
	}
	if c.opts.Reopt.Threshold != 0.25 {
		t.Errorf("threshold = %g, want 0.25", c.opts.Reopt.Threshold)
	}
	// An explicit zero threshold survives re-enabling.
	if err := c.exec("set reopt threshold 0"); err != nil {
		t.Fatal(err)
	}
	if err := c.exec("set reopt on"); err != nil {
		t.Fatal(err)
	}
	if c.opts.Reopt.Threshold != 0 {
		t.Errorf("explicit zero threshold overwritten to %g", c.opts.Reopt.Threshold)
	}
	buf.Reset()
	if err := c.exec("set reopt off"); err != nil {
		t.Fatal(err)
	}
	if c.opts.Reopt.Enabled {
		t.Error("reopt still enabled")
	}
	if !strings.Contains(buf.String(), "reopt: off") {
		t.Errorf("output = %q", buf.String())
	}
	// Errors.
	for _, bad := range []string{
		"set reopt", "set reopt maybe", "set reopt interval 0",
		"set reopt interval x", "set reopt threshold -1", "set reopt threshold x",
		"set", "set parallelism -1",
	} {
		if err := c.exec(bad); err == nil {
			t.Errorf("%q must fail", bad)
		}
	}
}

// A reopt-enabled session runs queries through the monitored executor
// and EXPLAIN ANALYZE reports the reoptimization record.
func TestCLIReoptRun(t *testing.T) {
	c, buf := newTestCLI()
	if err := c.exec("gen table1 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.exec("set reopt on"); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := c.exec("select(compose(ibm, hp), ibm.close > hp.close) over 1 750"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rows)") {
		t.Errorf("query output = %q", buf.String())
	}
	buf.Reset()
	if err := c.exec("explain analyze sum(ibm, close, 6) over 200 500"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reopt:") {
		t.Errorf("explain analyze under reopt lacks the reopt record:\n%s", buf.String())
	}
}
