// Command seqbench runs the reproduction experiments (one per table or
// figure of the paper; see DESIGN.md) and prints their result tables.
//
// Usage:
//
//	seqbench [-quick] [experiment ids...]
//
// With no ids, every experiment runs in order. -quick selects the
// reduced CI-sized parameter sweeps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size sweeps")
	list := flag.Bool("list", false, "list experiments and exit")
	analyze := flag.Bool("analyze", false, "EXPLAIN ANALYZE a representative query per experiment (per-node metrics)")
	par := flag.Bool("parallel", false, "sweep span-partitioned worker counts per experiment, writing BENCH_parallel.json")
	parOut := flag.String("parallel-out", "BENCH_parallel.json", "output path of the -parallel sweep")
	parWorkers := flag.Int("parallel-workers", 0, "max workers of the -parallel sweep (0 = GOMAXPROCS)")
	mv := flag.Bool("matview", false, "measure repeated queries cold vs through a materialized view, writing BENCH_matview.json")
	mvOut := flag.String("matview-out", "BENCH_matview.json", "output path of the -matview sweep")
	ro := flag.Bool("reopt", false, "measure mid-run reoptimization on skewed estimates plus a calibration round, writing BENCH_reopt.json")
	roOut := flag.String("reopt-out", "BENCH_reopt.json", "output path of the -reopt benchmark")
	dk := flag.Bool("disk", false, "benchmark the durable tier: cold/warm buffer-pool sweeps, a page-file vs LSM-style layout head-to-head and a cold-trace calibration round, writing BENCH_disk.json")
	dkOut := flag.String("disk-out", "BENCH_disk.json", "output path of the -disk benchmark")
	ba := flag.Bool("batch", false, "benchmark the vectorized batch plane against the scalar interpreter on the E1/E4 hot paths plus an intern-table hit-rate sweep, writing BENCH_batch.json")
	baOut := flag.String("batch-out", "BENCH_batch.json", "output path of the -batch benchmark")
	iv := flag.Bool("ivm", false, "benchmark incremental view maintenance against invalidate-and-recompute across 0/10/100 standing views under an append stream, writing BENCH_ivm.json")
	ivOut := flag.String("ivm-out", "BENCH_ivm.json", "output path of the -ivm benchmark")
	sv := flag.Bool("server", false, "sweep concurrent seqd client connections with a live append stream, writing BENCH_server.json")
	svOut := flag.String("server-out", "BENCH_server.json", "output path of the -server sweep")
	svAddr := flag.String("server-addr", "", "drive an already-running seqd at this address instead of an in-process one")
	svWorkers := flag.Int("server-workers", 0, "worker pool size of the in-process -server daemon (0 = GOMAXPROCS)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: seqbench [-quick] [-analyze] [-parallel] [-matview] [-reopt] [-disk] [-batch] [-ivm] [-server] [-list] [experiment ids...]\n\nexperiments:\n")
		for _, e := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %s  %s\n", e.ID, e.Name)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%s  %s\n", e.ID, e.Name)
		}
		return
	}

	var selected []experiments.Experiment
	if flag.NArg() == 0 {
		selected = experiments.All()
	} else {
		for _, id := range flag.Args() {
			e, ok := experiments.Lookup(strings.ToLower(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "seqbench: unknown experiment %q\n", id)
				flag.Usage()
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *par {
		points, err := experiments.ParallelSweep(flag.Args(), *quick, *parWorkers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: parallel sweep failed: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*parOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderParallel(points))
		fmt.Printf("(wrote %d sweep points to %s)\n", len(points), *parOut)
		return
	}

	if *mv {
		points, err := experiments.MatviewSweep(flag.Args(), *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: matview sweep failed: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*mvOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderMatview(points))
		fmt.Printf("(wrote %d sweep points to %s)\n", len(points), *mvOut)
		return
	}

	if *ro {
		bench, err := experiments.ReoptBenchmark(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: reopt benchmark failed: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*roOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderReopt(bench))
		fmt.Printf("(wrote reopt benchmark to %s)\n", *roOut)
		return
	}

	if *dk {
		bench, err := experiments.DiskBenchmark(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: disk benchmark failed: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*dkOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderDisk(bench))
		fmt.Printf("(wrote disk benchmark to %s)\n", *dkOut)
		return
	}

	if *ba {
		bench, err := experiments.BatchBenchmark(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: batch benchmark failed: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*baOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderBatch(bench))
		fmt.Printf("(wrote batch benchmark to %s)\n", *baOut)
		return
	}

	if *iv {
		points, err := experiments.IVMBenchmark(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: ivm benchmark failed: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*ivOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderIVM(points))
		fmt.Printf("(wrote %d benchmark points to %s)\n", len(points), *ivOut)
		return
	}

	if *sv {
		points, err := experiments.ServerSweep(*svAddr, *quick, *svWorkers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: server sweep failed: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*svOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(experiments.RenderServer(points))
		fmt.Printf("(wrote %d sweep points to %s)\n", len(points), *svOut)
		return
	}

	failed := 0
	for _, e := range selected {
		if *analyze {
			text, err := experiments.Analyze(e.ID, *quick)
			if err != nil {
				fmt.Fprintf(os.Stderr, "seqbench: %s analyze failed: %v\n", e.ID, err)
				failed++
				continue
			}
			fmt.Printf("== %s: %s — EXPLAIN ANALYZE ==\n%s", e.ID, e.Name, text)
			continue
		}
		run := e.Run
		if *quick {
			run = e.Quick
		}
		start := time.Now()
		table, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if strings.Contains(table.Finding, "MISMATCH") {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "seqbench: %d experiment(s) failed or mismatched\n", failed)
		os.Exit(1)
	}
}
