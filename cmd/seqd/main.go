// Command seqd is the sequence-database daemon: it serves the engine to
// concurrent clients over the wire protocol of docs/PROTOCOL.md, with
// page-level snapshot isolation between readers and writers.
//
//	$ seqd -listen 127.0.0.1:7744 -table1 2 -load prices=prices.csv
//
// Clients: `seqcli connect 127.0.0.1:7744` for an interactive shell,
// `seqbench -server 127.0.0.1:7744` for the load driver, or anything
// speaking the documented protocol. docs/OPERATIONS.md is the operator's
// guide; every flag below is documented there (enforced by a test).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	seqproc "repro"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/storage/disk"
	"repro/internal/wire"
	"repro/internal/workload"
)

// loadList collects repeated -load name=file.csv flags.
type loadList []string

func (l *loadList) String() string     { return strings.Join(*l, ",") }
func (l *loadList) Set(v string) error { *l = append(*l, v); return nil }

// options are the daemon's command-line knobs. newFlags binds them to a
// FlagSet; the flag-documentation test enumerates the same set.
type options struct {
	listen      string
	name        string
	workers     int
	gcInterval  time.Duration
	maxFrame    int
	verify      bool
	parallelism int
	table1      int
	loads       loadList

	// Durable-storage tier (docs/STORAGE.md).
	data               string
	pageSize           int
	poolPages          int
	fsyncBatch         bool
	checkpointInterval time.Duration
}

// newFlags binds every seqd flag onto a fresh FlagSet. Kept separate
// from main so the OPERATIONS.md coverage test can enumerate the flags.
func newFlags() (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet("seqd", flag.ExitOnError)
	fs.StringVar(&o.listen, "listen", "127.0.0.1:7744", "TCP address to serve the wire protocol on")
	fs.StringVar(&o.name, "name", "seqd", "server name announced in the HelloAck handshake")
	fs.IntVar(&o.workers, "workers", 0, "worker-pool size bounding concurrently executing queries; 0 = GOMAXPROCS")
	fs.DurationVar(&o.gcInterval, "gc-interval", 5*time.Second, "period of the epoch garbage collector reclaiming page versions and invalidated views no pinned reader can see; 0 disables")
	fs.IntVar(&o.maxFrame, "max-frame", wire.DefaultMaxFrame, "maximum accepted wire frame size in bytes")
	fs.BoolVar(&o.verify, "verify", false, "run the planlint invariant verifier on every optimized plan (snapshot/* invariants are always checked)")
	fs.IntVar(&o.parallelism, "parallelism", 0, "default per-session parallelism bound for span-partitioned execution; sessions may override with `set parallelism`")
	fs.IntVar(&o.table1, "table1", 0, "load the paper's Table 1 synthetic sequences (ibm, dec, hp) at this scale; 0 skips")
	fs.Var(&o.loads, "load", "load a sparse base sequence from CSV as name=file.csv (repeatable; the file needs a \"pos\" column)")
	fs.StringVar(&o.data, "data", "", "directory of the durable on-disk database (page files + WAL, docs/STORAGE.md); created if absent, recovered if present; empty serves from memory only")
	fs.IntVar(&o.pageSize, "page-size", 0, "on-disk page size in bytes when creating a new -data database (0 = 8 KiB); an existing database's page size always wins")
	fs.IntVar(&o.poolPages, "pool-pages", 0, "buffer-pool capacity of the -data tier in pages (0 = 1024)")
	fs.BoolVar(&o.fsyncBatch, "fsync-batch", false, "group WAL fsyncs across appends (group commit): higher append throughput, but a crash may lose the last few acknowledged appends")
	fs.DurationVar(&o.checkpointInterval, "checkpoint-interval", 0, "background checkpoint period of the -data tier (0 = 15s default; negative disables background checkpoints)")
	return fs, o
}

func main() {
	fs, o := newFlags()
	fs.Parse(os.Args[1:])

	srv := server.New(server.Config{
		Name:       o.name,
		Workers:    o.workers,
		MaxFrame:   o.maxFrame,
		GCInterval: o.gcInterval,
		Verify:     o.verify,
		Options:    core.Options{Parallelism: o.parallelism},
	})
	ddb, err := attachData(srv, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqd: %v\n", err)
		os.Exit(1)
	}
	if err := loadData(srv, o); err != nil {
		fmt.Fprintf(os.Stderr, "seqd: %v\n", err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "seqd: shutting down")
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "seqd: serving %d sequence(s) on %s\n", len(srv.Sequences()), o.listen)
	serveErr := srv.ListenAndServe(o.listen)
	// Close the durable tier after the server drained: a final
	// checkpoint lands so the next boot needs no WAL replay.
	if ddb != nil {
		if err := ddb.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "seqd: close data: %v\n", err)
			os.Exit(1)
		}
	}
	if serveErr != nil {
		fmt.Fprintf(os.Stderr, "seqd: %v\n", serveErr)
		os.Exit(1)
	}
}

// attachData opens and attaches the durable storage tier when -data is
// set, returning the database so main can close it after shutdown.
func attachData(srv *server.Server, o *options) (*disk.DB, error) {
	if o.data == "" {
		return nil, nil
	}
	ddb, err := disk.Open(o.data, disk.Config{
		PageSize:           o.pageSize,
		PoolPages:          o.poolPages,
		BatchFsync:         o.fsyncBatch,
		CheckpointInterval: o.checkpointInterval,
	})
	if err != nil {
		return nil, err
	}
	if err := srv.AttachDisk(ddb); err != nil {
		ddb.Close()
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "seqd: data directory %s at epoch %d (%d sequence(s), %d view(s))\n",
		o.data, ddb.Epoch(), len(ddb.Names()), len(ddb.Views()))
	return ddb, nil
}

// loadData registers the startup sequences: Table 1 synthetics and CSV
// loads. Sequences already recovered from a -data directory are kept as
// recovered — the same boot line works for the first and every later
// start.
func loadData(srv *server.Server, o *options) error {
	existing := make(map[string]bool)
	for _, name := range srv.Sequences() {
		existing[name] = true
	}
	if o.table1 > 0 {
		ibm, dec, hp, err := workload.Table1(int64(o.table1))
		if err != nil {
			return err
		}
		for _, s := range []struct {
			name string
			data *seqproc.SequenceData
		}{{"ibm", ibm}, {"dec", dec}, {"hp", hp}} {
			if existing[s.name] {
				continue
			}
			if err := srv.CreateSequence(s.name, s.data, storage.KindSparse); err != nil {
				return err
			}
		}
	}
	for _, spec := range o.loads {
		name, file, ok := strings.Cut(spec, "=")
		if !ok || name == "" || file == "" {
			return fmt.Errorf("-load wants name=file.csv, got %q", spec)
		}
		if existing[name] {
			continue
		}
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		data, err := seqproc.ReadCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load %q: %w", spec, err)
		}
		if err := srv.CreateSequence(name, data, storage.KindSparse); err != nil {
			return err
		}
	}
	return nil
}
