// Command seqd is the sequence-database daemon: it serves the engine to
// concurrent clients over the wire protocol of docs/PROTOCOL.md, with
// page-level snapshot isolation between readers and writers.
//
//	$ seqd -listen 127.0.0.1:7744 -table1 2 -load prices=prices.csv
//
// Clients: `seqcli connect 127.0.0.1:7744` for an interactive shell,
// `seqbench -server 127.0.0.1:7744` for the load driver, or anything
// speaking the documented protocol. docs/OPERATIONS.md is the operator's
// guide; every flag below is documented there (enforced by a test).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	seqproc "repro"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wire"
	"repro/internal/workload"
)

// loadList collects repeated -load name=file.csv flags.
type loadList []string

func (l *loadList) String() string     { return strings.Join(*l, ",") }
func (l *loadList) Set(v string) error { *l = append(*l, v); return nil }

// options are the daemon's command-line knobs. newFlags binds them to a
// FlagSet; the flag-documentation test enumerates the same set.
type options struct {
	listen      string
	name        string
	workers     int
	gcInterval  time.Duration
	maxFrame    int
	verify      bool
	parallelism int
	table1      int
	loads       loadList
}

// newFlags binds every seqd flag onto a fresh FlagSet. Kept separate
// from main so the OPERATIONS.md coverage test can enumerate the flags.
func newFlags() (*flag.FlagSet, *options) {
	o := &options{}
	fs := flag.NewFlagSet("seqd", flag.ExitOnError)
	fs.StringVar(&o.listen, "listen", "127.0.0.1:7744", "TCP address to serve the wire protocol on")
	fs.StringVar(&o.name, "name", "seqd", "server name announced in the HelloAck handshake")
	fs.IntVar(&o.workers, "workers", 0, "worker-pool size bounding concurrently executing queries; 0 = GOMAXPROCS")
	fs.DurationVar(&o.gcInterval, "gc-interval", 5*time.Second, "period of the epoch garbage collector reclaiming page versions and invalidated views no pinned reader can see; 0 disables")
	fs.IntVar(&o.maxFrame, "max-frame", wire.DefaultMaxFrame, "maximum accepted wire frame size in bytes")
	fs.BoolVar(&o.verify, "verify", false, "run the planlint invariant verifier on every optimized plan (snapshot/* invariants are always checked)")
	fs.IntVar(&o.parallelism, "parallelism", 0, "default per-session parallelism bound for span-partitioned execution; sessions may override with `set parallelism`")
	fs.IntVar(&o.table1, "table1", 0, "load the paper's Table 1 synthetic sequences (ibm, dec, hp) at this scale; 0 skips")
	fs.Var(&o.loads, "load", "load a sparse base sequence from CSV as name=file.csv (repeatable; the file needs a \"pos\" column)")
	return fs, o
}

func main() {
	fs, o := newFlags()
	fs.Parse(os.Args[1:])

	srv := server.New(server.Config{
		Name:       o.name,
		Workers:    o.workers,
		MaxFrame:   o.maxFrame,
		GCInterval: o.gcInterval,
		Verify:     o.verify,
		Options:    core.Options{Parallelism: o.parallelism},
	})
	if err := loadData(srv, o); err != nil {
		fmt.Fprintf(os.Stderr, "seqd: %v\n", err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "seqd: shutting down")
		srv.Close()
	}()

	fmt.Fprintf(os.Stderr, "seqd: serving %d sequence(s) on %s\n", len(srv.Sequences()), o.listen)
	if err := srv.ListenAndServe(o.listen); err != nil {
		fmt.Fprintf(os.Stderr, "seqd: %v\n", err)
		os.Exit(1)
	}
}

// loadData registers the startup sequences: Table 1 synthetics and CSV
// loads.
func loadData(srv *server.Server, o *options) error {
	if o.table1 > 0 {
		ibm, dec, hp, err := workload.Table1(int64(o.table1))
		if err != nil {
			return err
		}
		for _, s := range []struct {
			name string
			data *seqproc.SequenceData
		}{{"ibm", ibm}, {"dec", dec}, {"hp", hp}} {
			if err := srv.CreateSequence(s.name, s.data, storage.KindSparse); err != nil {
				return err
			}
		}
	}
	for _, spec := range o.loads {
		name, file, ok := strings.Cut(spec, "=")
		if !ok || name == "" || file == "" {
			return fmt.Errorf("-load wants name=file.csv, got %q", spec)
		}
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		data, err := seqproc.ReadCSV(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load %q: %w", spec, err)
		}
		if err := srv.CreateSequence(name, data, storage.KindSparse); err != nil {
			return err
		}
	}
	return nil
}
