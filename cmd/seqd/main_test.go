package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestEveryFlagDocumented enforces the operator's-guide contract: every
// seqd flag appears in docs/OPERATIONS.md as `-name`, and every `-name`
// the guide's seqd flag table mentions exists. Adding a flag without
// documenting it (or vice versa) fails here.
func TestEveryFlagDocumented(t *testing.T) {
	raw, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md must exist and document every seqd flag: %v", err)
	}
	doc := string(raw)

	fs, _ := newFlags()
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(doc, "`-"+f.Name+"`") {
			t.Errorf("flag -%s (%s) is not documented in docs/OPERATIONS.md", f.Name, f.Usage)
		}
	})

	// Reverse direction: every `-flag` row in the guide's seqd table
	// must exist. The table rows start "| `-name`".
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `-") {
			continue
		}
		name := line[len("| `-"):]
		if i := strings.IndexByte(name, '`'); i >= 0 {
			name = name[:i]
		}
		if fs.Lookup(name) == nil {
			t.Errorf("docs/OPERATIONS.md documents -%s, which seqd does not define", name)
		}
	}
}

// TestDaemonEndToEnd boots the daemon wiring (server + Table 1 data) on
// a loopback listener and runs a paper query through the wire client.
func TestDaemonEndToEnd(t *testing.T) {
	_, o := newFlags()
	o.table1 = 1
	o.verify = true
	srv := server.New(server.Config{
		Name:    "seqd-test",
		Verify:  o.verify,
		Options: core.Options{Parallelism: o.parallelism},
	})
	if err := loadData(srv, o); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	c, err := wire.Dial(ln.Addr().String(), "daemon-test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	names, err := c.ListSeqs()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != "[dec hp ibm]" {
		t.Fatalf("sequences = %v", names)
	}
	res, err := c.Query("select(compose(ibm, hp), ibm.close > hp.close)", 1, 750)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("paper query returned nothing")
	}
}

// TestLoadCSV exercises the -load path.
func TestLoadCSV(t *testing.T) {
	dir := t.TempDir()
	file := dir + "/p.csv"
	if err := os.WriteFile(file, []byte("pos,v\n1,10\n2,20\n3,30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, o := newFlags()
	o.loads = loadList{"p=" + file}
	srv := server.New(server.Config{})
	if err := loadData(srv, o); err != nil {
		t.Fatal(err)
	}
	sess := srv.NewSession("t")
	res, err := sess.Query("select(p, v > 10)", seq.NewSpan(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(res.Entries))
	}

	// Malformed specs fail loudly.
	_, o = newFlags()
	o.loads = loadList{"nope"}
	if err := loadData(server.New(server.Config{}), o); err == nil {
		t.Fatal("malformed -load accepted")
	}
}

// TestDataDirPersistsAcrossBoots boots the daemon wiring with -data,
// writes through the wire, shuts down, and boots again on the same
// directory: the recovered state serves, and -table1 does not clash
// with the recovered sequences.
func TestDataDirPersistsAcrossBoots(t *testing.T) {
	dir := t.TempDir()
	boot := func() (*server.Server, func() error) {
		_, o := newFlags()
		o.table1 = 1
		o.data = dir
		o.checkpointInterval = -1
		srv := server.New(server.Config{Name: "seqd-test"})
		ddb, err := attachData(srv, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := loadData(srv, o); err != nil {
			ddb.Close()
			t.Fatal(err)
		}
		return srv, ddb.Close
	}

	srv, closeData := boot()
	sess := srv.NewSession("t")
	if _, err := srv.Append("ibm", 501, seq.Record{seq.Float(1), seq.Float(2), seq.Int(3)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Materialize("cheap", "select(ibm, close < 1000.0)", seq.NewSpan(200, 500)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := closeData(); err != nil {
		t.Fatal(err)
	}

	srv2, closeData2 := boot()
	defer func() {
		srv2.Close()
		if err := closeData2(); err != nil {
			t.Error(err)
		}
	}()
	if got := fmt.Sprint(srv2.Sequences()); got != "[dec hp ibm]" {
		t.Fatalf("sequences after reboot = %v", got)
	}
	sess2 := srv2.NewSession("t")
	res, err := sess2.Query("ibm", seq.NewSpan(501, 501))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("appended record lost across reboot: %d entries", len(res.Entries))
	}
	if vcs := srv2.ViewCounters(); len(vcs) != 1 || vcs[0].Name != "cheap" {
		t.Fatalf("views after reboot = %+v", vcs)
	}
}
