package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestEveryFlagDocumented enforces the operator's-guide contract: every
// seqd flag appears in docs/OPERATIONS.md as `-name`, and every `-name`
// the guide's seqd flag table mentions exists. Adding a flag without
// documenting it (or vice versa) fails here.
func TestEveryFlagDocumented(t *testing.T) {
	raw, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("docs/OPERATIONS.md must exist and document every seqd flag: %v", err)
	}
	doc := string(raw)

	fs, _ := newFlags()
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(doc, "`-"+f.Name+"`") {
			t.Errorf("flag -%s (%s) is not documented in docs/OPERATIONS.md", f.Name, f.Usage)
		}
	})

	// Reverse direction: every `-flag` row in the guide's seqd table
	// must exist. The table rows start "| `-name`".
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `-") {
			continue
		}
		name := line[len("| `-"):]
		if i := strings.IndexByte(name, '`'); i >= 0 {
			name = name[:i]
		}
		if fs.Lookup(name) == nil {
			t.Errorf("docs/OPERATIONS.md documents -%s, which seqd does not define", name)
		}
	}
}

// TestDaemonEndToEnd boots the daemon wiring (server + Table 1 data) on
// a loopback listener and runs a paper query through the wire client.
func TestDaemonEndToEnd(t *testing.T) {
	_, o := newFlags()
	o.table1 = 1
	o.verify = true
	srv := server.New(server.Config{
		Name:    "seqd-test",
		Verify:  o.verify,
		Options: core.Options{Parallelism: o.parallelism},
	})
	if err := loadData(srv, o); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	c, err := wire.Dial(ln.Addr().String(), "daemon-test")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	names, err := c.ListSeqs()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != "[dec hp ibm]" {
		t.Fatalf("sequences = %v", names)
	}
	res, err := c.Query("select(compose(ibm, hp), ibm.close > hp.close)", 1, 750)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) == 0 {
		t.Fatal("paper query returned nothing")
	}
}

// TestLoadCSV exercises the -load path.
func TestLoadCSV(t *testing.T) {
	dir := t.TempDir()
	file := dir + "/p.csv"
	if err := os.WriteFile(file, []byte("pos,v\n1,10\n2,20\n3,30\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, o := newFlags()
	o.loads = loadList{"p=" + file}
	srv := server.New(server.Config{})
	if err := loadData(srv, o); err != nil {
		t.Fatal(err)
	}
	sess := srv.NewSession("t")
	res, err := sess.Query("select(p, v > 10)", seq.NewSpan(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(res.Entries))
	}

	// Malformed specs fail loudly.
	_, o = newFlags()
	o.loads = loadList{"nope"}
	if err := loadData(server.New(server.Config{}), o); err == nil {
		t.Fatal("malformed -load accepted")
	}
}
