// Whole-program mode: `seqvet -global ./...` loads every module package
// at once — parsed and type-checked from source against a single shared
// importer, so types.Object identities line up across package
// boundaries — and runs both the per-package analyzers and the
// whole-program ones (lockorder, epochpin, goexit, wiredoc) over the
// resulting analyzers.Program.
//
// The loader leans on `go list -export -deps -json`, which cmd/go
// answers from the build cache: stdlib dependencies arrive as gc export
// data (fast, no source parsing), module packages are listed in
// dependency order so each one type-checks against its already-checked
// imports. No module proxy, no golang.org/x/tools.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analyzers"
)

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
}

func runGlobalMode(patterns []string, only, skip string) {
	keep, err := analyzers.FilterNames(knownAnalyzerNames(), only, skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqvet: %v\n", err)
		os.Exit(1)
	}
	locals, _ := selectLocal(only, skip)
	var globals []*analyzers.GlobalAnalyzer
	for _, a := range analyzers.AllGlobal() {
		if keep[a.Name] {
			globals = append(globals, a)
		}
	}

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqvet: %v\n", err)
		os.Exit(1)
	}

	pkgs, err := goList(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqvet: %v\n", err)
		os.Exit(1)
	}

	prog, err := loadProgram(root, modPath, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqvet: %v\n", err)
		os.Exit(1)
	}

	diags := analyzers.RunGlobal(prog, locals, globals)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// findModule walks up from the working directory to go.mod and reads
// the module path from its first `module` directive.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if data, err := os.ReadFile(gomod); err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s has no module directive", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s (seqvet -global must run inside the module)", dir)
		}
		dir = parent
	}
}

// goList asks cmd/go for the transitive package graph with export data.
// -deps guarantees dependency order: every package appears after its
// imports.
func goList(root string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,Export,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// loadProgram type-checks every module package from source, in
// dependency order, sharing one FileSet and one importer so analyzers
// can chase a types.Object from internal/server straight into
// internal/storage. Stdlib packages are imported from their gc export
// data.
func loadProgram(root, modPath string, pkgs []listPkg) (*analyzers.Program, error) {
	fset := token.NewFileSet()

	exportFile := map[string]string{} // stdlib import path -> export data
	for _, p := range pkgs {
		if p.Standard && p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
	}
	gcImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	checked := map[string]*types.Package{} // module import path -> checked package
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		return gcImp.(types.ImporterFrom).ImportFrom(path, root, 0)
	})

	isModule := func(path string) bool {
		return path == modPath || strings.HasPrefix(path, modPath+"/")
	}

	var passes []*analyzers.Pass
	for _, p := range pkgs {
		if p.Standard || !isModule(p.ImportPath) {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tcfg := &types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		pkg, err := tcfg.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %v", p.ImportPath, err)
		}
		checked[p.ImportPath] = pkg
		passes = append(passes, &analyzers.Pass{Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	if len(passes) == 0 {
		return nil, fmt.Errorf("no module packages matched (module %s)", modPath)
	}
	return analyzers.NewProgram(fset, root, passes), nil
}
