// Command seqvet runs the project's custom static analyzers (package
// internal/analyzers) as a `go vet` tool:
//
//	go build -o bin/seqvet ./cmd/seqvet
//	go vet -vettool=$(pwd)/bin/seqvet ./...
//
// Invoked with package patterns it drives `go vet` itself, so
//
//	go run ./cmd/seqvet ./...
//
// also works. With -global it leaves the per-package vet protocol
// behind and loads the entire module at once, running the
// whole-program analyzers (lockorder, epochpin, goexit, wiredoc) that
// need to follow calls across package boundaries:
//
//	go run ./cmd/seqvet -global ./...
//
// -only and -skip select analyzers by name in every mode; both are
// surfaced through the -flags JSON, so `go vet -vettool=seqvet
// -only=kindswitch` forwards them to each unit invocation.
//
// The container this project builds in has no module proxy, so the
// golang.org/x/tools unitchecker is not available; this file implements
// the small vettool protocol cmd/go speaks directly:
//
//   - `seqvet -V=full` prints a version line fingerprinting the binary
//     (cmd/go keys its action cache on it);
//   - `seqvet -flags` prints the tool's analyzer flags as JSON;
//   - `seqvet <dir>/vet.cfg` analyzes one type-checked package described
//     by the JSON config, writes the (empty) facts file cmd/go expects,
//     prints findings to stderr, and exits 2 when there are any.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	fs := flag.NewFlagSet("seqvet", flag.ExitOnError)
	vFlag := fs.String("V", "", "if 'full', print the tool version and exit (vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags as JSON and exit (vet protocol)")
	globalFlag := fs.Bool("global", false, "load the whole module and run the whole-program analyzers too")
	onlyFlag := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	skipFlag := fs.String("skip", "", "comma-separated analyzer names to skip")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: seqvet [-only=a,b] [-skip=c] ./...")
		fmt.Fprintln(os.Stderr, "       seqvet -global [-only=a,b] [-skip=c] ./...")
		fmt.Fprintln(os.Stderr, "       go vet -vettool=seqvet [-only=a,b] [-skip=c] ./...")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	args := fs.Args()

	switch {
	case *vFlag == "full":
		printVersion()
	case *vFlag != "":
		fmt.Fprintf(os.Stderr, "seqvet: unsupported -V=%s (only -V=full)\n", *vFlag)
		os.Exit(2)
	case *flagsFlag:
		printFlags()
	case *globalFlag:
		if len(args) == 0 {
			args = []string{"./..."}
		}
		runGlobalMode(args, *onlyFlag, *skipFlag)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		if err := analyzeUnit(args[0], *onlyFlag, *skipFlag); err != nil {
			fmt.Fprintf(os.Stderr, "seqvet: %v\n", err)
			os.Exit(1)
		}
	case len(args) > 0:
		runGoVet(args, *onlyFlag, *skipFlag)
	default:
		fs.Usage()
		os.Exit(2)
	}
}

// printVersion emulates the x/tools version stamp: the content hash of
// the executable serves as the build ID cmd/go caches against.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%02x\n", progname, h.Sum(nil))
}

// printFlags emits the analyzer flag descriptors cmd/go reads to decide
// which command-line flags to forward to each vet unit invocation (the
// unitchecker -flags wire format).
func printFlags() {
	type flagDesc struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	descs := []flagDesc{
		{Name: "only", Bool: false, Usage: "comma-separated analyzer names to run (default: all)"},
		{Name: "skip", Bool: false, Usage: "comma-separated analyzer names to skip"},
	}
	out, err := json.Marshal(descs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqvet: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// knownAnalyzerNames is the -only/-skip vocabulary: the union of
// per-package and whole-program analyzer names.
func knownAnalyzerNames() []string {
	var names []string
	for _, a := range analyzers.All() {
		names = append(names, a.Name)
	}
	for _, a := range analyzers.AllGlobal() {
		names = append(names, a.Name)
	}
	return names
}

// selectLocal filters the per-package analyzers by the -only/-skip
// selection. Whole-program analyzer names are valid selections that
// simply match no per-package analyzer.
func selectLocal(only, skip string) ([]*analyzers.Analyzer, error) {
	keep, err := analyzers.FilterNames(knownAnalyzerNames(), only, skip)
	if err != nil {
		return nil, err
	}
	var out []*analyzers.Analyzer
	for _, a := range analyzers.All() {
		if keep[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// runGoVet re-invokes the toolchain with this binary as the vettool, so
// `go run ./cmd/seqvet ./...` works without ceremony. The analyzer
// selection flags travel along; cmd/go forwards them to every unit.
func runGoVet(patterns []string, only, skip string) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqvet: cannot locate own executable: %v\n", err)
		os.Exit(1)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if only != "" {
		vetArgs = append(vetArgs, "-only="+only)
	}
	if skip != "" {
		vetArgs = append(vetArgs, "-skip="+skip)
	}
	cmd := exec.Command("go", append(vetArgs, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "seqvet: %v\n", err)
		os.Exit(1)
	}
}

// vetConfig is the JSON package description cmd/go hands to vet tools
// (the unitchecker.Config wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func analyzeUnit(cfgPath, only, skip string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// cmd/go always expects the facts file. The analyzers are fact-free,
	// so dependencies (VetxOnly units) need nothing else.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}
	// Only project packages are subject to the project's conventions;
	// skip typechecking everything else (stdlib, when vet is invoked on
	// it explicitly).
	if cfg.ImportPath != "repro" && !strings.HasPrefix(cfg.ImportPath, "repro/") {
		return nil
	}
	locals, err := selectLocal(only, skip)
	if err != nil {
		return err
	}
	if len(locals) == 0 {
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	// Type-check against the export data of the already-compiled
	// dependencies, resolving import paths the way the build did.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.(types.ImporterFrom).ImportFrom(importPath, cfg.Dir, 0)
	})
	tcfg := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	pass := &analyzers.Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}
	diags := analyzers.Run(pass, locals)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
