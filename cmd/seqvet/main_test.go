package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSeqvet compiles the tool into a temp dir and returns the binary
// path and the repository root.
func buildSeqvet(t *testing.T) (bin, root string) {
	t.Helper()
	if testing.Short() {
		t.Skip("builds the seqvet binary")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "seqvet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/seqvet")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building seqvet: %v\n%s", err, out)
	}
	return bin, root
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("command did not run: %v", err)
	return -1
}

// TestFlagsJSON checks the -flags handshake: cmd/go parses this JSON to
// decide which flags to forward to each vet unit invocation.
func TestFlagsJSON(t *testing.T) {
	bin, _ := buildSeqvet(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("seqvet -flags: %v", err)
	}
	var descs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &descs); err != nil {
		t.Fatalf("-flags output is not the expected JSON: %v\n%s", err, out)
	}
	names := map[string]bool{}
	for _, d := range descs {
		if d.Bool {
			t.Errorf("flag %q declared Bool; string flags expected", d.Name)
		}
		names[d.Name] = true
	}
	if !names["only"] || !names["skip"] {
		t.Fatalf("-flags must declare only and skip, got %s", out)
	}
}

// TestUnitFindingsExitTwo drives the vet unit protocol directly with a
// crafted vet.cfg whose package carries a reasonless suppression — a
// finding that needs no export data — and wants exit status 2.
func TestUnitFindingsExitTwo(t *testing.T) {
	bin, _ := buildSeqvet(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "demo.go")
	if err := os.WriteFile(src, []byte("package demo\nfunc f() int {\n\t//seqvet:ignore kindswitch\n\treturn 0\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := map[string]any{
		"ID":         "repro/internal/demo",
		"Compiler":   "gc",
		"Dir":        dir,
		"ImportPath": "repro/internal/demo",
		"GoFiles":    []string{src},
		"VetxOutput": filepath.Join(dir, "demo.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, cfgPath).CombinedOutput()
	if code := exitCode(t, err); code != 2 {
		t.Fatalf("findings must exit 2, got %d\n%s", code, out)
	}
	if !strings.Contains(string(out), "seqvet:ignore needs an analyzer name and a reason") {
		t.Fatalf("expected the bad-suppression finding, got:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "demo.vetx")); err != nil {
		t.Errorf("the facts file cmd/go expects was not written: %v", err)
	}

	// The same unit with the offending analyzer deselected still reports
	// the framework-level bad suppression — -only narrows analyzers, not
	// the suppression hygiene.
	out, err = exec.Command(bin, "-only=rawstore", cfgPath).CombinedOutput()
	if code := exitCode(t, err); code != 2 {
		t.Fatalf("-only must keep framework findings, got exit %d\n%s", code, out)
	}

	// An unknown analyzer name is a usage error (exit 1), not a finding.
	out, err = exec.Command(bin, "-only=nosuch", cfgPath).CombinedOutput()
	if code := exitCode(t, err); code != 1 {
		t.Fatalf("unknown -only name must exit 1, got %d\n%s", code, out)
	}
	if !strings.Contains(string(out), `unknown analyzer "nosuch"`) {
		t.Fatalf("expected the unknown-analyzer error, got:\n%s", out)
	}
}

// TestGoVetForwardsSelection checks the full `go vet -vettool` path:
// the -only/-skip flags declared in -flags travel to every unit.
func TestGoVetForwardsSelection(t *testing.T) {
	bin, root := buildSeqvet(t)
	run := func(args ...string) (string, int) {
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + bin}, args...)...)
		cmd.Dir = root
		cmd.Env = append(os.Environ(), "GOFLAGS=")
		out, err := cmd.CombinedOutput()
		return string(out), exitCode(t, err)
	}
	// Selecting only a whole-program analyzer leaves per-package mode
	// with nothing to run — clean pass.
	if out, code := run("-only=wiredoc", "./internal/seq/"); code != 0 {
		t.Fatalf("-only=wiredoc should vet clean, got exit %d\n%s", code, out)
	}
	// An unknown name surfaces as a vet failure.
	out, code := run("-only=nosuch", "./internal/seq/")
	if code == 0 || !strings.Contains(out, `unknown analyzer "nosuch"`) {
		t.Fatalf("unknown -only name should fail go vet, got exit %d\n%s", code, out)
	}
}

// TestGlobalCleanOnRepository is the whole-program integration test:
// `seqvet -global ./...` must come back clean on the repository itself
// (every surfaced violation fixed or suppressed with a reason).
func TestGlobalCleanOnRepository(t *testing.T) {
	bin, root := buildSeqvet(t)
	cmd := exec.Command(bin, "-global", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("seqvet -global ./... must pass clean, got exit %d\n%s", code, out)
	}
}

// TestGlobalFindingsExitTwo builds a scratch module with an unannotated
// mutex and wants the lockorder coverage finding, end to end through
// `go list` loading.
func TestGlobalFindingsExitTwo(t *testing.T) {
	bin, _ := buildSeqvet(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "package scratch\n\nimport \"sync\"\n\ntype T struct {\n\tmu sync.Mutex\n}\n\nfunc (t *T) Use() {\n\tt.mu.Lock()\n\tt.mu.Unlock()\n}\n"
	if err := os.WriteFile(filepath.Join(dir, "scratch.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-global", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 2 {
		t.Fatalf("uncovered mutex must exit 2, got %d\n%s", code, out)
	}
	if !strings.Contains(string(out), "mutex scratch.T.mu is not covered") {
		t.Fatalf("expected the lockorder coverage finding, got:\n%s", out)
	}
	// Deselecting lockorder silences it.
	cmd = exec.Command(bin, "-global", "-skip=lockorder", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	out, err = cmd.CombinedOutput()
	if code := exitCode(t, err); code != 0 {
		t.Fatalf("-skip=lockorder should pass clean, got exit %d\n%s", code, out)
	}
}
