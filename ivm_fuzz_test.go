package seqproc

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/matview"
	"repro/internal/planlint"
	"repro/internal/seq"
	"repro/internal/testgen"
)

var ivmSchedules = flag.Int("ivm.schedules", 500, "number of random append/reorganize schedules for the IVM differential fuzz harness")

// TestIVMDifferentialFuzz is the incremental-view-maintenance fuzz
// harness: each schedule builds a DB (in-memory or disk-backed), registers
// a batch of standing views over random query shapes, then drives a random
// sequence of appends and reorganizes through it. After every mutation the
// maintenance reports must pass the planlint ivm/* verifier, and the
// standing queries — answered through whatever mix of stitched, shrunken,
// and recomputed views the maintenance left behind — must agree with the
// reference interpreter record for record.
func TestIVMDifferentialFuzz(t *testing.T) {
	var stitches, shrinks, invalidates, noops, substituted, diskSchedules, heavySchedules int
	done := 0
	for seed := int64(1); done < *ivmSchedules; seed++ {
		rng := rand.New(rand.NewSource(seed * 7919))
		viewCount := 10
		switch {
		case seed%3 == 0:
			viewCount = 0
		case seed%25 == 7:
			viewCount = 100
			heavySchedules++
		}
		disk := seed%5 == 2
		if disk {
			diskSchedules++
		}
		parallelism := 1
		if seed%2 == 0 {
			parallelism = 3
		}
		st := runIVMSchedule(t, rng, seed, viewCount, disk, parallelism)
		stitches += st.stitches
		shrinks += st.shrinks
		invalidates += st.invalidates
		noops += st.noops
		substituted += st.substituted
		done++
	}
	t.Logf("ran %d schedules (%d disk-backed, %d with 100 views): %d stitches, %d shrinks, %d invalidates, %d no-ops, %d view-served queries",
		done, diskSchedules, heavySchedules, stitches, shrinks, invalidates, noops, substituted)
	if stitches == 0 {
		t.Fatal("no view was ever stitched; the IVM stitch path is dead")
	}
	if shrinks == 0 {
		t.Fatal("no view was ever shrunk; the partial-span fallback path is dead")
	}
	if invalidates == 0 {
		t.Fatal("no view was ever invalidated; the last-resort path is dead")
	}
	if noops == 0 {
		t.Fatal("no maintenance was ever a no-op; the halo analysis never excluded a view")
	}
	if substituted == 0 {
		t.Fatal("no maintained view ever answered a query; the differential harness is dead")
	}
	if diskSchedules == 0 || heavySchedules == 0 {
		t.Fatalf("schedule mix degenerate: %d disk, %d heavy", diskSchedules, heavySchedules)
	}
}

type ivmStats struct {
	stitches, shrinks, invalidates, noops, substituted int
}

// standing pairs a registered view with the query text and span its
// correctness is checked over.
type standing struct {
	name string
	text string
	span Span
}

func runIVMSchedule(t *testing.T, rng *rand.Rand, seed int64, viewCount int, disk bool, parallelism int) ivmStats {
	t.Helper()
	var st ivmStats
	var db *DB
	if disk {
		var err error
		db, err = Open(t.TempDir(), nil)
		if err != nil {
			t.Fatalf("seed %d: open disk db: %v", seed, err)
		}
		defer db.Close()
	} else {
		db = New()
	}
	db.SetOptions(Options{Parallelism: parallelism})

	// Two sparse bases with distinct column names so composes are
	// unambiguous.
	occupied := map[string]map[Pos]bool{"b": {}, "c": {}}
	for _, base := range []struct{ name, col string }{{"b", "v"}, {"c", "w"}} {
		var entries []Entry
		for p := Pos(0); p <= 24; p++ {
			if rng.Float64() < 0.55 {
				entries = append(entries, Entry{Pos: p, Rec: Record{Float(float64(rng.Intn(40)))}})
				occupied[base.name][p] = true
			}
		}
		if len(entries) == 0 {
			entries = append(entries, Entry{Pos: 1, Rec: Record{Float(1)}})
			occupied[base.name][1] = true
		}
		data, err := NewData(MustSchema(Field{Name: base.col, Type: TFloat}), entries)
		if err != nil {
			t.Fatalf("seed %d: base data: %v", seed, err)
		}
		if err := db.CreateSequence(base.name, data, Sparse); err != nil {
			t.Fatalf("seed %d: create %s: %v", seed, base.name, err)
		}
	}

	// Register the standing views. Generation retries until a shape both
	// parses and registers (universe-sensitive blocks are refused, which
	// is part of what this harness locks in).
	var views []standing
	for i := 0; i < viewCount; i++ {
		for attempt := 0; attempt < 30; attempt++ {
			text, _ := randIVMQuery(rng, 2+rng.Intn(2))
			lo := Pos(rng.Intn(20)) - 6
			span := NewSpan(lo, lo+Pos(8+rng.Intn(30)))
			name := fmt.Sprintf("v%d", i)
			if _, err := db.Query(text); err != nil {
				continue
			}
			if _, err := db.Materialize(name, text, span); err != nil {
				continue
			}
			views = append(views, standing{name: name, text: text, span: span})
			break
		}
	}

	lookup := func(name string) (seq.Sequence, bool) {
		s, ok := db.seqs[name]
		if !ok {
			return nil, false
		}
		return s.store, true
	}

	// checkViews cross-checks standing queries against the reference
	// interpreter over the current data.
	checkViews := func(opIdx int, sample int) {
		idx := rng.Perm(len(views))
		if sample < len(idx) {
			idx = idx[:sample]
		}
		for _, i := range idx {
			v := views[i]
			q, err := db.Query(v.text)
			if err != nil {
				t.Fatalf("seed %d op %d: reparse %q: %v", seed, opIdx, v.text, err)
			}
			got, err := q.Run(v.span)
			if err != nil {
				t.Fatalf("seed %d op %d: run %q: %v", seed, opIdx, v.text, err)
			}
			want, err := algebra.EvalRange(q.Node(), v.span)
			if err != nil {
				t.Fatalf("seed %d op %d: reference for %q: %v", seed, opIdx, v.text, err)
			}
			if !testgen.EntriesApproxEqual(got.Entries(), want) {
				t.Fatalf("seed %d op %d: standing query disagrees with the reference after maintenance\nquery: %s\nspan: %v\nplan:\n%s\ngot  %v\nwant %v",
					seed, opIdx, v.text, v.span, got.Plan(), got.Entries(), want)
			}
			for _, s := range got.opt.Substitutions {
				if s.Stream || s.Probed {
					st.substituted++
				}
			}
		}
	}

	nOps := 4 + rng.Intn(5)
	for op := 0; op < nOps; op++ {
		base := "b"
		if rng.Intn(2) == 1 {
			base = "c"
		}
		if rng.Float64() < 0.8 {
			// Append at a fresh position, biased to the occupied
			// neighborhood so halos actually hit view spans.
			var pos Pos
			ok := false
			for tries := 0; tries < 50; tries++ {
				pos = Pos(rng.Intn(44)) - 4
				if !occupied[base][pos] {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
			if err := db.Append(base, pos, Record{Float(float64(rng.Intn(40)))}); err != nil {
				// Dense stores refuse out-of-span appends; the op is a no-op.
				continue
			}
			occupied[base][pos] = true
		} else {
			kind := Sparse
			if rng.Intn(2) == 0 {
				kind = Dense
			}
			if err := db.Reorganize(base, kind); err != nil {
				t.Fatalf("seed %d op %d: reorganize %s: %v", seed, op, base, err)
			}
		}

		reports := db.TakeMaintenanceReports()
		for _, rep := range reports {
			switch rep.Action {
			case matview.MaintainStitch:
				st.stitches++
			case matview.MaintainShrink:
				st.shrinks++
			case matview.MaintainInvalidate:
				st.invalidates++
			case matview.MaintainNone:
				st.noops++
			}
		}
		if issues := planlint.VerifyMaintenance(db.views, lookup, reports); len(issues) != 0 {
			t.Fatalf("seed %d op %d: maintenance violates ivm/* invariants:\n%v",
				seed, op, planlint.Error(issues))
		}
		// Spot-check a few standing queries after every mutation.
		checkViews(op, 4)
	}
	// Full sweep at the end of the schedule.
	checkViews(nOps, len(views))
	return st
}

// randIVMQuery builds a random SEQL query over bases b (column v) and c
// (column w), returning the text and the name of a numeric column valid
// in its output schema. Shapes that fail to parse are discarded by the
// caller, so the generator only has to be mostly right.
func randIVMQuery(rng *rand.Rand, depth int) (string, string) {
	if depth <= 0 {
		if rng.Intn(2) == 0 {
			return "b", "v"
		}
		return "c", "w"
	}
	in, col := randIVMQuery(rng, depth-1)
	switch rng.Intn(9) {
	case 0:
		return fmt.Sprintf("select(%s, %s > %d.0)", in, col, rng.Intn(30)), col
	case 1:
		return fmt.Sprintf("offset(%s, %d)", in, rng.Intn(7)-3), col
	case 2:
		k := []int64{-2, -1, 1, 2}[rng.Intn(4)]
		return fmt.Sprintf("voffset(%s, %d)", in, k), col
	case 3:
		return fmt.Sprintf("sum(%s, %s, %d)", in, col, 1+rng.Intn(4)), "sum"
	case 4:
		return fmt.Sprintf("avg(%s, %s, %d, %d)", in, col, -rng.Intn(3)-1, rng.Intn(2)), "avg"
	case 5:
		return fmt.Sprintf("rsum(%s, %s)", in, col), "sum"
	case 6:
		return fmt.Sprintf("collapse(%s, avg(%s), %d)", in, col, 2+rng.Intn(2)), "avg"
	case 7:
		return fmt.Sprintf("expand(%s, %d)", in, 2+rng.Intn(2)), col
	default:
		return fmt.Sprintf("select(compose(b as l, c as r), l.v > r.w)"), "v"
	}
}
