// Package seqproc is a sequence database engine: the public API of this
// reproduction of "Sequence Query Processing" (Seshadri, Livny,
// Ramakrishnan, SIGMOD 1994).
//
// A DB holds named base sequences (positionally ordered records stored
// in paged dense or sparse representations). Queries are written in
// SEQL, a small functional language over the paper's operators —
// selection, projection, positional and value offsets, windowed and
// cumulative aggregates, and compose (positional join):
//
//	db := seqproc.New()
//	db.CreateSequence("ibm", ibmData, seqproc.Sparse)
//	db.CreateSequence("hp", hpData, seqproc.Sparse)
//	q, err := db.Query("select(compose(ibm, hp), ibm.close > hp.close)")
//	res, err := q.Run(seqproc.NewSpan(1, 750))
//
// Each Run optimizes the query with the paper's full pipeline: rewrite
// transformations (§3.1), bidirectional span and density propagation
// (§3.2), cost-based choice of access modes and join strategies per
// block via a Selinger-style dynamic program (§4), and cache-strategy
// selection for non-unit-scope operators (§3.5). Explain shows the
// chosen physical plan.
package seqproc

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/grouping"
	"repro/internal/matview"
	"repro/internal/meta"
	"repro/internal/parser"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/storage/disk"
)

// Re-exported core types, so API users need no internal imports.
type (
	// Span is an inclusive range of positions.
	Span = seq.Span
	// Pos is a sequence position.
	Pos = seq.Pos
	// Record is a tuple of values; nil is the Null record.
	Record = seq.Record
	// Value is one atomic value.
	Value = seq.Value
	// Field is a named, typed attribute.
	Field = seq.Field
	// Schema is a record type.
	Schema = seq.Schema
	// Entry is a (position, record) pair.
	Entry = seq.Entry
	// Options tune the optimizer (ablation and strategy knobs).
	Options = core.Options
	// OptStats reports optimizer counters (Property 4.1).
	OptStats = core.Stats
	// Analysis is an EXPLAIN ANALYZE result: per-node execution metrics
	// next to the optimizer's predictions (see OBSERVABILITY.md).
	Analysis = core.Analysis
	// NodeMetrics is the per-operator counter block of an Analysis tree.
	NodeMetrics = exec.NodeMetrics
	// PageStatsSnapshot is an immutable copy of page-access counters.
	PageStatsSnapshot = storage.StatsSnapshot
	// StorageKind selects a physical representation.
	StorageKind = storage.Kind
	// Type is an atomic value type.
	Type = seq.Type
	// SequenceData is in-memory sequence content, the input to
	// CreateSequence.
	SequenceData = seq.Materialized
	// ViewCounters is the usage summary of one materialized view
	// (records, hits, misses, page accesses).
	ViewCounters = matview.Counters
	// Grouping is a collection of same-schema sequences queried
	// collectively (the §5.1 sequence-groupings extension).
	Grouping = grouping.Grouping
	// GroupTemplate instantiates a query for one grouping member.
	GroupTemplate = grouping.Template
)

// NewGrouping creates a sequence grouping over the schema.
var NewGrouping = grouping.New

// The atomic types.
const (
	TInt    = seq.TInt
	TFloat  = seq.TFloat
	TString = seq.TString
	TBool   = seq.TBool
)

// Storage kinds.
const (
	// Dense stores every position of the valid range; probes are O(1).
	Dense = storage.KindDense
	// Sparse stores only non-Null records; probes descend an index.
	Sparse = storage.KindSparse
)

// Value constructors and span helpers, re-exported.
var (
	Int         = seq.Int
	Float       = seq.Float
	Str         = seq.Str
	Bool        = seq.Bool
	NewSpan     = seq.NewSpan
	NewSchema   = seq.NewSchema
	MustSchema  = seq.MustSchema
	NewData     = seq.NewMaterialized
	MustData    = seq.MustMaterialized
	NewConstant = seq.NewConstant
	AllSpan     = seq.AllSpan
)

// DB is a catalog of base sequences plus optimizer configuration.
//
// A DB is not safe for concurrent mutation: CreateSequence, Drop,
// Append, SetOptions and Reorganize must be externally synchronized.
// Read-side operations (Query building, Run, Probe, Explain) may run
// concurrently with each other; page-access counters are atomic.
type DB struct {
	seqs  map[string]*dbSeq
	opts  Options
	views *matview.Registry
	// disk is the durable tier of an Open'd database (persist.go);
	// nil for New'd in-memory databases.
	disk *disk.DB
	// noIVM disables incremental view maintenance: base writes
	// invalidate views instead of stitching them (SetViewMaintenance).
	noIVM bool
	// maintReports accumulates maintenance decisions until
	// TakeMaintenanceReports drains them.
	maintReports []matview.MaintenanceReport
}

type dbSeq struct {
	name  string
	store storage.Store
	stats map[int]expr.ColStats
	// dseq is the durable sequence behind store (nil in-memory).
	// store is then a snapshot of its latest version, re-forked after
	// every mutation with the same counters so PageStats accumulates
	// across versions.
	dseq *disk.Seq
}

// refresh points store at the latest durable version after a mutation,
// keeping the accumulated page counters.
func (s *dbSeq) refresh() {
	if s.dseq != nil {
		s.store = s.dseq.Latest().Fork(s.store.Stats())
	}
}

// node mints a fresh algebra leaf over the stored sequence. Every
// mention of a sequence gets its own node so query graphs stay trees
// (the paper's §2.2 restriction): the top-down span pass assigns each
// occurrence its own access span, which would be wrong for a shared
// node (e.g. compose(ibm, offset(ibm, 100)) needs different ranges of
// ibm on the two paths).
func (s *dbSeq) node() *algebra.Node {
	return algebra.BaseWithStats(s.name, s.store, s.stats)
}

// New creates an empty database with default optimizer options.
func New() *DB {
	return &DB{seqs: make(map[string]*dbSeq), views: matview.New()}
}

// SetOptions replaces the optimizer options used by subsequent queries.
func (db *DB) SetOptions(opts Options) { db.opts = opts }

// CreateSequence registers a base sequence under the given name, packing
// the materialized data into the chosen storage representation and
// computing column statistics for the optimizer.
func (db *DB) CreateSequence(name string, data *seq.Materialized, kind StorageKind) error {
	if name == "" {
		return fmt.Errorf("seqproc: empty sequence name")
	}
	if _, dup := db.seqs[name]; dup {
		return fmt.Errorf("seqproc: sequence %q already exists", name)
	}
	if db.disk != nil {
		if err := db.disk.CreateSequence(name, data, kind); err != nil {
			return err
		}
		ds, _ := db.disk.Seq(name)
		db.seqs[name] = &dbSeq{
			name:  name,
			store: ds.Latest().Fork(&storage.Stats{}),
			stats: meta.StatsFromMaterialized(data),
			dseq:  ds,
		}
		return nil
	}
	store, err := storage.FromMaterialized(data, kind, 0)
	if err != nil {
		return err
	}
	db.seqs[name] = &dbSeq{
		name:  name,
		store: store,
		stats: meta.StatsFromMaterialized(data),
	}
	return nil
}

// MustCreateSequence is CreateSequence panicking on error, for examples
// and tests.
func (db *DB) MustCreateSequence(name string, data *seq.Materialized, kind StorageKind) {
	if err := db.CreateSequence(name, data, kind); err != nil {
		panic(err)
	}
}

// DropSequence removes a base sequence, invalidating every view whose
// block reads it.
func (db *DB) DropSequence(name string) error {
	s, ok := db.seqs[name]
	if !ok {
		return fmt.Errorf("seqproc: unknown sequence %q", name)
	}
	if s.dseq != nil {
		if err := db.disk.DropSequence(name); err != nil {
			return err
		}
	}
	delete(db.seqs, name)
	db.views.InvalidateBase(name)
	return nil
}

// Sequences lists the registered sequence names, sorted.
func (db *DB) Sequences() []string {
	out := make([]string, 0, len(db.seqs))
	for name := range db.seqs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the schema, span and density of a base sequence.
func (db *DB) Describe(name string) (seq.Info, error) {
	s, ok := db.seqs[name]
	if !ok {
		return seq.Info{}, fmt.Errorf("seqproc: unknown sequence %q", name)
	}
	return s.store.Info(), nil
}

// Append adds a record beyond the end of a sparse base sequence (the
// dynamic-arrival path of the §5.3 trigger-mode extension).
func (db *DB) Append(name string, pos Pos, rec Record) error {
	s, ok := db.seqs[name]
	if !ok {
		return fmt.Errorf("seqproc: unknown sequence %q", name)
	}
	if s.dseq != nil {
		// WAL-logged append: durable (or queued for group commit)
		// before the new version publishes. The disk tier deletes
		// persisted views reading this base eagerly; the in-memory
		// registry maintains its generations incrementally.
		if _, err := db.disk.Append(name, seq.Entry{Pos: pos, Rec: rec}); err != nil {
			return err
		}
		s.refresh()
		db.maintainBase(name, seq.NewSpan(pos, pos))
		return nil
	}
	sp, ok := s.store.(*storage.Sparse)
	if !ok {
		return fmt.Errorf("seqproc: sequence %q is not appendable (use Sparse storage)", name)
	}
	if err := sp.Append(seq.Entry{Pos: pos, Rec: rec}); err != nil {
		return err
	}
	// Views over this base are maintained incrementally: the delta halo
	// of the appended position is re-evaluated and stitched in; views
	// not worth stitching are shrunk or invalidated.
	db.maintainBase(name, seq.NewSpan(pos, pos))
	return nil
}

// maintainBase runs incremental view maintenance after the named base
// changed over delta. With maintenance disabled it falls back to the old
// invalidate-everything behavior; a view whose maintenance fails is
// invalidated by the planner (never left stale), so the append itself
// cannot fail here.
func (db *DB) maintainBase(name string, delta Span) {
	if db.noIVM {
		db.views.InvalidateBase(name)
		return
	}
	lookup := func(b string) (seq.Sequence, bool) {
		s, ok := db.seqs[b]
		if !ok {
			return nil, false
		}
		return s.store, true
	}
	reports, _ := core.MaintainViews(db.views, name, delta, 0, lookup, db.opts)
	db.maintReports = append(db.maintReports, reports...)
}

// SetViewMaintenance toggles incremental view maintenance (default on).
// When off, Append and Reorganize invalidate every view reading the
// written base, as before.
func (db *DB) SetViewMaintenance(on bool) { db.noIVM = !on }

// TakeMaintenanceReports drains the accumulated per-view maintenance
// decisions (delta halo, chosen action, stitch-vs-recompute costs) made
// by Append and Reorganize since the last call.
func (db *DB) TakeMaintenanceReports() []matview.MaintenanceReport {
	out := db.maintReports
	db.maintReports = nil
	return out
}

// Reorganize repacks a base sequence into a different physical
// representation — the §5.3 suggestion that "it might be efficient to
// first reorganize their physical representations before running the
// query". Dense favors probing (O(1) page per probe); Sparse favors
// scanning at low density and supports Append.
func (db *DB) Reorganize(name string, kind StorageKind) error {
	s, ok := db.seqs[name]
	if !ok {
		return fmt.Errorf("seqproc: unknown sequence %q", name)
	}
	if s.dseq != nil {
		if _, err := db.disk.Reorganize(name, kind); err != nil {
			return err
		}
		s.refresh()
		// Reorganization preserves logical content: the delta is empty,
		// so maintenance keeps every view (or invalidates them all when
		// maintenance is off).
		db.maintainBase(name, seq.EmptySpan)
		return nil
	}
	info := s.store.Info()
	entries, err := seq.Collect(s.store.Scan(seq.AllSpan))
	if err != nil {
		return err
	}
	data, err := seq.NewMaterialized(info.Schema, entries)
	if err != nil {
		return err
	}
	if info.Span.Bounded() {
		if data, err = data.WithSpan(info.Span); err != nil {
			return err
		}
	}
	store, err := storage.FromMaterialized(data, kind, 0)
	if err != nil {
		return err
	}
	s.store = store
	// Reorganization preserves logical content (empty delta); views
	// survive it under maintenance.
	db.maintainBase(name, seq.EmptySpan)
	return nil
}

// PageStats returns the cumulative page-access counters of a base
// sequence — the experiments' cost ground truth.
func (db *DB) PageStats(name string) (storage.StatsSnapshot, error) {
	s, ok := db.seqs[name]
	if !ok {
		return storage.StatsSnapshot{}, fmt.Errorf("seqproc: unknown sequence %q", name)
	}
	return s.store.Stats().Snapshot(), nil
}

// TakePageStats atomically snapshots and zeroes the page-access
// counters of a base sequence — the metered-region read. Unlike a
// Snapshot followed by Reset, the single swap per counter loses no
// touches that race the region boundary, so back-to-back regions
// partition the counts exactly.
func (db *DB) TakePageStats(name string) (storage.StatsSnapshot, error) {
	s, ok := db.seqs[name]
	if !ok {
		return storage.StatsSnapshot{}, fmt.Errorf("seqproc: unknown sequence %q", name)
	}
	return s.store.Stats().SnapshotAndReset(), nil
}

// ResetPageStats zeroes the page-access counters of every sequence.
func (db *DB) ResetPageStats() {
	for _, s := range db.seqs {
		s.store.Stats().Reset()
	}
}

// catalog adapts the DB to the parser's catalog interface.
func (db *DB) catalog() parser.Catalog {
	return parser.CatalogFunc(func(name string) (*algebra.Node, bool) {
		s, ok := db.seqs[name]
		if !ok {
			return nil, false
		}
		return s.node(), true
	})
}

// Materialize evaluates a SEQL query over a bounded span and registers
// the result as a named materialized view. Later queries whose blocks
// are canonically equal to (or subsume, for selections) the view's
// block over a covered span are answered from the view when the cost
// model prefers it. Views are maintained incrementally: Append on a base
// the view reads re-evaluates only the delta halo and stitches it into
// the stored data (or shrinks/invalidates the view when stitching is not
// worth it — see SetViewMaintenance); Reorganize preserves content and
// leaves views intact; DropSequence invalidates them.
func (db *DB) Materialize(name, seql string, span Span) (ViewCounters, error) {
	if !span.Bounded() {
		return ViewCounters{}, fmt.Errorf("seqproc: materialize %q needs a bounded span, got %s", name, span)
	}
	q, err := db.Query(seql)
	if err != nil {
		return ViewCounters{}, err
	}
	res, err := q.optimize(span)
	if err != nil {
		return ViewCounters{}, err
	}
	out, err := res.Run()
	if err != nil {
		return ViewCounters{}, err
	}
	v, err := db.views.Register(name, res.Rewritten, out, res.RunSpan)
	if err != nil {
		return ViewCounters{}, err
	}
	if err := db.persistView(name, seql, res, out); err != nil {
		return ViewCounters{}, err
	}
	return v.Counters(), nil
}

// ListViews returns the usage counters of every registered view, sorted
// by name.
func (db *DB) ListViews() []ViewCounters {
	views := db.views.Views()
	out := make([]ViewCounters, 0, len(views))
	for _, v := range views {
		out = append(out, v.Counters())
	}
	return out
}

// DropView removes a materialized view (and its persisted copy, for
// durable databases).
func (db *DB) DropView(name string) error {
	if !db.views.Drop(name) {
		return fmt.Errorf("seqproc: unknown view %q", name)
	}
	if db.disk != nil {
		// The persisted copy may already be gone: base writes delete
		// persisted views eagerly.
		for _, v := range db.disk.Views() {
			if v.Name == name {
				return db.disk.DropViewAt(name, db.disk.Epoch())
			}
		}
	}
	return nil
}

// Query parses a SEQL query against the catalog. The query is not yet
// optimized; optimization happens per Run/Probe/ExplainSpan, because the
// chosen plan depends on the requested range.
func (db *DB) Query(seql string) (*Query, error) {
	root, err := parser.Bind(seql, db.catalog())
	if err != nil {
		return nil, err
	}
	return &Query{db: db, root: root, src: seql}, nil
}

// QueryNode wraps an already built algebra graph as a query. It is the
// programmatic alternative to SEQL for embedders that construct algebra
// trees directly.
func (db *DB) QueryNode(root *algebra.Node) *Query {
	return &Query{db: db, root: root}
}

// Base returns a fresh algebra leaf for a registered sequence, for
// programmatic graph construction. Each call returns a new node: use a
// separate leaf per occurrence so the query graph remains a tree.
func (db *DB) Base(name string) (*algebra.Node, error) {
	s, ok := db.seqs[name]
	if !ok {
		return nil, fmt.Errorf("seqproc: unknown sequence %q", name)
	}
	return s.node(), nil
}

// Query is a parsed, bound query.
type Query struct {
	db   *DB
	root *algebra.Node
	src  string
}

// Node returns the query's logical algebra graph.
func (q *Query) Node() *algebra.Node { return q.root }

// String renders the logical operator tree.
func (q *Query) String() string { return q.root.String() }

// optimize runs the §4 pipeline for the given range, matching the
// query's blocks against the DB's materialized views (§3.4–3.5 of
// DESIGN.md) unless the options name a registry of their own.
func (q *Query) optimize(span Span) (*core.Result, error) {
	opts := q.db.opts
	if opts.Views == nil {
		opts.Views = q.db.views
	}
	return core.Optimize(q.root, span, opts)
}

// Run optimizes and evaluates the query over the requested range in
// stream mode, returning the materialized result.
func (q *Query) Run(span Span) (*ResultSet, error) {
	res, err := q.optimize(span)
	if err != nil {
		return nil, err
	}
	m, err := res.Run()
	if err != nil {
		return nil, err
	}
	return &ResultSet{mat: m, opt: res}, nil
}

// Probe optimizes for probed access and evaluates the query at the given
// positions.
func (q *Query) Probe(span Span, positions []Pos) ([]Entry, error) {
	res, err := q.optimize(span)
	if err != nil {
		return nil, err
	}
	return res.Probe(positions)
}

// Explain returns the physical plan chosen for the given range, with
// estimated cost and optimizer statistics.
func (q *Query) Explain(span Span) (string, error) {
	res, err := q.optimize(span)
	if err != nil {
		return "", err
	}
	mode := "stream-access (single scan, cache-finite)"
	if !res.StreamAccess {
		mode = "not stream-access (unbounded forward scope)"
	}
	return fmt.Sprintf("plan (stream cost %.2f, per-probe cost %.2f, %s, cache budget %d records):\n%s\nannotated query (span/density propagation):\n%s",
		res.Cost.Stream, res.Cost.ProbePer, mode, res.CacheBudget, res.Explain(), res.ExplainMeta()), nil
}

// RunAnalyze optimizes and evaluates the query over the requested range
// with per-operator instrumentation, returning the execution metrics
// together with the output. The instrumented run produces the same
// result as Run (same plan, fresh operator caches); the metrics add
// per-record overhead, so use Run for timing-sensitive evaluation.
func (q *Query) RunAnalyze(span Span) (*Analysis, error) {
	res, err := q.optimize(span)
	if err != nil {
		return nil, err
	}
	return res.RunAnalyze()
}

// ExplainAnalyze runs the query over the given range with per-operator
// instrumentation and renders predicted-vs-actual metrics for every plan
// node — rows, probe Nulls, attributed page accesses, cache activity and
// wall time. See OBSERVABILITY.md for how to read the output.
func (q *Query) ExplainAnalyze(span Span) (string, error) {
	a, err := q.RunAnalyze(span)
	if err != nil {
		return "", err
	}
	return a.Render(), nil
}

// EstimatedCost optimizes for the range and returns the cost model's
// estimates: the total stream-evaluation cost and the per-probe cost,
// in sequential-page-read units.
func (q *Query) EstimatedCost(span Span) (stream, probePer float64, err error) {
	res, err := q.optimize(span)
	if err != nil {
		return 0, 0, err
	}
	return res.Cost.Stream, res.Cost.ProbePer, nil
}

// Stats optimizes the query for the range and returns the optimizer
// counters (rules fired, blocks, DP plans evaluated/stored).
func (q *Query) Stats(span Span) (OptStats, error) {
	res, err := q.optimize(span)
	if err != nil {
		return OptStats{}, err
	}
	return res.Stats, nil
}

// ResultSet is a materialized query result.
type ResultSet struct {
	mat *seq.Materialized
	opt *core.Result
}

// Schema returns the result record type.
func (r *ResultSet) Schema() *Schema { return r.mat.Info().Schema }

// Entries returns the (position, record) pairs in positional order.
func (r *ResultSet) Entries() []Entry { return r.mat.Entries() }

// Count returns the number of non-Null result records.
func (r *ResultSet) Count() int { return r.mat.Count() }

// Materialized exposes the result as a sequence, so it can be registered
// back into a DB (view materialization).
func (r *ResultSet) Materialized() *seq.Materialized { return r.mat }

// Plan returns the executed physical plan rendering.
func (r *ResultSet) Plan() string { return r.opt.Explain() }

// OptimizerStats returns the counters from the optimization that
// produced this result.
func (r *ResultSet) OptimizerStats() OptStats { return r.opt.Stats }
