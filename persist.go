// Durable databases: Open gives the single-session seqproc API a disk
// tier — page files, a write-ahead log and crash recovery behind a
// metered buffer pool (internal/storage/disk, docs/STORAGE.md). Every
// mutation (CreateSequence, Append, Reorganize, DropSequence,
// Materialize, DropView) is WAL-logged before it publishes, so a crash
// at any point recovers to the last acknowledged write on the next
// Open. Queries are unchanged: the catalog hands the optimizer
// snapshots of the latest durable versions, and page accesses flow
// through the same storage.Stats counters — plus the buffer-pool
// hit/miss/eviction split only the disk tier produces.
package seqproc

import (
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/meta"
	"repro/internal/parser"
	"repro/internal/seq"
	"repro/internal/storage"
	"repro/internal/storage/disk"
)

// DiskOptions tune the durable tier of an Open'd database. The zero
// value (or a nil pointer) selects the defaults documented in
// docs/STORAGE.md: 8 KiB pages, a 1024-page buffer pool, an fsync per
// append, and a background checkpoint every 15 seconds or 4 MiB of WAL.
type DiskOptions struct {
	// PageSize is the on-disk page size in bytes. An existing
	// database's page size always wins over this setting.
	PageSize int
	// RecordsPerPage caps records packed per page (0 = derive from
	// PageSize).
	RecordsPerPage int
	// PoolPages is the buffer-pool capacity in pages.
	PoolPages int
	// BatchFsync groups WAL fsyncs across appends (group commit):
	// higher throughput, but a crash may lose the last few
	// acknowledged appends within FsyncInterval.
	BatchFsync bool
	// FsyncInterval is the group-commit flush period when BatchFsync
	// is set.
	FsyncInterval time.Duration
	// CheckpointInterval is the background checkpoint period; negative
	// disables background checkpointing (Close still checkpoints).
	CheckpointInterval time.Duration
}

func (o *DiskOptions) config() disk.Config {
	if o == nil {
		return disk.Config{}
	}
	return disk.Config{
		PageSize:           o.PageSize,
		RecordsPerPage:     o.RecordsPerPage,
		PoolPages:          o.PoolPages,
		BatchFsync:         o.BatchFsync,
		FsyncInterval:      o.FsyncInterval,
		CheckpointInterval: o.CheckpointInterval,
	}
}

// Open opens (creating if absent) a durable database rooted at dir.
// Recovered sequences and materialized views are immediately
// queryable; recovery replays any WAL tail past the last checkpoint
// and discards torn records. opts may be nil for defaults.
func Open(dir string, opts *DiskOptions) (*DB, error) {
	ddb, err := disk.Open(dir, opts.config())
	if err != nil {
		return nil, err
	}
	db := New()
	db.disk = ddb
	for _, name := range ddb.Names() {
		ds, ok := ddb.Seq(name)
		if !ok {
			continue
		}
		entries, err := seq.Collect(ds.Latest().Scan(seq.AllSpan))
		if err != nil {
			ddb.Close()
			return nil, fmt.Errorf("seqproc: load %q: %w", name, err)
		}
		m, err := seq.NewMaterialized(ds.Schema(), entries)
		if err != nil {
			ddb.Close()
			return nil, fmt.Errorf("seqproc: load %q: %w", name, err)
		}
		db.seqs[name] = &dbSeq{
			name:  name,
			store: ds.Latest().Fork(&storage.Stats{}),
			stats: meta.StatsFromMaterialized(m),
			dseq:  ds,
		}
	}
	for _, v := range ddb.Views() {
		if err := db.reattachView(v); err != nil {
			ddb.Close()
			return nil, fmt.Errorf("seqproc: reattach view %q: %w", v.Name, err)
		}
	}
	return db, nil
}

// reattachView re-plans a persisted view's SEQL and registers the
// stored entries under the same canonical block queries match against.
// A persisted view is consistent with the recovered bases by
// construction: any base write after its registration deleted it.
func (db *DB) reattachView(v *disk.View) error {
	root, err := parser.Bind(v.SEQL, db.catalog())
	if err != nil {
		return err
	}
	opts := db.opts
	opts.Views = nil
	res, err := core.Optimize(root, v.Span, opts)
	if err != nil {
		return err
	}
	data, err := seq.NewMaterialized(res.Rewritten.Schema, v.Entries)
	if err != nil {
		return err
	}
	_, err = db.views.Register(v.Name, res.Rewritten, data, v.Span)
	return err
}

// persistView writes a freshly registered view through the disk tier
// (no-op for in-memory databases), rolling the registration back on
// failure so catalog and disk stay consistent.
func (db *DB) persistView(name, seql string, res *core.Result, out *seq.Materialized) error {
	if db.disk == nil {
		return nil
	}
	err := db.disk.PutViewAt(&disk.View{
		Name: name, SEQL: seql, Span: res.RunSpan, Epoch: db.disk.Epoch(),
		Bases: viewBases(res.Rewritten), Entries: out.Entries(),
	})
	if err != nil {
		db.views.Drop(name)
	}
	return err
}

// viewBases collects the distinct base-sequence names a plan reads.
func viewBases(root *algebra.Node) []string {
	seen := map[string]bool{}
	var names []string
	var walk func(n *algebra.Node)
	walk = func(n *algebra.Node) {
		if n.Kind == algebra.KindBase && !seen[n.Name] {
			seen[n.Name] = true
			names = append(names, n.Name)
		}
		for _, in := range n.Inputs {
			walk(in)
		}
	}
	walk(root)
	return names
}

// Persistent reports whether the database is disk-backed, and its
// directory when it is.
func (db *DB) Persistent() (string, bool) {
	if db.disk == nil {
		return "", false
	}
	return db.disk.Dir(), true
}

// Checkpoint forces a checkpoint of a durable database: dirty pages are
// flushed, the catalog lands atomically, and the WAL truncates to the
// tail. Errors for in-memory databases.
func (db *DB) Checkpoint() error {
	if db.disk == nil {
		return fmt.Errorf("seqproc: in-memory database has no checkpoint")
	}
	return db.disk.Checkpoint()
}

// GC reclaims superseded on-disk versions and their page slots. The
// library's queries read the latest version, so only queries built
// before the most recent mutation can still reference reclaimed state;
// re-build those with Query after GC. Returns versions and page slots
// freed (both 0 for in-memory databases).
func (db *DB) GC() (versions, pages int) {
	if db.disk == nil {
		return 0, 0
	}
	return db.disk.GC(db.disk.Epoch() - 1)
}

// Close checkpoints and closes the durable tier; the DB must not be
// used afterwards. A no-op for in-memory databases.
func (db *DB) Close() error {
	if db.disk == nil {
		return nil
	}
	err := db.disk.Close()
	db.disk = nil
	return err
}
