package seqproc

import (
	"strings"
	"testing"

	"repro/internal/seq"
	"repro/internal/workload"
)

func stockDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	ibm, dec, hp, err := workload.Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreateSequence("ibm", ibm, Sparse)
	db.MustCreateSequence("dec", dec, Sparse)
	db.MustCreateSequence("hp", hp, Dense)
	return db
}

func TestCreateAndDescribe(t *testing.T) {
	db := stockDB(t)
	names := db.Sequences()
	if len(names) != 3 || names[0] != "dec" || names[2] != "ibm" {
		t.Errorf("sequences = %v", names)
	}
	info, err := db.Describe("ibm")
	if err != nil {
		t.Fatal(err)
	}
	if info.Span != NewSpan(200, 500) {
		t.Errorf("ibm span = %v", info.Span)
	}
	if _, err := db.Describe("ghost"); err == nil {
		t.Error("unknown sequence must fail")
	}
	if err := db.CreateSequence("ibm", nil, Sparse); err == nil {
		t.Error("duplicate must fail")
	}
	if err := db.CreateSequence("", nil, Sparse); err == nil {
		t.Error("empty name must fail")
	}
	if err := db.DropSequence("hp"); err != nil {
		t.Fatal(err)
	}
	if len(db.Sequences()) != 2 {
		t.Error("drop did not take")
	}
	if err := db.DropSequence("hp"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestQueryRunAndExplain(t *testing.T) {
	db := stockDB(t)
	q, err := db.Query("select(compose(ibm, hp), ibm.close > hp.close)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(NewSpan(1, 750))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() == 0 {
		t.Fatal("expected some results")
	}
	if res.Schema().NumFields() != 6 {
		t.Errorf("schema = %v", res.Schema())
	}
	for _, e := range res.Entries() {
		if !(e.Pos >= 200 && e.Pos <= 500) {
			t.Fatalf("result outside IBM span at %d", e.Pos)
		}
	}
	plan, err := q.Explain(NewSpan(1, 750))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stream cost", "compose-", "scan("} {
		if !strings.Contains(plan, want) {
			t.Errorf("explain missing %q:\n%s", want, plan)
		}
	}
	if _, err := db.Query("select(nothere, x > 1)"); err == nil {
		t.Error("bad query must fail")
	}
}

func TestQueryProbeAndStats(t *testing.T) {
	db := stockDB(t)
	q, err := db.Query("sum(ibm, close, 5)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Probe(NewSpan(200, 500), []Pos{250, 9999})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Pos != 250 {
		t.Errorf("probe = %v", got)
	}
	st, err := q.Stats(NewSpan(200, 500))
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksOptimized != 0 {
		t.Errorf("no join blocks expected, got %d", st.BlocksOptimized)
	}
	q2, _ := db.Query("compose(compose(ibm, dec), hp)")
	st, err = q2.Stats(NewSpan(1, 750))
	if err != nil {
		t.Fatal(err)
	}
	if st.JoinPlansEvaluated == 0 || st.PeakPlansStored == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPageStatsAndReset(t *testing.T) {
	db := stockDB(t)
	q, _ := db.Query("select(ibm, close > 0)")
	if _, err := q.Run(NewSpan(200, 500)); err != nil {
		t.Fatal(err)
	}
	st, err := db.PageStats("ibm")
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages() == 0 {
		t.Error("expected page accesses")
	}
	db.ResetPageStats()
	st, _ = db.PageStats("ibm")
	if st.Pages() != 0 {
		t.Error("reset failed")
	}
	if _, err := db.PageStats("ghost"); err == nil {
		t.Error("unknown sequence must fail")
	}
}

func TestQueryNodeAndBase(t *testing.T) {
	db := stockDB(t)
	base, err := db.Base("ibm")
	if err != nil {
		t.Fatal(err)
	}
	q := db.QueryNode(base)
	res, err := q.Run(NewSpan(200, 210))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() == 0 {
		t.Error("expected records")
	}
	if q.Node() != base || q.String() == "" {
		t.Error("query accessors wrong")
	}
	if _, err := db.Base("ghost"); err == nil {
		t.Error("unknown base must fail")
	}
}

func TestResultMaterializedRoundTrip(t *testing.T) {
	db := stockDB(t)
	q, _ := db.Query("project(ibm, close)")
	res, err := q.Run(NewSpan(200, 300))
	if err != nil {
		t.Fatal(err)
	}
	// Register the result as a view and query it again.
	if err := db.CreateSequence("ibm_close", res.Materialized(), Sparse); err != nil {
		t.Fatal(err)
	}
	q2, _ := db.Query("rsum(ibm_close, close)")
	res2, err := q2.Run(NewSpan(200, 300))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count() == 0 {
		t.Error("view query returned nothing")
	}
	if res.Plan() == "" || res.OptimizerStats().RulesFired < 0 {
		t.Error("result metadata missing")
	}
}

func TestAppendAndMonitor(t *testing.T) {
	db := New()
	quakes, err := seq.NewMaterialized(workload.QuakeSchema, []seq.Entry{
		{Pos: 1, Rec: Record{Float(6.0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreateSequence("quakes", quakes, Sparse)

	mon, err := db.Monitor("select(quakes, strength > 7.0)", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing new yet.
	out, err := mon.Poll(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("poll = %v", out)
	}
	// A big quake arrives.
	if err := db.Append("quakes", 5, Record{Float(8.1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Append("quakes", 7, Record{Float(5.0)}); err != nil {
		t.Fatal(err)
	}
	out, err = mon.Poll(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Pos != 5 {
		t.Errorf("poll = %v", out)
	}
	if mon.Position() != 7 {
		t.Errorf("position = %d", mon.Position())
	}
	// Polling backward is a no-op.
	out, _ = mon.Poll(3)
	if out != nil {
		t.Error("backward poll must be empty")
	}
	// Append validation.
	if err := db.Append("quakes", 6, Record{Float(1)}); err == nil {
		t.Error("append inside the range must fail")
	}
	if err := db.Append("ghost", 9, Record{Float(1)}); err == nil {
		t.Error("unknown sequence must fail")
	}
	// Dense sequences are not appendable.
	dense, _ := seq.NewMaterialized(workload.QuakeSchema, []seq.Entry{{Pos: 1, Rec: Record{Float(1)}}})
	db.MustCreateSequence("d", dense, Dense)
	if err := db.Append("d", 9, Record{Float(1)}); err == nil {
		t.Error("dense append must fail")
	}
}

func TestMonitorTrailingAggregate(t *testing.T) {
	db := New()
	data, err := seq.NewMaterialized(workload.StockSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.MustCreateSequence("ticks", data, Sparse)
	mon, err := db.Monitor("select(avg(ticks, close, 3), avg > 100)", 0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(close float64) Record {
		return Record{Float(close), Float(close), Int(100)}
	}
	for _, e := range []struct {
		pos   Pos
		close float64
	}{{1, 90}, {2, 95}, {3, 130}} {
		if err := db.Append("ticks", e.pos, mk(e.close)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := mon.Poll(3)
	if err != nil {
		t.Fatal(err)
	}
	// avg(1..3) = 105 at position 3 only.
	if len(out) != 1 || out[0].Pos != 3 {
		t.Errorf("poll = %v", out)
	}
	// More arrivals: window slides correctly across polls.
	for _, e := range []struct {
		pos   Pos
		close float64
	}{{4, 130}, {5, 40}} {
		if err := db.Append("ticks", e.pos, mk(e.close)); err != nil {
			t.Fatal(err)
		}
	}
	out, err = mon.Poll(5)
	if err != nil {
		t.Fatal(err)
	}
	// avg@4 = (95+130+130)/3 ≈ 118 > 100; avg@5 = 100 -> not > 100.
	if len(out) != 1 || out[0].Pos != 4 {
		t.Errorf("poll = %v", out)
	}
}

func TestCollapseExpandThroughEngine(t *testing.T) {
	db := stockDB(t)
	// Weekly average of IBM, then back to daily, composed with daily.
	q, err := db.Query("collapse(ibm, avg(close), 5)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(NewSpan(0, 200))
	if err != nil {
		t.Fatal(err)
	}
	// IBM spans [200, 500]: weeks 40..100.
	if res.Count() != 61 {
		t.Errorf("weekly count = %d, want 61", res.Count())
	}
	for _, e := range res.Entries() {
		if e.Pos < 40 || e.Pos > 100 {
			t.Fatalf("weekly position %d outside [40, 100]", e.Pos)
		}
	}
	q2, err := db.Query(`select(compose(ibm as d, expand(collapse(ibm, avg(close), 5), 5) as w),
	                            d.close > w.avg)`)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := q2.Run(NewSpan(1, 750))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count() == 0 {
		t.Error("expected some above-weekly-average days")
	}
	plan, err := q2.Explain(NewSpan(1, 750))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"collapse(", "expand(k=5)"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
}

func TestDivergentQueryRejected(t *testing.T) {
	db := stockDB(t)
	// A cumulative aggregate over prev(...) of a base is fine...
	q, err := db.Query("rsum(ibm, close)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Run(NewSpan(200, 210)); err != nil {
		t.Fatal(err)
	}
	// ...but a whole-sequence aggregate of prev(ibm) is divergent (prev
	// extends support forever to the right).
	q2, err := db.Query("sum(prev(ibm), close)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Run(NewSpan(200, 210)); err == nil {
		t.Error("divergent query must be rejected")
	}
}

func TestReorganize(t *testing.T) {
	db := stockDB(t)
	before, _ := db.Describe("ibm")
	if err := db.Reorganize("ibm", Dense); err != nil {
		t.Fatal(err)
	}
	after, err := db.Describe("ibm")
	if err != nil {
		t.Fatal(err)
	}
	if after.Span != before.Span {
		t.Errorf("span changed: %v vs %v", after.Span, before.Span)
	}
	// Queries still work and dense probing is O(1) page per probe.
	q, _ := db.Query("select(ibm, close > 0)")
	res, err := q.Run(NewSpan(200, 500))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() == 0 {
		t.Error("no results after reorganize")
	}
	// Dense sequences are not appendable; sparse ones are again after
	// reorganizing back.
	if err := db.Append("ibm", 600, Record{Float(1), Float(1), Int(1)}); err == nil {
		t.Error("dense append must fail")
	}
	if err := db.Reorganize("ibm", Sparse); err != nil {
		t.Fatal(err)
	}
	if err := db.Append("ibm", 600, Record{Float(1), Float(1), Int(1)}); err != nil {
		t.Errorf("sparse append failed: %v", err)
	}
	if err := db.Reorganize("ghost", Dense); err == nil {
		t.Error("unknown sequence must fail")
	}
}

func TestExplainStreamAccessAnnotation(t *testing.T) {
	db := stockDB(t)
	// Force Cache-Strategy-A so the window cache contributes 8 slots
	// (the default sliding accumulator needs no FIFO cache at all).
	db.SetOptions(Options{DisableSlidingAggregates: true})
	q, _ := db.Query("sum(prev(ibm), close, 8)")
	plan, err := q.Explain(NewSpan(200, 500))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "stream-access (single scan, cache-finite)") {
		t.Errorf("missing stream-access note:\n%s", plan)
	}
	if !strings.Contains(plan, "cache budget 9 records") {
		t.Errorf("cache budget (8-window + 1 prev slot) missing:\n%s", plan)
	}
	db.SetOptions(Options{})
	// A whole-sequence aggregate defeats the stream-access property.
	q2, _ := db.Query("sum(ibm, close)")
	plan, err = q2.Explain(NewSpan(200, 500))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "not stream-access") {
		t.Errorf("missing non-stream note:\n%s", plan)
	}
}
