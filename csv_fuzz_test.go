package seqproc

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV importer never panics on arbitrary input.
func FuzzReadCSV(f *testing.F) {
	f.Add("pos,close\n1,10.5\n2,11\n")
	f.Add("pos,a,b\n1,x,true\n")
	f.Add("pos\n1\n")
	f.Add("a,b\n1,2\n")
	f.Add("pos,a\n9223372036854775807,1\n")
	f.Add("pos,a\n-1,2\n\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		data, err := ReadCSV(strings.NewReader(src))
		if err == nil && data == nil {
			t.Fatal("nil data without error")
		}
		if err == nil {
			// Round-trip must also not panic.
			var buf strings.Builder
			if werr := WriteCSV(&buf, data); werr != nil {
				t.Fatalf("write after successful read: %v", werr)
			}
		}
	})
}
